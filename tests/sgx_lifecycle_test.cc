// Enclave lifecycle ownership (sgx/hostos.h): HostOs::DestroyEnclave must
// reclaim everything on both sides of the kernel boundary — EPC pages and
// the SECS on the device, page-table overrides and W^X lock records on the
// host. The regression this pins: the host-side maps used to grow
// monotonically (the device freed pages, the host never forgot the enclave),
// so a front end churning thousands of enclaves leaked a few map entries per
// verdict. The soak below drives 1k create/destroy cycles and asserts
// steady-state map sizes throughout.
#include "sgx/hostos.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace engarde::sgx {
namespace {

EnclaveLayout SmallLayout() {
  EnclaveLayout layout;
  layout.bootstrap_pages = 2;
  layout.heap_pages = 4;
  layout.load_pages = 4;
  layout.stack_pages = 2;
  layout.tls_pages = 1;
  return layout;
}

// Everything a provisioning exchange touches in the kernel component:
// restrict load-region perms, harden, lock — the full W^X footprint.
Status ProvisionLikeCycle(HostOs& host, const EnclaveLayout& layout) {
  ASSIGN_OR_RETURN(const uint64_t eid,
                   host.BuildEnclave(layout, ToBytes("LIFECYCLE")));
  const std::vector<uint64_t> executable = {layout.LoadStart(),
                                            layout.LoadStart() + kPageSize};
  RETURN_IF_ERROR(host.ApplyWxPolicy(eid, layout, /*span_pages=*/3,
                                     executable));
  RETURN_IF_ERROR(host.HardenWxInEpcm(eid, executable));
  RETURN_IF_ERROR(host.LockEnclave(eid));
  return host.DestroyEnclave(eid);
}

TEST(SgxLifecycleTest, DestroyReclaimsDeviceAndHostState) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  const EnclaveLayout layout = SmallLayout();

  auto eid = host.BuildEnclave(layout, ToBytes("BOOT"));
  ASSERT_TRUE(eid.ok()) << eid.status().ToString();
  ASSERT_TRUE(host.ApplyWxPolicy(*eid, layout, 2, {layout.LoadStart()}).ok());
  ASSERT_TRUE(host.LockEnclave(*eid).ok());
  EXPECT_EQ(host.TrackedEnclaveCount(), 1u);
  EXPECT_GT(host.PageTableEntryCount(), 0u);
  EXPECT_EQ(host.LockRecordCount(), 1u);
  EXPECT_EQ(device.EnclaveCount(), 1u);
  EXPECT_GT(device.epc().pages_in_use(), 0u);

  ASSERT_TRUE(host.DestroyEnclave(*eid).ok());
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
  EXPECT_EQ(host.PageTableEntryCount(), 0u);
  EXPECT_EQ(host.LockRecordCount(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
  // The destroyed id is gone from every interface.
  EXPECT_FALSE(host.IsLocked(*eid));
  EXPECT_FALSE(device.HasPage(*eid, layout.LoadStart()));
  EXPECT_FALSE(host.DestroyEnclave(*eid).ok());  // double destroy
}

TEST(SgxLifecycleTest, DestroyReclaimsEvictedPagesToo) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  const EnclaveLayout layout = SmallLayout();
  auto eid = host.BuildEnclave(layout, ToBytes("EVICTED"));
  ASSERT_TRUE(eid.ok());
  // Push a few pages to the encrypted backing store, then destroy: both the
  // resident and the evicted side must vanish.
  ASSERT_TRUE(host.EvictPages(*eid, 3).ok());
  EXPECT_EQ(device.EvictedPageCount(*eid), 3u);
  ASSERT_TRUE(host.DestroyEnclave(*eid).ok());
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
}

TEST(SgxLifecycleTest, FailedBuildLeavesNoResidue) {
  // An EPC with room for the SECS and nothing else: the first EAdd fails
  // (no resident page is evictable), so the build dies mid-way — and must
  // tear down the partial enclave rather than leak the SECS and a stale
  // host record.
  SgxDevice device(SgxDevice::Options{.epc_pages = 1});
  HostOs host(&device);
  EXPECT_FALSE(host.BuildEnclave(SmallLayout(), ToBytes("BOOT")).ok());
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
}

TEST(SgxLifecycleTest, SoakOneThousandCreateDestroyCyclesHoldsMapSizes) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  const EnclaveLayout layout = SmallLayout();

  // Baselines before the churn.
  ASSERT_EQ(host.TrackedEnclaveCount(), 0u);
  ASSERT_EQ(host.PageTableEntryCount(), 0u);
  ASSERT_EQ(host.LockRecordCount(), 0u);
  ASSERT_EQ(device.epc().pages_in_use(), 0u);

  constexpr size_t kCycles = 1000;
  for (size_t cycle = 0; cycle < kCycles; ++cycle) {
    const Status cycled = ProvisionLikeCycle(host, layout);
    ASSERT_TRUE(cycled.ok()) << "cycle " << cycle << ": " << cycled.ToString();
    // Steady state after EVERY destroy, not just at the end: a leak of even
    // one map entry per cycle fails on the first iteration.
    ASSERT_EQ(host.TrackedEnclaveCount(), 0u) << cycle;
    ASSERT_EQ(host.PageTableEntryCount(), 0u) << cycle;
    ASSERT_EQ(host.LockRecordCount(), 0u) << cycle;
    ASSERT_EQ(device.EnclaveCount(), 0u) << cycle;
    ASSERT_EQ(device.epc().pages_in_use(), 0u) << cycle;
  }
  // The device never held more than one enclave's footprint (+SECS).
  EXPECT_LE(device.epc().peak_pages_in_use(), layout.TotalPages() + 1);
}

TEST(SgxLifecycleTest, ConcurrentCreateDestroyIsSafeAndLeakFree) {
  // Four reactors' worth of lifecycle churn against one shared HostOs: the
  // shared hardware mutex must make the interleavings safe, and the maps
  // must come back to zero. (Runs under TSan in CI.)
  SgxDevice device(SgxDevice::Options{.epc_pages = 256});
  HostOs host(&device);
  const EnclaveLayout layout = SmallLayout();

  constexpr size_t kThreads = 4;
  constexpr size_t kCyclesPerThread = 25;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&host, &layout, &failures, t] {
      for (size_t i = 0; i < kCyclesPerThread; ++i) {
        const Status cycled = ProvisionLikeCycle(host, layout);
        if (!cycled.ok()) {
          failures[t] = cycled;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": "
                                  << failures[t].ToString();
  }
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
  EXPECT_EQ(host.PageTableEntryCount(), 0u);
  EXPECT_EQ(host.LockRecordCount(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
}

}  // namespace
}  // namespace engarde::sgx
