#include "core/negotiation.h"

#include <gtest/gtest.h>

#include "core/engarde.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "workload/synth_libc.h"

namespace engarde::core {
namespace {

PolicySet FullMenu() {
  PolicySet menu;
  auto db = workload::BuildLibcHashDb({});
  EXPECT_TRUE(db.ok());
  menu.push_back(std::make_unique<LibraryLinkingPolicy>(
      "synth-musl v1.0.5", std::move(db).value()));
  menu.push_back(std::make_unique<StackProtectionPolicy>());
  menu.push_back(std::make_unique<IndirectCallPolicy>());
  return menu;
}

TEST(NegotiationTest, OfferListsFingerprints) {
  const PolicySet menu = FullMenu();
  const PolicyOffer offer = PolicyOffer::FromPolicies(menu);
  ASSERT_EQ(offer.fingerprints.size(), 3u);
  EXPECT_EQ(offer.fingerprints[0].rfind("library-linking(", 0), 0u);
  EXPECT_EQ(offer.fingerprints[1].rfind("stack-protection(", 0), 0u);
  EXPECT_EQ(offer.fingerprints[2].rfind("indirect-call-check(", 0), 0u);
}

TEST(NegotiationTest, OfferSerializationRoundTrip) {
  const PolicyOffer offer = PolicyOffer::FromPolicies(FullMenu());
  auto parsed = PolicyOffer::Deserialize(offer.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->fingerprints, offer.fingerprints);
  EXPECT_FALSE(PolicyOffer::Deserialize(ToBytes("junk")).ok());
}

TEST(NegotiationTest, ClientSelectsByPrefix) {
  const PolicyOffer offer = PolicyOffer::FromPolicies(FullMenu());
  auto selection = SelectFromOffer(
      offer, {"stack-protection(", "indirect-call-check("});
  ASSERT_TRUE(selection.ok());
  ASSERT_EQ(selection->fingerprints.size(), 2u);
  EXPECT_EQ(selection->fingerprints[0], offer.fingerprints[1]);
}

TEST(NegotiationTest, MissingPolicyIsAnError) {
  const PolicyOffer offer = PolicyOffer::FromPolicies(FullMenu());
  auto selection = SelectFromOffer(offer, {"taint-tracking("});
  ASSERT_FALSE(selection.ok());
  EXPECT_EQ(selection.status().code(), StatusCode::kNotFound);
}

TEST(NegotiationTest, ExactFingerprintPinning) {
  const PolicyOffer offer = PolicyOffer::FromPolicies(FullMenu());
  // Pinning the full fingerprint works...
  auto pinned = SelectFromOffer(offer, {offer.fingerprints[0]});
  ASSERT_TRUE(pinned.ok());
  // ...and a fingerprint for a *different* db (different library version)
  // does not match.
  auto db104 = workload::BuildLibcHashDb({.version = "1.0.4"});
  ASSERT_TRUE(db104.ok());
  LibraryLinkingPolicy other("synth-musl v1.0.4", std::move(db104).value());
  auto wrong = SelectFromOffer(offer, {other.Fingerprint()});
  EXPECT_FALSE(wrong.ok());
}

TEST(NegotiationTest, ApplySelectionReducesMenu) {
  PolicySet menu = FullMenu();
  const PolicyOffer offer = PolicyOffer::FromPolicies(menu);
  PolicySelection selection;
  selection.fingerprints = {offer.fingerprints[2], offer.fingerprints[1]};

  auto agreed = ApplySelection(std::move(menu), selection);
  ASSERT_TRUE(agreed.ok());
  ASSERT_EQ(agreed->size(), 2u);
  // Selection order preserved: ifcc first, stackprot second.
  EXPECT_EQ((*agreed)[0]->name(), "indirect-call-check");
  EXPECT_EQ((*agreed)[1]->name(), "stack-protection");
}

TEST(NegotiationTest, ApplySelectionRejectsUnknownAndRepeats) {
  {
    PolicySet menu = FullMenu();
    PolicySelection bad;
    bad.fingerprints = {"nonexistent(policy)"};
    EXPECT_FALSE(ApplySelection(std::move(menu), bad).ok());
  }
  {
    PolicySet menu = FullMenu();
    const std::string fp = menu[1]->Fingerprint();
    PolicySelection repeat;
    repeat.fingerprints = {fp, fp};
    EXPECT_FALSE(ApplySelection(std::move(menu), repeat).ok());
  }
}

TEST(NegotiationTest, AgreedSetDeterminesMeasurement) {
  // End-to-end property of the negotiation: both parties can derive the
  // expected MRENCLAVE from the agreed fingerprints alone, and different
  // selections give different measurements.
  EngardeOptions options;

  PolicySet menu1 = FullMenu();
  const PolicyOffer offer = PolicyOffer::FromPolicies(menu1);
  PolicySelection sel_a;
  sel_a.fingerprints = {offer.fingerprints[1]};
  auto agreed_a = ApplySelection(std::move(menu1), sel_a);
  ASSERT_TRUE(agreed_a.ok());

  PolicySet menu2 = FullMenu();
  PolicySelection sel_b;
  sel_b.fingerprints = {offer.fingerprints[1], offer.fingerprints[2]};
  auto agreed_b = ApplySelection(std::move(menu2), sel_b);
  ASSERT_TRUE(agreed_b.ok());

  auto m_a = EngardeEnclave::ExpectedMeasurement(*agreed_a, options);
  auto m_b = EngardeEnclave::ExpectedMeasurement(*agreed_b, options);
  ASSERT_TRUE(m_a.ok() && m_b.ok());
  EXPECT_NE(*m_a, *m_b);

  // And a re-derivation from an identical selection matches exactly.
  PolicySet menu3 = FullMenu();
  auto agreed_a2 = ApplySelection(std::move(menu3), sel_a);
  ASSERT_TRUE(agreed_a2.ok());
  auto m_a2 = EngardeEnclave::ExpectedMeasurement(*agreed_a2, options);
  ASSERT_TRUE(m_a2.ok());
  EXPECT_EQ(*m_a, *m_a2);
}

TEST(NegotiationTest, SelectionSerializationRoundTrip) {
  PolicySelection selection;
  selection.fingerprints = {"a(1)", "b(2)"};
  auto parsed = PolicySelection::Deserialize(selection.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->fingerprints, selection.fingerprints);
}

}  // namespace
}  // namespace engarde::core
