// The /CONFIDENTIAL scenario from the paper (Sections 5 and 6): the provider
// requires the client's code to be linked against a specific
// information-flow-confinement library *in addition to* the patched libc.
// LibraryLinkingPolicy is library-agnostic, so the scenario is two instances
// of the same policy with different hash databases — this test pins that
// composition down.
#include <gtest/gtest.h>

#include "core/policy_liblink.h"
#include "workload/program_builder.h"
#include "x86/decoder.h"

namespace engarde::core {
namespace {

struct Inspected {
  elf::ElfFile elf;
  x86::InsnBuffer insns;
  SymbolHashTable symbols;
};

Inspected Inspect(const Bytes& image) {
  auto elf = elf::ElfFile::Parse(ByteView(image.data(), image.size()));
  EXPECT_TRUE(elf.ok());
  Inspected out{std::move(elf).value(), x86::InsnBuffer(), SymbolHashTable()};
  for (const elf::Shdr* section : out.elf.TextSections()) {
    auto content = out.elf.SectionContent(*section);
    EXPECT_TRUE(content.ok());
    auto insns = x86::DecodeAll(*content, section->addr);
    EXPECT_TRUE(insns.ok());
    for (const auto& insn : *insns) out.insns.Append(insn);
  }
  out.symbols = SymbolHashTable::Build(out.elf);
  return out;
}

// Splits the synthetic libc database into "libc" functions and a
// "/CONFIDENTIAL"-style subset (the io/flow-relevant function names), as a
// provider with two library requirements would maintain two databases.
void SplitDb(const LibraryHashDb& full, LibraryHashDb& libc_out,
             LibraryHashDb& confidential_out) {
  const Bytes wire = full.Serialize();
  auto parsed = LibraryHashDb::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  // Re-walk the serialized form: name length + name + digest.
  ByteReader reader(ByteView(wire.data(), wire.size()));
  uint32_t count = 0;
  ASSERT_TRUE(reader.ReadLe32(count));
  const std::set<std::string> confidential_names = {
      "open", "close", "read", "write", "send", "recv", "socket"};
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    ByteView name_bytes, digest_bytes;
    ASSERT_TRUE(reader.ReadLe32(len));
    ASSERT_TRUE(reader.ReadBytes(len, name_bytes));
    ASSERT_TRUE(reader.ReadBytes(32, digest_bytes));
    crypto::Sha256Digest digest;
    std::copy(digest_bytes.begin(), digest_bytes.end(), digest.begin());
    const std::string name = ToString(name_bytes);
    if (confidential_names.count(name) != 0) {
      confidential_out.Add(name, digest);
    } else {
      libc_out.Add(name, digest);
    }
  }
}

TEST(ConfidentialScenarioTest, TwoLibraryPoliciesCompose) {
  workload::ProgramSpec spec;
  spec.seed = 2017;
  spec.target_instructions = 20000;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto full_db = workload::BuildLibcHashDb(program->libc_options);
  ASSERT_TRUE(full_db.ok());

  LibraryHashDb libc_db, confidential_db;
  SplitDb(*full_db, libc_db, confidential_db);
  ASSERT_GT(confidential_db.size(), 0u);
  ASSERT_GT(libc_db.size(), 0u);

  const Inspected inspected = Inspect(program->image);
  PolicyContext context;
  context.insns = &inspected.insns;
  context.symbols = &inspected.symbols;
  context.elf = &inspected.elf;

  LibraryLinkingPolicy libc_policy("synth-musl v1.0.5", std::move(libc_db));
  LibraryLinkingPolicy confidential_policy("/CONFIDENTIAL v1",
                                           std::move(confidential_db));
  // Both pass on the honest build.
  EXPECT_TRUE(libc_policy.Check(context).ok());
  EXPECT_TRUE(confidential_policy.Check(context).ok());

  // Distinct fingerprints -> distinct attested identities for the two
  // library requirements.
  EXPECT_NE(libc_policy.Fingerprint(), confidential_policy.Fingerprint());
}

TEST(ConfidentialScenarioTest, PatchedConfinementLibraryCaught) {
  // The client patches the "confinement" functions (a v1.0.4-style change
  // confined to the io subset): the /CONFIDENTIAL policy must fire even when
  // the generic libc policy for the *other* functions still passes.
  workload::ProgramSpec spec;
  spec.seed = 2018;
  spec.target_instructions = 20000;
  spec.libc.version = "1.0.4";  // whole library differs...
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  workload::SynthLibcOptions agreed = program->libc_options;
  agreed.version = "1.0.5";
  auto agreed_db = workload::BuildLibcHashDb(agreed);
  ASSERT_TRUE(agreed_db.ok());
  LibraryHashDb libc_db, confidential_db;
  SplitDb(*agreed_db, libc_db, confidential_db);

  const Inspected inspected = Inspect(program->image);
  PolicyContext context;
  context.insns = &inspected.insns;
  context.symbols = &inspected.symbols;
  context.elf = &inspected.elf;

  LibraryLinkingPolicy confidential_policy("/CONFIDENTIAL v1",
                                           std::move(confidential_db));
  const Status status = confidential_policy.Check(context);
  // Fires only if some direct call targets a confinement function; the
  // 20000-insn corpus makes hundreds of libc calls, so with 7 functions in
  // the confinement set a hit is deterministic for this seed.
  EXPECT_EQ(status.code(), StatusCode::kPolicyViolation) << status.ToString();
  EXPECT_NE(status.message().find("/CONFIDENTIAL"), std::string::npos);
}

}  // namespace
}  // namespace engarde::core
