// Multi-session provisioning through ProvisioningServer: N concurrent client
// exchanges against one shared SGX device / host OS / inspection pool must
// produce verdicts, statistics and per-phase SGX-instruction attribution
// bit-for-bit identical to driving the same sessions serially — the paper's
// determinism requirement (the provider learns nothing from timing-dependent
// accounting drift) lifted to the multiplexed server.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/inspection.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 768;  // small keys keep the suite fast
constexpr size_t kSessions = 8;

class SessionServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe =
        sgx::QuotingEnclave::Provision(ToBytes("server-device"), kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    programs_ = new std::vector<workload::BuiltProgram>();
    for (size_t i = 0; i < kSessions; ++i) {
      workload::ProgramSpec spec;
      spec.name = "session-" + std::to_string(i);
      spec.seed = 900 + i;
      spec.target_instructions = 2500;
      // Even sessions carry stack protectors (compliant under the policy),
      // odd sessions are plain builds (violating).
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      programs_->push_back(std::move(program).value());
    }
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete programs_;
    programs_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const workload::BuiltProgram& program(size_t i) {
    return (*programs_)[i];
  }

  // A compact per-enclave layout so kSessions enclaves coexist in the EPC
  // without eviction (evictions would make accounting interleaving-
  // dependent).
  static EngardeOptions EnclaveOptions() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  static size_t EpcPagesFor(size_t sessions) {
    return sessions * EnclaveOptions().layout.TotalPages() + 64;
  }

  static sgx::QuotingEnclave* qe_;
  static std::vector<workload::BuiltProgram>* programs_;
};

sgx::QuotingEnclave* SessionServerTest::qe_ = nullptr;
std::vector<workload::BuiltProgram>* SessionServerTest::programs_ = nullptr;

// Everything one session's provisioning must keep invariant under the
// driving mode (serial Drive loop vs. concurrent DriveAll).
struct SessionSnapshot {
  bool compliant = false;
  std::string reason;
  std::string rejection_stage, rejection_rule;
  uint64_t rejection_vaddr = 0;
  size_t instruction_count = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  size_t stage_count = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

void ExpectSameSnapshot(const SessionSnapshot& serial,
                        const SessionSnapshot& concurrent,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, concurrent.compliant) << label;
  EXPECT_EQ(serial.reason, concurrent.reason) << label;
  EXPECT_EQ(serial.rejection_stage, concurrent.rejection_stage) << label;
  EXPECT_EQ(serial.rejection_rule, concurrent.rejection_rule) << label;
  EXPECT_EQ(serial.rejection_vaddr, concurrent.rejection_vaddr) << label;
  EXPECT_EQ(serial.instruction_count, concurrent.instruction_count) << label;
  EXPECT_EQ(serial.blocks_received, concurrent.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, concurrent.relocations_applied)
      << label;
  EXPECT_EQ(serial.stage_count, concurrent.stage_count) << label;
  EXPECT_EQ(serial.disassembly_sgx, concurrent.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, concurrent.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, concurrent.loading_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, concurrent.channel_sgx) << label;
  EXPECT_EQ(serial.total_sgx, concurrent.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, concurrent.trampolines) << label;
}

SessionSnapshot Snap(const ProvisionOutcome& outcome,
                     const sgx::CycleAccountant& accountant) {
  SessionSnapshot snap;
  snap.compliant = outcome.verdict.compliant;
  snap.reason = outcome.verdict.reason;
  if (outcome.verdict.rejection.has_value()) {
    snap.rejection_stage = outcome.verdict.rejection->stage;
    snap.rejection_rule = outcome.verdict.rejection->rule;
    snap.rejection_vaddr = outcome.verdict.rejection->vaddr;
  }
  snap.instruction_count = outcome.stats.instruction_count;
  snap.blocks_received = outcome.stats.blocks_received;
  snap.relocations_applied = outcome.stats.relocations_applied;
  snap.stage_count = outcome.stage_reports.size();
  snap.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  snap.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  snap.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  snap.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  snap.total_sgx = accountant.total_sgx_instructions();
  snap.trampolines = accountant.total_trampolines();
  return snap;
}

// Accepts kSessions clients (alternating compliant/violating programs)
// against a fresh server and drives them either serially or concurrently.
Result<std::vector<SessionSnapshot>> RunServer(
    const sgx::QuotingEnclave& qe,
    const std::vector<workload::BuiltProgram>& programs,
    const EngardeOptions& enclave_options, size_t epc_pages,
    size_t inspection_threads, bool concurrent) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);

  ProvisioningServer::Options options;
  options.enclave_options = enclave_options;
  options.inspection_threads = inspection_threads;
  ProvisioningServer server(
      &host, &qe,
      [] {
        PolicySet policies;
        policies.push_back(std::make_unique<StackProtectionPolicy>());
        return policies;
      },
      options);

  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < programs.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    if (index != i) return InternalError("unexpected session index");
    client::ClientOptions client_options;
    client_options.attestation_key = qe.attestation_public_key();
    client_options.skip_measurement_check = true;
    client::Client client(client_options, programs[i].image);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }

  std::vector<SessionSnapshot> snaps;
  if (concurrent) {
    auto outcomes = server.DriveAll();
    for (size_t i = 0; i < outcomes.size(); ++i) {
      RETURN_IF_ERROR(outcomes[i].status());
      snaps.push_back(Snap(*outcomes[i], server.session_accountant(i)));
    }
  } else {
    for (size_t i = 0; i < programs.size(); ++i) {
      ASSIGN_OR_RETURN(const ProvisionOutcome outcome, server.Drive(i));
      snaps.push_back(Snap(outcome, server.session_accountant(i)));
    }
  }
  return snaps;
}

TEST_F(SessionServerTest, EightMixedSessionsSerialVsConcurrentBitIdentical) {
  // The acceptance gate: 8 concurrent clients (4 compliant, 4 violating)
  // against one server, serial and concurrent driving indistinguishable in
  // every verdict, stat and per-phase SGX column. A shared 2-thread
  // inspection pool makes the concurrent run exercise pool sharing too.
  auto serial = RunServer(qe(), *programs_, EnclaveOptions(),
                          EpcPagesFor(kSessions), /*inspection_threads=*/2,
                          /*concurrent=*/false);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto concurrent = RunServer(qe(), *programs_, EnclaveOptions(),
                              EpcPagesFor(kSessions), /*inspection_threads=*/2,
                              /*concurrent=*/true);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();

  ASSERT_EQ(serial->size(), kSessions);
  ASSERT_EQ(concurrent->size(), kSessions);
  for (size_t i = 0; i < kSessions; ++i) {
    const std::string label = "session " + std::to_string(i);
    ExpectSameSnapshot((*serial)[i], (*concurrent)[i], label);
    // The mix itself: even = stack-protected = compliant, odd = rejected
    // with a structured PolicyCheck/stack-protection diagnosis.
    if (i % 2 == 0) {
      EXPECT_TRUE((*serial)[i].compliant) << label << ": "
                                          << (*serial)[i].reason;
      EXPECT_TRUE((*serial)[i].rejection_stage.empty()) << label;
    } else {
      EXPECT_FALSE((*serial)[i].compliant) << label;
      EXPECT_EQ((*serial)[i].rejection_stage, "PolicyCheck") << label;
      EXPECT_EQ((*serial)[i].rejection_rule, "stack-protection") << label;
      EXPECT_NE((*serial)[i].rejection_vaddr, 0u) << label;
    }
    EXPECT_GT((*serial)[i].instruction_count, 0u) << label;
    EXPECT_GT((*serial)[i].blocks_received, 0u) << label;
    EXPECT_GT((*serial)[i].total_sgx, 0u) << label;
  }
}

TEST_F(SessionServerTest, ServerVerdictMatchesStandaloneProvisioning) {
  // One session through the server must reach the same verdict and stats as
  // the one-shot EngardeEnclave::RunProvisioning path for the same program.
  for (const size_t which : {size_t{0}, size_t{1}}) {
    const workload::BuiltProgram& prog = program(which);

    std::vector<workload::BuiltProgram> one = {prog};
    auto via_server =
        RunServer(qe(), one, EnclaveOptions(), EpcPagesFor(1),
                  /*inspection_threads=*/1, /*concurrent=*/false);
    ASSERT_TRUE(via_server.ok()) << via_server.status().ToString();

    sgx::SgxDevice device(
        sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
    sgx::HostOs host(&device);
    PolicySet policies;
    policies.push_back(std::make_unique<StackProtectionPolicy>());
    auto enclave = EngardeEnclave::Create(&host, qe(), std::move(policies),
                                          EnclaveOptions());
    ASSERT_TRUE(enclave.ok());
    crypto::DuplexPipe pipe;
    ASSERT_TRUE(enclave->SendHello(pipe.EndA()).ok());
    client::ClientOptions client_options;
    client_options.attestation_key = qe().attestation_public_key();
    client_options.skip_measurement_check = true;
    client::Client client(client_options, prog.image);
    ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());
    auto direct = enclave->RunProvisioning(pipe.EndA());
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    EXPECT_EQ(via_server->front().compliant, direct->verdict.compliant);
    EXPECT_EQ(via_server->front().reason, direct->verdict.reason);
    EXPECT_EQ(via_server->front().instruction_count,
              direct->stats.instruction_count);
    EXPECT_EQ(via_server->front().blocks_received,
              direct->stats.blocks_received);
    EXPECT_EQ(via_server->front().stage_count,
              direct->stage_reports.size());
  }
}

TEST_F(SessionServerTest, StructuredRejectionReachesTheClient) {
  // The (stage, rule, vaddr) diagnosis must survive the verdict wire format
  // and land in the client's deserialized Verdict — not just in the server-
  // side outcome.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = EnclaveOptions();
  ProvisioningServer server(
      &host, &qe(),
      [] {
        PolicySet policies;
        policies.push_back(std::make_unique<StackProtectionPolicy>());
        return policies;
      },
      options);

  crypto::DuplexPipe pipe;
  ASSERT_TRUE(server.Accept(pipe.EndA()).ok());
  client::ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program(1).image);  // violating
  ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());

  auto outcome = server.Drive(0);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_FALSE(outcome->verdict.compliant);

  auto verdict = client.AwaitVerdict();
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_FALSE(verdict->compliant);
  ASSERT_TRUE(verdict->rejection.has_value());
  EXPECT_EQ(verdict->rejection->stage, "PolicyCheck");
  EXPECT_EQ(verdict->rejection->rule, "stack-protection");
  EXPECT_NE(verdict->rejection->vaddr, 0u);
  EXPECT_EQ(verdict->reason, outcome->verdict.reason);
  // The provider-visible report stays a bare compliance bit.
  EXPECT_FALSE(outcome->provider_report.compliant);
  EXPECT_TRUE(outcome->provider_report.executable_pages.empty());
}

TEST_F(SessionServerTest, StageReportsCoverEveryStage) {
  // Compliant run: one report per pipeline stage, all passed. Rejected run:
  // the failing stage reports kRejected and everything after it kSkipped.
  std::vector<workload::BuiltProgram> one = {program(0)};
  auto ok_run = RunServer(qe(), one, EnclaveOptions(), EpcPagesFor(1), 1,
                          /*concurrent=*/false);
  ASSERT_TRUE(ok_run.ok());
  EXPECT_EQ(ok_run->front().stage_count,
            static_cast<size_t>(StageId::kCount));

  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = EnclaveOptions();
  ProvisioningServer server(
      &host, &qe(),
      [] {
        PolicySet policies;
        policies.push_back(std::make_unique<StackProtectionPolicy>());
        return policies;
      },
      options);
  crypto::DuplexPipe pipe;
  ASSERT_TRUE(server.Accept(pipe.EndA()).ok());
  client::ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program(1).image);
  ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());
  auto outcome = server.Drive(0);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->stage_reports.size(),
            static_cast<size_t>(StageId::kCount));
  bool saw_rejected = false;
  for (const StageReport& report : outcome->stage_reports) {
    if (report.stage == StageId::kPolicyCheck) {
      EXPECT_EQ(report.outcome, StageOutcome::kRejected);
      saw_rejected = true;
    } else if (saw_rejected) {
      EXPECT_EQ(report.outcome, StageOutcome::kSkipped)
          << StageName(report.stage);
    } else {
      EXPECT_EQ(report.outcome, StageOutcome::kPassed)
          << StageName(report.stage);
    }
  }
  EXPECT_TRUE(saw_rejected);
}

TEST_F(SessionServerTest, DriveReportsStalledSessionOnSilentClient) {
  // A client that connects but never sends the wrapped key leaves the
  // session parked in Handshake; Drive must flag the stall instead of
  // blocking or fabricating a verdict.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = EnclaveOptions();
  ProvisioningServer server(
      &host, &qe(), [] { return PolicySet{}; }, options);
  crypto::DuplexPipe pipe;
  ASSERT_TRUE(server.Accept(pipe.EndA()).ok());
  auto outcome = server.Drive(0);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(outcome.status().message().find("stalled"), std::string::npos);

  // Out-of-range index is a caller bug, reported as such.
  EXPECT_EQ(server.Drive(7).status().code(), StatusCode::kOutOfRange);
}

TEST_F(SessionServerTest, RejectionClassificationSplitsResourceErrors) {
  // kResourceExhausted used to be lumped into the client-attributable
  // bucket; it is an enclave capacity condition, so it must classify as
  // retryable, never as a client rejection.
  EXPECT_TRUE(IsClientRejection(PolicyViolationError("x")));
  EXPECT_TRUE(IsClientRejection(InvalidArgumentError("x")));
  EXPECT_TRUE(IsClientRejection(UnimplementedError("x")));
  EXPECT_TRUE(IsClientRejection(OutOfRangeError("x")));
  EXPECT_FALSE(IsClientRejection(ResourceExhaustedError("x")));
  EXPECT_FALSE(IsClientRejection(IntegrityError("x")));
  EXPECT_FALSE(IsClientRejection(InternalError("x")));
  EXPECT_FALSE(IsClientRejection(Status::Ok()));

  EXPECT_TRUE(IsRetryableResourceError(ResourceExhaustedError("x")));
  EXPECT_FALSE(IsRetryableResourceError(PolicyViolationError("x")));
  EXPECT_FALSE(IsRetryableResourceError(InternalError("x")));
  EXPECT_FALSE(IsRetryableResourceError(Status::Ok()));
}

TEST_F(SessionServerTest, DrivingASessionTwiceIsFailedPrecondition) {
  // Drive() moves the outcome out of the session; a second Drive() on the
  // same index must refuse explicitly instead of re-running the consumed
  // state machine.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = EnclaveOptions();
  ProvisioningServer server(
      &host, &qe(),
      [] {
        PolicySet policies;
        policies.push_back(std::make_unique<StackProtectionPolicy>());
        return policies;
      },
      options);
  crypto::DuplexPipe pipe;
  auto index = server.Accept(pipe.EndA());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  client::ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program(0).image);
  ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());

  auto first = server.Drive(*index);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->verdict.compliant);
  const auto second = server.Drive(*index);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace engarde::core
