#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/status.h"

namespace engarde {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PolicyViolationError("function f not protected");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPolicyViolation);
  EXPECT_EQ(s.ToString(), "POLICY_VIOLATION: function f not protected");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  ASSIGN_OR_RETURN(const int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(InternalError("boom")).status().code(),
            StatusCode::kInternal);
}

Status FailsIfNegative(int v) {
  RETURN_IF_ERROR(v < 0 ? InvalidArgumentError("negative") : Status::Ok());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsIfNegative(1).ok());
  EXPECT_EQ(FailsIfNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(BytesTest, LittleEndianRoundTrip) {
  uint8_t buf[8];
  StoreLe64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadLe64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(LoadLe32(buf), 0x89abcdefu);
  EXPECT_EQ(LoadLe16(buf), 0xcdefu);
  EXPECT_EQ(buf[0], 0xef);  // least significant byte first
}

TEST(BytesTest, BigEndianRoundTrip) {
  uint8_t buf[8];
  StoreBe64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadBe64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);  // most significant byte first
}

TEST(BytesTest, AppendHelpers) {
  Bytes out;
  AppendLe16(out, 0x1122);
  AppendLe32(out, 0x33445566);
  AppendLe64(out, 0x778899aabbccddeeULL);
  AppendBytes(out, ToBytes("xy"));
  ASSERT_EQ(out.size(), 16u);
  EXPECT_EQ(LoadLe16(out.data()), 0x1122);
  EXPECT_EQ(LoadLe32(out.data() + 2), 0x33445566u);
  EXPECT_EQ(LoadLe64(out.data() + 6), 0x778899aabbccddeeULL);
  EXPECT_EQ(out[14], 'x');
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = ToBytes("hello");
  const Bytes b = ToBytes("hello");
  const Bytes c = ToBytes("hellO");
  const Bytes d = ToBytes("hell");
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(ByteReaderTest, SequentialReads) {
  Bytes data;
  AppendLe32(data, 7);
  AppendLe64(data, 9);
  data.push_back(0xaa);
  ByteReader reader(ByteView(data.data(), data.size()));

  uint32_t a = 0;
  uint64_t b = 0;
  uint8_t c = 0;
  EXPECT_TRUE(reader.ReadLe32(a));
  EXPECT_TRUE(reader.ReadLe64(b));
  EXPECT_TRUE(reader.ReadU8(c));
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, 9u);
  EXPECT_EQ(c, 0xaa);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteReaderTest, RefusesOutOfRange) {
  Bytes data = {1, 2, 3};
  ByteReader reader(ByteView(data.data(), data.size()));
  uint32_t v = 0;
  EXPECT_FALSE(reader.ReadLe32(v));
  // Position unchanged after a failed read.
  uint8_t b = 0;
  EXPECT_TRUE(reader.ReadU8(b));
  EXPECT_EQ(b, 1);
  ByteView span;
  EXPECT_FALSE(reader.ReadBytes(3, span));
  EXPECT_TRUE(reader.ReadBytes(2, span));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(HexTest, EncodeDecodeRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(data), "0001abff");
  auto decoded = HexDecode("0001abff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, DecodeAcceptsUppercase) {
  auto decoded = HexDecode("ABCDEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(HexEncode(*decoded), "abcdef");
}

TEST(HexTest, DecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // non-hex
  EXPECT_TRUE(HexDecode("").ok());       // empty is fine
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(12345), b(12345), c(54321);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextInRange(3, 5));
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 4, 5}));
}

TEST(RngTest, NextBytesLengthAndDeterminism) {
  Rng a(99), b(99);
  EXPECT_EQ(a.NextBytes(33), b.NextBytes(33));
  EXPECT_EQ(a.NextBytes(0).size(), 0u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.NextChance(1, 1));
    EXPECT_FALSE(rng.NextChance(0, 1));
  }
}

// Property sweep: NextBelow over many bounds never escapes and hits both
// halves of the range (crude uniformity check).
class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, InBoundsAndSpread) {
  const uint64_t bound = GetParam();
  Rng rng(bound ^ 0xdeadbeef);
  bool low_half = false, high_half = false;
  for (int i = 0; i < 512; ++i) {
    const uint64_t v = rng.NextBelow(bound);
    ASSERT_LT(v, bound);
    if (v < bound / 2) low_half = true;
    if (v >= bound / 2) high_half = true;
  }
  EXPECT_TRUE(high_half);
  if (bound > 1) {
    EXPECT_TRUE(low_half);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 10, 255, 256, 1000,
                                           1ull << 32, (1ull << 63) + 5));

}  // namespace
}  // namespace engarde
