#include "core/loader.h"

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "elf/builder.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : device_(sgx::SgxDevice::Options{.epc_pages = 512}), host_(&device_) {
    layout_.bootstrap_pages = 1;
    layout_.heap_pages = 32;
    layout_.load_pages = 32;
    layout_.stack_pages = 4;
    auto eid = host_.BuildEnclave(layout_, ToBytes("B"));
    EXPECT_TRUE(eid.ok());
    eid_ = *eid;
  }

  sgx::SgxDevice device_;
  sgx::HostOs host_;
  sgx::EnclaveLayout layout_;
  uint64_t eid_ = 0;
};

TEST_F(LoaderTest, MapsSegmentsAndAppliesRelocations) {
  // Text + data with one RELATIVE relocation pointing at the text base.
  elf::ElfBuilder builder;
  Bytes text(64, 0x90);
  text[63] = 0xc3;
  const uint64_t tv = builder.AddTextSection(".text", text);
  const uint64_t dv = builder.AddDataSection(".data", Bytes(16, 0xaa));
  builder.AddSymbol("main", tv, 64, elf::kSttFunc);
  builder.AddRelativeRelocation(dv, static_cast<int64_t>(tv));
  builder.SetEntry(tv);
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());
  auto elf = elf::ElfFile::Parse(*image);
  ASSERT_TRUE(elf.ok());

  const Bytes canary = ToBytes("12345678");
  auto load = EnclaveLoader::Load(device_, eid_, layout_, *elf,
                                  ByteView(canary.data(), canary.size()));
  ASSERT_TRUE(load.ok()) << load.status().ToString();

  EXPECT_EQ(load->load_base, layout_.LoadStart());
  EXPECT_EQ(load->entry, load->load_base + tv);
  EXPECT_EQ(load->relocations_applied, 1u);

  // Text content landed at load_base + tv.
  Bytes readback(64);
  ASSERT_TRUE(device_
                  .EnclaveRead(eid_, load->load_base + tv,
                               MutableByteView(readback.data(), 64))
                  .ok());
  EXPECT_EQ(readback, text);

  // The relocated slot holds load_base + addend.
  Bytes slot(8);
  ASSERT_TRUE(device_
                  .EnclaveRead(eid_, load->load_base + dv,
                               MutableByteView(slot.data(), 8))
                  .ok());
  EXPECT_EQ(LoadLe64(slot.data()), load->load_base + tv);

  // Canary installed at fs:0x28.
  Bytes canary_read(8);
  ASSERT_TRUE(device_
                  .EnclaveRead(eid_, load->tls_base + 0x28,
                               MutableByteView(canary_read.data(), 8))
                  .ok());
  EXPECT_EQ(canary_read, canary);
}

TEST_F(LoaderTest, ExecutablePagesCoverTextOnly) {
  workload::ProgramSpec spec;
  spec.target_instructions = 1800;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto elf = elf::ElfFile::Parse(ByteView(program->image.data(),
                                          program->image.size()));
  ASSERT_TRUE(elf.ok());

  auto load = EnclaveLoader::Load(device_, eid_, layout_, *elf, {});
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  ASSERT_FALSE(load->executable_pages.empty());

  // Every executable page must intersect an executable segment, and no
  // data-segment page may appear.
  for (const uint64_t page : load->executable_pages) {
    const uint64_t file_vaddr = page - load->load_base;
    bool in_text = false;
    for (const elf::Phdr& ph : elf->segments()) {
      if (ph.type != elf::kPtLoad || !(ph.flags & elf::kPfX)) continue;
      if (file_vaddr + sgx::kPageSize > ph.vaddr &&
          file_vaddr < ph.vaddr + ph.memsz) {
        in_text = true;
      }
    }
    EXPECT_TRUE(in_text) << "page " << std::hex << page;
  }
}

TEST_F(LoaderTest, RejectsOversizedExecutable) {
  elf::ElfBuilder builder;
  const uint64_t tv = builder.AddTextSection(".text", Bytes(64, 0x90));
  builder.AddSymbol("main", tv, 64, elf::kSttFunc);
  // bss larger than the whole load region.
  builder.AddBss(layout_.load_pages * sgx::kPageSize + sgx::kPageSize);
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());
  auto elf = elf::ElfFile::Parse(*image);
  ASSERT_TRUE(elf.ok());
  EXPECT_EQ(EnclaveLoader::Load(device_, eid_, layout_, *elf, {}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ProtocolTest, ManifestRoundTrip) {
  Manifest manifest;
  manifest.file_size = 123456;
  manifest.code_pages = {1, 2, 3, 17};
  auto parsed = Manifest::Deserialize(manifest.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->file_size, 123456u);
  EXPECT_EQ(parsed->code_pages, manifest.code_pages);
}

TEST(ProtocolTest, ManifestRejectsTruncation) {
  Manifest manifest;
  manifest.file_size = 1;
  manifest.code_pages = {1, 2};
  Bytes wire = manifest.Serialize();
  wire.pop_back();
  EXPECT_FALSE(Manifest::Deserialize(wire).ok());
  wire.push_back(0);
  wire.push_back(0);  // trailing
  EXPECT_FALSE(Manifest::Deserialize(wire).ok());
}

TEST(ProtocolTest, VerdictRoundTrip) {
  Verdict verdict;
  verdict.compliant = false;
  verdict.reason = "function f: no stack-protector prologue";
  auto parsed = Verdict::Deserialize(verdict.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->compliant);
  EXPECT_EQ(parsed->reason, verdict.reason);
}

TEST(ProtocolTest, FramesRoundTrip) {
  crypto::DuplexPipe pipe;
  auto a = pipe.EndA();
  auto b = pipe.EndB();
  ASSERT_TRUE(WriteFrame(a, ToBytes("hello")).ok());
  ASSERT_TRUE(WriteFrame(a, {}).ok());
  auto first = ReadFrame(b);
  auto second = ReadFrame(b);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(ToString(ByteView(first->data(), first->size())), "hello");
  EXPECT_TRUE(second->empty());
}

TEST(ProtocolTest, OversizedFrameRejected) {
  crypto::DuplexPipe pipe;
  auto a = pipe.EndA();
  Bytes header;
  AppendLe32(header, 0x7fffffff);
  a.Write(ByteView(header.data(), header.size()));
  auto b = pipe.EndB();
  EXPECT_EQ(ReadFrame(b).status().code(), StatusCode::kProtocolError);
}

}  // namespace
}  // namespace engarde::core
