// Fleet provisioning through the group-aware front end (core/frontend.h +
// core/group_session.h): one connection declares a GroupManifest, the
// admission controller co-admits the whole group atomically against the
// shared EpcBudget, one shared channel uploads each distinct binary once,
// and MAGE-style mutual verification cross-checks every member's declared
// sibling measurements against the actually-inspected identities.
//
// The gates:
//  * Atomicity soak: a group that cannot be admitted in full — EPC budget
//    exhaustion mid-group, or a manifest that turns invalid at member k>0 —
//    retains NOTHING: zero extra enclaves, zero committed pages beyond the
//    warm pool's own reservation, every warm handout returned, no page-table
//    or lock records left behind.
//  * Single-member groups are bit-for-bit identical — verdict, stage
//    reports, per-phase SGX instruction attribution — to the pre-refactor
//    solo path (serial ProvisioningServer::Drive) at 1/2/8 inspection
//    threads.
//  * A sibling-measurement mismatch rejects the WHOLE group with a
//    structured Rejection{stage: "GroupVerify"} visible on the wire in
//    every member's verdict.
//  * A replica set sharing one verdict cache inspects once: one miss, N-1
//    full hits, fingerprints still equal to a no-cache serial reference.
//  * client::Client::AwaitAdmission surfaces kRetryAfter as a retry value
//    and kDeadlineExceeded as a DEADLINE_EXCEEDED error even while a retry
//    is pending from an earlier shed.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/client.h"
#include "core/frontend.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "core/verdict_cache.h"
#include "net/transport.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 512;

PolicySet MakePolicies() {
  PolicySet policies;
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  return policies;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& q) {
  client::ClientOptions options;
  options.attestation_key = q.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

class FrontendGroupProvisionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("group-provision-device"),
                                             kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    images_ = new std::vector<Bytes>();
    // Four distinct compliant programs plus one violator, reused across the
    // tests below.
    for (size_t i = 0; i < 5; ++i) {
      workload::ProgramSpec spec;
      spec.name = "group-prov-" + std::to_string(i);
      spec.seed = 9400 + i;
      spec.target_instructions = 2000;
      spec.stack_protection = (i != 4);
      auto program = workload::BuildProgram(spec);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      images_->push_back(std::move(program->image));
    }
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete images_;
    images_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const Bytes& image(size_t i) { return (*images_)[i]; }

  static EngardeOptions EnclaveOptions(size_t inspection_threads = 1) {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    options.inspection_threads = inspection_threads;
    return options;
  }

  static size_t EpcPagesFor(size_t enclaves) {
    return enclaves * (EnclaveOptions().layout.TotalPages() + 1) + 64;
  }

  static std::string Fingerprint() {
    return PolicySetFingerprint(MakePolicies());
  }

  static sgx::QuotingEnclave* qe_;
  static std::vector<Bytes>* images_;
};

sgx::QuotingEnclave* FrontendGroupProvisionTest::qe_ = nullptr;
std::vector<Bytes>* FrontendGroupProvisionTest::images_ = nullptr;

// Same invariants as the solo frontend gate (core_frontend_test.cc).
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  size_t stage_count = 0;
  uint64_t idle_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

Snapshot Snap(const ProvisionOutcome& outcome,
              const sgx::CycleAccountant& accountant) {
  Snapshot snap;
  snap.compliant = outcome.verdict.compliant;
  snap.reason = outcome.verdict.reason;
  snap.instruction_count = outcome.stats.instruction_count;
  snap.blocks_received = outcome.stats.blocks_received;
  snap.relocations_applied = outcome.stats.relocations_applied;
  snap.stage_count = outcome.stage_reports.size();
  snap.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  snap.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  snap.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  snap.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  snap.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  snap.total_sgx = accountant.total_sgx_instructions();
  snap.trampolines = accountant.total_trampolines();
  return snap;
}

void ExpectSameSnapshot(const Snapshot& serial, const Snapshot& group,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, group.compliant) << label;
  EXPECT_EQ(serial.reason, group.reason) << label;
  EXPECT_EQ(serial.instruction_count, group.instruction_count) << label;
  EXPECT_EQ(serial.blocks_received, group.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, group.relocations_applied) << label;
  EXPECT_EQ(serial.stage_count, group.stage_count) << label;
  EXPECT_EQ(serial.idle_sgx, group.idle_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, group.channel_sgx) << label;
  EXPECT_EQ(serial.disassembly_sgx, group.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, group.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, group.loading_sgx) << label;
  EXPECT_EQ(serial.total_sgx, group.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, group.trampolines) << label;
}

// Serial reference: the same images driven one by one through the
// pre-refactor solo path on a fresh device.
Result<std::vector<Snapshot>> RunSerial(const sgx::QuotingEnclave& qe,
                                        const std::vector<Bytes>& images,
                                        const EngardeOptions& opts) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = images.size() * (opts.layout.TotalPages() + 1) + 64});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = opts;
  ProvisioningServer server(&host, &qe, MakePolicies, options);
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    (void)index;
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Snapshot> snaps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome, server.Drive(i));
    snaps.push_back(Snap(outcome, server.session_accountant(i)));
  }
  return snaps;
}

// Everything one deterministic in-memory group run produces.
struct GroupRun {
  uint64_t id = 0;
  std::vector<Snapshot> snapshots;   // member declaration order
  std::vector<Verdict> verdicts;     // as decoded by the client
  bool rejected = false;             // mutual verification overrode verdicts
  FrontendMetrics metrics;
};

// Drives one GroupClient against a group-provisioning frontend to all
// verdicts. `tamper` may replace the honest manifest before it is sent.
Result<GroupRun> RunGroup(ProvisioningFrontend& frontend,
                          const sgx::QuotingEnclave& qe,
                          const std::vector<Bytes>& images,
                          std::optional<GroupManifest> tamper = std::nullopt) {
  crypto::DuplexPipe pipe;
  client::GroupClient client(ClientOptionsFor(qe), images,
                             PolicySetFingerprint(MakePolicies()));
  if (tamper.has_value()) client.set_manifest(std::move(*tamper));

  GroupRun run;
  ASSIGN_OR_RETURN(run.id, frontend.Accept(std::make_unique<net::PipeTransport>(
                               pipe.EndA())));
  RETURN_IF_ERROR(client.SendGroupManifest(pipe.EndB()));
  RETURN_IF_ERROR(frontend.PollOnce().status());
  ASSIGN_OR_RETURN(const auto retry, client.AwaitAdmission(pipe.EndB()));
  if (retry.has_value()) {
    return ResourceExhaustedError("group was shed (RetryAfter)");
  }
  RETURN_IF_ERROR(client.SendPrograms(pipe.EndB()));
  for (;;) {
    const ConnectionState state = frontend.state(run.id);
    if (state == ConnectionState::kDone) break;
    if (state == ConnectionState::kFailed ||
        state == ConnectionState::kTimedOut) {
      return frontend.connection_status(run.id);
    }
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    if (progress == 0) {
      return InternalError("reactor stalled before the group verdicts");
    }
  }
  run.rejected = frontend.group_rejected(run.id);
  ASSIGN_OR_RETURN(const std::vector<ProvisionOutcome> outcomes,
                   frontend.TakeGroupOutcomes(run.id));
  if (outcomes.size() != images.size()) {
    return InternalError("outcome count disagrees with the group size");
  }
  for (size_t i = 0; i < outcomes.size(); ++i) {
    run.snapshots.push_back(
        Snap(outcomes[i], frontend.group_member_accountant(run.id, i)));
  }
  ASSIGN_OR_RETURN(run.verdicts, client.AwaitVerdicts());
  if (run.verdicts.size() != images.size()) {
    return InternalError("verdict count disagrees with the group size");
  }
  RETURN_IF_ERROR(frontend.DrainAll());
  run.metrics = frontend.metrics();
  return run;
}

// ---- Single-member bit-identity to the pre-refactor path -------------------

TEST_F(FrontendGroupProvisionTest, SingleMemberGroupBitIdenticalToSolo) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    const EngardeOptions opts = EnclaveOptions(threads);
    for (const size_t program : {size_t{0}, size_t{4}}) {  // accept + reject
      const std::vector<Bytes> images = {image(program)};
      auto serial = RunSerial(qe(), images, opts);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();

      sgx::SgxDevice device(
          sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
      sgx::HostOs host(&device);
      FrontendOptions options;
      options.enclave_options = opts;
      options.group_provisioning = true;
      ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
      auto run = RunGroup(frontend, qe(), images);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_FALSE(run->rejected);
      const std::string label = "threads=" + std::to_string(threads) +
                                " program=" + std::to_string(program);
      ExpectSameSnapshot((*serial)[0], run->snapshots[0], label);
      EXPECT_EQ(run->verdicts[0].compliant, program != 4) << label;
      EXPECT_EQ(run->metrics.groups_admitted, 1u);
      EXPECT_EQ(run->metrics.group_members_admitted, 1u);
      EXPECT_EQ(run->metrics.groups_rejected_mutual, 0u);
      EXPECT_EQ(device.EnclaveCount(), 0u);
      EXPECT_EQ(device.epc().pages_in_use(), 0u);
    }
  }
}

// ---- Mixed pipeline: distinct binaries, per-member accounting --------------

TEST_F(FrontendGroupProvisionTest, PipelineGroupMatchesSerialPerMember) {
  const std::vector<Bytes> images = {image(0), image(1), image(4), image(2)};
  const EngardeOptions opts = EnclaveOptions();
  auto serial = RunSerial(qe(), images, opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(images.size())});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = opts;
  options.group_provisioning = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  auto run = RunGroup(frontend, qe(), images);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->rejected);
  for (size_t i = 0; i < images.size(); ++i) {
    ExpectSameSnapshot((*serial)[i], run->snapshots[i],
                       "member " + std::to_string(i));
    EXPECT_EQ(run->verdicts[i].compliant, run->snapshots[i].compliant) << i;
  }
  // The violator's verdict stays per-member: mutual verification only
  // overrides on identity mismatch, not on policy rejection.
  EXPECT_FALSE(run->verdicts[2].compliant);
  EXPECT_TRUE(run->verdicts[0].compliant);
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
  EXPECT_EQ(host.PageTableEntryCount(), 0u);
  EXPECT_EQ(host.LockRecordCount(), 0u);
}

// ---- Atomic co-admission: all-or-nothing soak ------------------------------

TEST_F(FrontendGroupProvisionTest, EpcExhaustionMidGroupRetainsNothing) {
  // EPC holds two enclaves; the warm pool owns one of them. A four-member
  // group takes the single warm handout, then fails TryReserve for the three
  // cold members — the handout must return to the pool, the budget must
  // revert to the pool's own reservation, and no enclave may outlive the
  // attempt. Soak it: repeated attempts must not creep.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.group_provisioning = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  ASSERT_TRUE(frontend.PrefillPool(1).ok());
  const uint64_t committed_baseline = frontend.committed_pages();
  const size_t enclaves_baseline = device.EnclaveCount();
  const size_t pages_baseline = device.epc().pages_in_use();
  ASSERT_EQ(frontend.pool().size(), 1u);

  const std::vector<Bytes> images = {image(0), image(1), image(2), image(3)};
  for (size_t attempt = 0; attempt < 5; ++attempt) {
    crypto::DuplexPipe pipe;
    client::GroupClient client(ClientOptionsFor(qe()), images, Fingerprint());
    auto id = frontend.Accept(
        std::make_unique<net::PipeTransport>(pipe.EndA()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(client.SendGroupManifest(pipe.EndB()).ok());
    ASSERT_TRUE(frontend.PollOnce().ok());
    auto retry = client.AwaitAdmission(pipe.EndB());
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    ASSERT_TRUE(retry->has_value()) << "group admitted past the EPC budget";
    EXPECT_GT((*retry)->retry_after_ms, 0u);
    // Nothing retained: pool intact, budget back to baseline, no stray
    // enclaves or pages, no group slots pinned to the shed connection.
    EXPECT_EQ(frontend.pool().size(), 1u) << attempt;
    EXPECT_EQ(frontend.committed_pages(), committed_baseline) << attempt;
    EXPECT_EQ(device.EnclaveCount(), enclaves_baseline) << attempt;
    EXPECT_EQ(device.epc().pages_in_use(), pages_baseline) << attempt;
    EXPECT_EQ(frontend.group_member_count(*id), 0u) << attempt;
    ASSERT_TRUE(frontend.DrainAll().ok());
  }
  EXPECT_EQ(frontend.metrics().groups_admitted, 0u);
  EXPECT_EQ(frontend.metrics().shed, 5u);
}

TEST_F(FrontendGroupProvisionTest, InvalidMemberMidGroupRollsBackHandouts) {
  // Member 2 of a three-member group declares an impossible binary size; by
  // then the admission pass has already taken warm handouts for members 0-1.
  // The whole group must fail with nothing retained.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(3)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.group_provisioning = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  ASSERT_TRUE(frontend.PrefillPool(2).ok());
  const uint64_t committed_baseline = frontend.committed_pages();
  const size_t enclaves_baseline = device.EnclaveCount();

  const std::vector<Bytes> images = {image(0), image(1), image(2)};
  for (size_t attempt = 0; attempt < 5; ++attempt) {
    auto manifest = client::BuildGroupManifest(images, Fingerprint());
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    manifest->members[2].binary_size = 0;  // turns invalid at member k=2

    crypto::DuplexPipe pipe;
    client::GroupClient client(ClientOptionsFor(qe()), images, Fingerprint());
    client.set_manifest(std::move(*manifest));
    auto id = frontend.Accept(
        std::make_unique<net::PipeTransport>(pipe.EndA()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(client.SendGroupManifest(pipe.EndB()).ok());
    ASSERT_TRUE(frontend.PollOnce().ok());
    EXPECT_EQ(frontend.state(*id), ConnectionState::kFailed) << attempt;
    const Status failure = frontend.connection_status(*id);
    EXPECT_EQ(failure.code(), StatusCode::kInvalidArgument) << attempt;
    EXPECT_EQ(frontend.pool().size(), 2u) << attempt;
    EXPECT_EQ(frontend.committed_pages(), committed_baseline) << attempt;
    EXPECT_EQ(device.EnclaveCount(), enclaves_baseline) << attempt;
    EXPECT_EQ(frontend.group_member_count(*id), 0u) << attempt;
    ASSERT_TRUE(frontend.DrainAll().ok());
  }
  EXPECT_EQ(frontend.metrics().groups_admitted, 0u);
}

// ---- MAGE-style mutual verification ----------------------------------------

TEST_F(FrontendGroupProvisionTest, SiblingMismatchRejectsWholeGroupOnWire) {
  // Member 0 vouches for a sibling identity member 1 does not actually run:
  // tamper member 0's pre-measured digest for member 1 while member 1's own
  // declaration stays honest (so upload classes — keyed by each member's own
  // declared digest — still match the bytes on the wire). Every member's
  // verdict must carry the structured whole-group rejection.
  const std::vector<Bytes> images = {image(0), image(1), image(2)};
  auto manifest = client::BuildGroupManifest(images, Fingerprint());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  bool tampered = false;
  for (auto& sibling : manifest->members[0].siblings) {
    if (sibling.first == 1) {
      sibling.second[0] ^= 0xff;
      tampered = true;
    }
  }
  ASSERT_TRUE(tampered);

  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(images.size())});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.group_provisioning = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  auto run = RunGroup(frontend, qe(), images, std::move(*manifest));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->rejected);
  EXPECT_EQ(run->metrics.groups_rejected_mutual, 1u);
  for (size_t i = 0; i < images.size(); ++i) {
    // On the wire: every member sees the structured whole-group rejection.
    EXPECT_FALSE(run->verdicts[i].compliant) << i;
    ASSERT_TRUE(run->verdicts[i].rejection.has_value()) << i;
    EXPECT_EQ(run->verdicts[i].rejection->stage, "GroupVerify") << i;
    EXPECT_EQ(run->verdicts[i].rejection->rule, "sibling-measurement") << i;
  }
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
}

// ---- Replica sets inspect once through the shared verdict cache ------------

TEST_F(FrontendGroupProvisionTest, ReplicaSetInspectsOnceWithVerdictCache) {
  constexpr size_t kReplicas = 4;
  const std::vector<Bytes> images(kReplicas, image(0));
  const EngardeOptions base = EnclaveOptions();
  // The no-cache serial reference gates the cached run too: replay
  // reproduces per-phase accounting bit-for-bit (ReplayCachedVerdict).
  auto serial = RunSerial(qe(), images, base);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "engarde-evc-group-test")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
  VerdictCacheOptions cache_options;
  cache_options.directory = cache_dir;
  auto cache = VerdictCache::Create(std::move(cache_options), MakePolicies(),
                                    base.layout);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EngardeOptions opts = base;
  opts.verdict_cache = *cache;

  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(kReplicas)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = opts;
  options.group_provisioning = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  auto run = RunGroup(frontend, qe(), images);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->rejected);
  const VerdictCacheStats stats = (*cache)->stats();
  EXPECT_EQ(stats.misses, 1u);                // member 0 inspects
  EXPECT_EQ(stats.hits, kReplicas - 1);       // replicas replay
  for (size_t i = 0; i < kReplicas; ++i) {
    ExpectSameSnapshot((*serial)[i], run->snapshots[i],
                       "replica " + std::to_string(i));
  }
  std::filesystem::remove_all(cache_dir, ec);
}

// ---- Client admission control frames (satellite: deadline during retry) ----

TEST_F(FrontendGroupProvisionTest, AwaitAdmissionDeadlineWhileRetryPending) {
  // A shed client holds a RetryAfter and reconnects later; the front end may
  // answer the *reconnect* with kDeadlineExceeded (e.g. its queue deadline
  // fired between the two). Model both control frames queued in order: the
  // first AwaitAdmission surfaces the retry value, the second must turn the
  // deadline notice into a DEADLINE_EXCEEDED error — not a retry, not a
  // protocol error.
  crypto::DuplexPipe pipe;
  crypto::DuplexPipe::Endpoint server_side = pipe.EndA();

  RetryAfter retry_record;
  retry_record.retry_after_ms = 25;
  retry_record.queue_depth = 3;
  ASSERT_TRUE(WriteControlFrame(server_side, ControlType::kRetryAfter,
                                ByteView(retry_record.Serialize()))
                  .ok());
  DeadlineNotice notice;
  notice.elapsed_ms = 120;
  notice.deadline_ms = 100;
  ASSERT_TRUE(WriteControlFrame(server_side, ControlType::kDeadlineExceeded,
                                ByteView(notice.Serialize()))
                  .ok());

  client::Client client(ClientOptionsFor(qe()), image(0));
  auto first = client.AwaitAdmission(pipe.EndB());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->retry_after_ms, 25u);
  EXPECT_EQ((*first)->queue_depth, 3u);

  auto second = client.AwaitAdmission(pipe.EndB());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);
  const std::string text = second.status().ToString();
  EXPECT_NE(text.find("120"), std::string::npos) << text;
  EXPECT_NE(text.find("100"), std::string::npos) << text;
}

}  // namespace
}  // namespace engarde::core
