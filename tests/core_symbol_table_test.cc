#include "core/symbol_table.h"

#include <gtest/gtest.h>

#include "elf/builder.h"

namespace engarde::core {
namespace {

// Image with two text sections and functions at known addresses.
elf::ElfFile MakeImage() {
  elf::ElfBuilder builder;
  const uint64_t t1 = builder.AddTextSection(".text", Bytes(128, 0x90));
  const uint64_t t2 = builder.AddTextSection(".text.libc", Bytes(64, 0x90));
  builder.AddSymbol("main", t1, 40, elf::kSttFunc);
  builder.AddSymbol("helper", t1 + 40, 24, elf::kSttFunc);
  builder.AddSymbol("tail", t1 + 96, 32, elf::kSttFunc);
  builder.AddSymbol("memcpy", t2, 32, elf::kSttFunc);
  builder.AddSymbol("global_var", t1 + 8, 8, elf::kSttObject);  // not a func
  auto image = builder.Build();
  EXPECT_TRUE(image.ok());
  auto file = elf::ElfFile::Parse(*image);
  EXPECT_TRUE(file.ok());
  return std::move(file).value();
}

TEST(SymbolHashTableTest, BuildsOnlyFunctions) {
  const elf::ElfFile elf = MakeImage();
  const SymbolHashTable table = SymbolHashTable::Build(elf);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_FALSE(table.AddrOf("global_var").has_value());
}

TEST(SymbolHashTableTest, NameAtExactAddressOnly) {
  const SymbolHashTable table = SymbolHashTable::Build(MakeImage());
  const std::string* name = table.NameAt(0x1000);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(*name, "main");
  EXPECT_EQ(table.NameAt(0x1001), nullptr);  // middle of main
  EXPECT_TRUE(table.IsFunctionStart(0x1000 + 40));
}

TEST(SymbolHashTableTest, AddrOf) {
  const SymbolHashTable table = SymbolHashTable::Build(MakeImage());
  EXPECT_EQ(table.AddrOf("helper"), 0x1000u + 40);
  EXPECT_FALSE(table.AddrOf("nonexistent").has_value());
}

TEST(SymbolHashTableTest, FunctionEndsAtNextFunction) {
  const SymbolHashTable table = SymbolHashTable::Build(MakeImage());
  const auto* main_fn = table.FunctionAt(0x1000);
  ASSERT_NE(main_fn, nullptr);
  // main ends where helper starts — not at its st_size.
  EXPECT_EQ(main_fn->end, 0x1000u + 40);
}

TEST(SymbolHashTableTest, LastFunctionInSectionCappedAtSectionEnd) {
  const SymbolHashTable table = SymbolHashTable::Build(MakeImage());
  // "tail" is the last function in .text (size 128): ends at section end,
  // not at the next section's first function.
  const auto* tail = table.FunctionAt(0x1000 + 96);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->end, 0x1000u + 128);
  // memcpy (in .text.libc) is capped at its own section end.
  const auto* memcpy_fn = table.FunctionAt(0x1000 + 128);
  ASSERT_NE(memcpy_fn, nullptr);
  EXPECT_EQ(memcpy_fn->name, "memcpy");
  EXPECT_EQ(memcpy_fn->end, 0x1000u + 128 + 64);
}

TEST(SymbolHashTableTest, FunctionContaining) {
  const SymbolHashTable table = SymbolHashTable::Build(MakeImage());
  const auto* fn = table.FunctionContaining(0x1000 + 45);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->name, "helper");
  // Gap between helper's end (tail start at +96 is next fn; helper runs to
  // +96) — address +70 is inside helper's range.
  const auto* gap = table.FunctionContaining(0x1000 + 70);
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->name, "helper");
  // Before all functions.
  EXPECT_EQ(table.FunctionContaining(0x500), nullptr);
}

TEST(SymbolHashTableTest, FunctionsSortedAscending) {
  const SymbolHashTable table = SymbolHashTable::Build(MakeImage());
  uint64_t prev = 0;
  for (const auto& fn : table.functions()) {
    EXPECT_GT(fn.start, prev);
    prev = fn.start;
  }
}

TEST(SymbolHashTableTest, EmptyElf) {
  elf::ElfBuilder builder;
  builder.AddTextSection(".text", Bytes(32, 0x90));
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());
  auto file = elf::ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const SymbolHashTable table = SymbolHashTable::Build(*file);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.FunctionContaining(0x1000), nullptr);
}

}  // namespace
}  // namespace engarde::core
