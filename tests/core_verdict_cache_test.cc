// The content-addressed sealed verdict cache must be invisible except for
// speed: a full hit replays the cold run's verdict, rejection string, stage
// reports and per-phase SGX attribution bit-identically; a partial hit
// (k of N library functions changed) re-hashes only the changed bodies and
// still reproduces the cold verdict — including the lowest-index violation
// when a mutation introduces one, and the flip back to COMPLIANT when it is
// removed. Every sealed-artifact failure mode the host can produce — bit
// flips, truncation, forged schemas, entries replayed across policy-set /
// library-DB fingerprints — must degrade to a silently counted miss followed
// by cold inspection: never a crash, never a wrong accept. The TSan CI job
// runs this file to pin concurrent probe/store across sharded reactors.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "core/engarde.h"
#include "core/policy_liblink.h"
#include "core/verdict_cache.h"
#include "crypto/sha256.h"
#include "workload/mutate.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

namespace fs = std::filesystem;

constexpr size_t kTestRsaBits = 768;  // small keys keep the suite fast

// Everything a provisioning run produces that must be invariant under the
// cache (wall_ns is wall-clock and thus excluded — the wall time is exactly
// what the cache is supposed to change).
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t insn_buffer_pages = 0;
  size_t relocations_applied = 0;
  std::string stages;  // "Name:outcome:sgx;" per report
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

void ExpectSameSnapshot(const Snapshot& cold, const Snapshot& cached,
                        const std::string& label) {
  EXPECT_EQ(cold.compliant, cached.compliant) << label;
  EXPECT_EQ(cold.reason, cached.reason) << label;
  EXPECT_EQ(cold.instruction_count, cached.instruction_count) << label;
  EXPECT_EQ(cold.insn_buffer_pages, cached.insn_buffer_pages) << label;
  EXPECT_EQ(cold.relocations_applied, cached.relocations_applied) << label;
  EXPECT_EQ(cold.stages, cached.stages) << label;
  EXPECT_EQ(cold.disassembly_sgx, cached.disassembly_sgx) << label;
  EXPECT_EQ(cold.policy_sgx, cached.policy_sgx) << label;
  EXPECT_EQ(cold.loading_sgx, cached.loading_sgx) << label;
  EXPECT_EQ(cold.total_sgx, cached.total_sgx) << label;
  EXPECT_EQ(cold.trampolines, cached.trampolines) << label;
}

PolicySet LiblinkPolicy(const workload::SynthLibcOptions& libc) {
  PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  EXPECT_TRUE(db.ok());
  policies.push_back(std::make_unique<LibraryLinkingPolicy>(
      "synth-musl v" + libc.version, std::move(db).value()));
  return policies;
}

class VerdictCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("verdict-cache-device"),
                                             kTestRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }
  static const sgx::QuotingEnclave& qe() { return *qe_; }

  // A fresh on-disk cache directory per logical fixture; wiped up front so
  // reruns never see a previous process's entries.
  static std::string FreshDir(const std::string& name) {
    const fs::path dir =
        fs::temp_directory_path() / ("engarde-evc-test-" + name);
    std::error_code ec;
    fs::remove_all(dir, ec);
    return dir.string();
  }

  static Result<std::shared_ptr<VerdictCache>> MakeCache(
      const std::string& dir, const PolicySet& policies,
      size_t capacity = 256) {
    VerdictCacheOptions options;
    options.directory = dir;
    options.capacity = capacity;
    return VerdictCache::Create(std::move(options), policies,
                                sgx::EnclaveLayout{});
  }

  // One full provisioning run (its own device, host, enclave and
  // accountant), optionally sharing `cache` with other runs.
  static Result<Snapshot> Provision(const Bytes& image, PolicySet policies,
                                    std::shared_ptr<VerdictCache> cache,
                                    size_t threads = 1) {
    sgx::CycleAccountant accountant;
    sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
    sgx::HostOs host(&device);

    EngardeOptions options;
    options.rsa_bits = kTestRsaBits;
    options.inspection_threads = threads;
    options.verdict_cache = std::move(cache);
    auto enclave =
        EngardeEnclave::Create(&host, qe(), std::move(policies), options);
    RETURN_IF_ERROR(enclave.status());

    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave->SendHello(pipe.EndA()));

    client::ClientOptions client_options;
    client_options.attestation_key = qe().attestation_public_key();
    client_options.skip_measurement_check = true;  // inspection path only
    client::Client client(client_options, image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));

    accountant.Reset();
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome,
                     enclave->RunProvisioning(pipe.EndA()));

    Snapshot snap;
    snap.compliant = outcome.verdict.compliant;
    snap.reason = outcome.verdict.reason;
    snap.instruction_count = outcome.stats.instruction_count;
    snap.insn_buffer_pages = outcome.stats.insn_buffer_pages;
    snap.relocations_applied = outcome.stats.relocations_applied;
    for (const StageReport& report : outcome.stage_reports) {
      snap.stages += std::string(StageName(report.stage)) + ":" +
                     std::string(StageOutcomeName(report.outcome)) + ":" +
                     std::to_string(report.sgx_instructions) + ";";
    }
    snap.disassembly_sgx =
        accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
    snap.policy_sgx =
        accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
    snap.loading_sgx =
        accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
    snap.total_sgx = accountant.total_sgx_instructions();
    snap.trampolines = accountant.total_trampolines();
    return snap;
  }

  static workload::BuiltProgram MakeProgram(const std::string& name,
                                            uint64_t seed,
                                            size_t insns = 2000) {
    workload::ProgramSpec spec;
    spec.name = name;
    spec.seed = seed;
    spec.target_instructions = insns;
    auto program = workload::BuildProgram(spec);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return std::move(program).value();
  }

  static crypto::Sha256Digest ShaOf(const Bytes& image) {
    return crypto::Sha256::Hash(ByteView(image.data(), image.size()));
  }

 private:
  static sgx::QuotingEnclave* qe_;
};

sgx::QuotingEnclave* VerdictCacheTest::qe_ = nullptr;

// ---- Full hits -------------------------------------------------------------

TEST_F(VerdictCacheTest, FullHitCompliantBitIdenticalAcrossThreads) {
  const auto program = MakeProgram("evc-compliant", 101);
  const auto make_policies = [&] { return LiblinkPolicy(program.libc_options); };

  auto uncached = Provision(program.image, make_policies(), nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  ASSERT_TRUE(uncached->compliant) << uncached->reason;

  auto cache = MakeCache(FreshDir("full-hit"), make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  // Cold-with-cache: the probe and store must not perturb the run.
  auto miss = Provision(program.image, make_policies(), *cache);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  ExpectSameSnapshot(*uncached, *miss, "cold run with cache attached");
  EXPECT_EQ((*cache)->stats().misses, 1u);
  EXPECT_EQ((*cache)->stats().hits, 0u);
  EXPECT_EQ((*cache)->entry_count(), 1u);
  EXPECT_GT((*cache)->stats().bytes_sealed, 0u);

  for (const size_t threads : {1u, 2u, 8u}) {
    const uint64_t hits_before = (*cache)->stats().hits;
    auto warm = Provision(program.image, make_policies(), *cache, threads);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    ExpectSameSnapshot(*uncached, *warm,
                       "full hit x " + std::to_string(threads) + " threads");
    EXPECT_EQ((*cache)->stats().hits, hits_before + 1);
  }
  EXPECT_EQ((*cache)->stats().tamper_rejects, 0u);
  EXPECT_EQ((*cache)->stats().misses, 1u);
}

TEST_F(VerdictCacheTest, FullHitRejectionBitIdentical) {
  // Client links the vulnerable libc; the policy pins the fixed version. The
  // replayed rejection must reproduce the cold one verbatim.
  workload::ProgramSpec spec;
  spec.name = "evc-wrong-libc";
  spec.seed = 7;
  spec.target_instructions = 4000;
  spec.libc.version = "1.0.4";
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  workload::SynthLibcOptions pinned = program->libc_options;
  pinned.version = "1.0.5";
  const auto make_policies = [&] { return LiblinkPolicy(pinned); };

  auto uncached = Provision(program->image, make_policies(), nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  ASSERT_FALSE(uncached->compliant);
  ASSERT_NE(uncached->reason.find("library-linking"), std::string::npos)
      << uncached->reason;

  auto cache = MakeCache(FreshDir("full-hit-reject"), make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  auto miss = Provision(program->image, make_policies(), *cache);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  ExpectSameSnapshot(*uncached, *miss, "cold rejection with cache");

  auto warm = Provision(program->image, make_policies(), *cache);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectSameSnapshot(*uncached, *warm, "replayed rejection");
  EXPECT_EQ((*cache)->stats().hits, 1u);
  EXPECT_EQ((*cache)->stats().misses, 1u);
}

// ---- Partial hits: k of N functions changed --------------------------------

TEST_F(VerdictCacheTest, PartialHitMutatedAppFunctionsStayBitIdentical) {
  const auto program = MakeProgram("evc-partial", 211, 4000);
  const auto make_policies = [&] { return LiblinkPolicy(program.libc_options); };

  auto cache = MakeCache(FreshDir("partial-hit"), make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  // Seed the per-function store with the original upload.
  auto seed = Provision(program.image, make_policies(), *cache);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  ASSERT_TRUE(seed->compliant) << seed->reason;
  ASSERT_EQ((*cache)->stats().misses, 1u);

  // Each thread count re-uploads with a different k of N application
  // functions changed, so every image is new to the cache (a repeat would be
  // a full hit, which FullHit* already covers).
  for (const size_t threads : {1u, 2u, 8u}) {
    Bytes mutated = program.image;
    workload::MutationOptions mutation;
    mutation.count = threads;  // k = 1, 2, 8
    auto names = workload::MutateFunctions(mutated, mutation);
    ASSERT_TRUE(names.ok()) << names.status().ToString();
    ASSERT_EQ(names->size(), threads);

    auto uncached = Provision(mutated, make_policies(), nullptr, threads);
    ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
    ASSERT_TRUE(uncached->compliant) << uncached->reason;

    const uint64_t partial_before = (*cache)->stats().partial_hits;
    auto partial = Provision(mutated, make_policies(), *cache, threads);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    ExpectSameSnapshot(*uncached, *partial,
                       "partial hit, k=" + std::to_string(threads));
    EXPECT_EQ((*cache)->stats().partial_hits, partial_before + 1)
        << "library functions unchanged: the upload must classify as a "
           "partial hit, not a miss";
  }
  EXPECT_EQ((*cache)->stats().hits, 0u);
  EXPECT_EQ((*cache)->stats().tamper_rejects, 0u);
}

TEST_F(VerdictCacheTest, PartialHitMutatedLibraryFunctionAddsViolation) {
  const auto program = MakeProgram("evc-lib-violation", 223, 4000);
  const auto make_policies = [&] { return LiblinkPolicy(program.libc_options); };

  auto cache = MakeCache(FreshDir("partial-violation"), make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  auto seed = Provision(program.image, make_policies(), *cache);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  ASSERT_TRUE(seed->compliant) << seed->reason;

  // Flip a byte inside a library-named body: the linking policy hashes that
  // body, so the re-upload must be rejected at the same lowest-index call
  // site cold and warm.
  Bytes mutated = program.image;
  workload::MutationOptions mutation;
  mutation.library_functions = true;
  auto names = workload::MutateFunctions(mutated, mutation);
  ASSERT_TRUE(names.ok()) << names.status().ToString();

  auto uncached = Provision(mutated, make_policies(), nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  ASSERT_FALSE(uncached->compliant);
  ASSERT_NE(uncached->reason.find("library-linking"), std::string::npos)
      << uncached->reason;

  auto warm = Provision(mutated, make_policies(), *cache);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectSameSnapshot(*uncached, *warm, "mutation introducing a violation");

  // Patching the mutation back restores the original bytes — the compliant
  // verdict replays as a full hit: the violation is gone.
  const uint64_t hits_before = (*cache)->stats().hits;
  auto restored = Provision(program.image, make_policies(), *cache);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameSnapshot(*seed, *restored, "mutation patched back");
  EXPECT_TRUE(restored->compliant) << restored->reason;
  EXPECT_EQ((*cache)->stats().hits, hits_before + 1);
}

TEST_F(VerdictCacheTest, ViolationRemovedByNewUploadGoesCompliant) {
  // The first upload this cache ever sees is already rejected; a fixed
  // re-upload (different bytes, so no full entry applies) must come back
  // compliant and bit-identical to its own cold run — stale rejection state
  // must never leak forward.
  const auto program = MakeProgram("evc-fix-forward", 227, 4000);
  const auto make_policies = [&] { return LiblinkPolicy(program.libc_options); };

  Bytes broken = program.image;
  workload::MutationOptions mutation;
  mutation.library_functions = true;
  auto names = workload::MutateFunctions(broken, mutation);
  ASSERT_TRUE(names.ok()) << names.status().ToString();

  auto cache = MakeCache(FreshDir("fix-forward"), make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  auto rejected = Provision(broken, make_policies(), *cache);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_FALSE(rejected->compliant);

  auto uncached = Provision(program.image, make_policies(), nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  ASSERT_TRUE(uncached->compliant) << uncached->reason;

  auto fixed = Provision(program.image, make_policies(), *cache);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  ExpectSameSnapshot(*uncached, *fixed, "fixed re-upload after rejection");
  EXPECT_TRUE(fixed->compliant) << fixed->reason;
  EXPECT_EQ((*cache)->stats().hits, 0u);
  EXPECT_EQ((*cache)->stats().partial_hits + (*cache)->stats().misses, 2u);
}

// ---- Tamper injection: every failure mode is a silent counted miss ---------

class VerdictCacheTamperTest : public VerdictCacheTest {
 protected:
  // Seeds `dir` with the sealed entry for the fixture program and returns
  // the entry's path plus the cold reference snapshot.
  struct Seeded {
    workload::BuiltProgram program;
    std::shared_ptr<VerdictCache> cache;
    std::string entry_path;
    Snapshot cold;
  };

  Seeded Seed(const std::string& dir_name, uint64_t seed) {
    Seeded out{MakeProgram("evc-tamper-" + dir_name, seed), nullptr, "", {}};
    const auto make_policies = [&] {
      return LiblinkPolicy(out.program.libc_options);
    };
    auto cache = MakeCache(FreshDir(dir_name), make_policies());
    EXPECT_TRUE(cache.ok()) << cache.status().ToString();
    out.cache = *cache;

    auto uncached = Provision(out.program.image, make_policies(), nullptr);
    EXPECT_TRUE(uncached.ok()) << uncached.status().ToString();
    out.cold = *uncached;

    auto miss = Provision(out.program.image, make_policies(), out.cache);
    EXPECT_TRUE(miss.ok()) << miss.status().ToString();
    out.entry_path = out.cache->EntryPathFor(ShaOf(out.program.image));
    EXPECT_TRUE(fs::exists(out.entry_path)) << out.entry_path;
    return out;
  }

  // After tampering, the next upload must silently fall back to a cold run
  // with identical results, count exactly one tamper reject — and re-publish
  // a good entry, so the upload after that is a clean hit again.
  void ExpectTamperedFallback(Seeded& seeded, const std::string& label) {
    const auto make_policies = [&] {
      return LiblinkPolicy(seeded.program.libc_options);
    };
    const VerdictCacheStats before = seeded.cache->stats();
    auto fallback =
        Provision(seeded.program.image, make_policies(), seeded.cache);
    ASSERT_TRUE(fallback.ok()) << label << ": " << fallback.status().ToString();
    ExpectSameSnapshot(seeded.cold, *fallback, label + " cold fallback");
    const VerdictCacheStats after = seeded.cache->stats();
    EXPECT_EQ(after.tamper_rejects, before.tamper_rejects + 1) << label;
    EXPECT_EQ(after.hits, before.hits) << label;

    auto rehit = Provision(seeded.program.image, make_policies(), seeded.cache);
    ASSERT_TRUE(rehit.ok()) << label << ": " << rehit.status().ToString();
    ExpectSameSnapshot(seeded.cold, *rehit, label + " re-published hit");
    EXPECT_EQ(seeded.cache->stats().hits, after.hits + 1) << label;
  }
};

TEST_F(VerdictCacheTamperTest, BitFlipIsCountedMissWithColdFallback) {
  Seeded seeded = Seed("tamper-flip", 301);
  std::fstream file(seeded.entry_path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  ASSERT_GT(size, 0);
  file.seekg(size / 2);
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x01;
  file.seekp(size / 2);
  file.write(&byte, 1);
  file.close();
  ExpectTamperedFallback(seeded, "bit flip");
}

TEST_F(VerdictCacheTamperTest, TruncationIsCountedMissWithColdFallback) {
  Seeded seeded = Seed("tamper-truncate", 307);
  std::error_code ec;
  fs::resize_file(seeded.entry_path, fs::file_size(seeded.entry_path) / 2, ec);
  ASSERT_FALSE(ec) << ec.message();
  ExpectTamperedFallback(seeded, "truncation");
}

TEST_F(VerdictCacheTamperTest, ForgedSchemaIsCountedMiss) {
  Seeded seeded = Seed("tamper-schema", 311);
  // A validly sealed blob whose plaintext is not a verdict entry at all
  // (stands in for any future/foreign schema): unseals fine, parses never.
  const Bytes forged = seeded.cache->SealForTesting(
      ByteView(ToBytes("not-a-verdict-entry-schema-99")));
  {
    std::ofstream file(seeded.entry_path, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char*>(forged.data()),
               static_cast<std::streamsize>(forged.size()));
  }
  ExpectTamperedFallback(seeded, "forged schema");
}

TEST_F(VerdictCacheTamperTest, ReplayAcrossFingerprintsIsCountedMiss) {
  // Seal an entry under policy set A, then plant those bytes at the path a
  // cache for policy set B (different library DB -> different fingerprints
  // and sealing key) would look up. B must reject it as tampered and inspect
  // cold under its own policies.
  const auto program = MakeProgram("evc-cross-fp", 313, 4000);
  const auto policies_a = [&] { return LiblinkPolicy(program.libc_options); };
  workload::SynthLibcOptions pinned = program.libc_options;
  pinned.version = program.libc_options.version + "-next";
  const auto policies_b = [&] { return LiblinkPolicy(pinned); };

  auto cache_a = MakeCache(FreshDir("cross-fp-a"), policies_a());
  ASSERT_TRUE(cache_a.ok()) << cache_a.status().ToString();
  auto stored = Provision(program.image, policies_a(), *cache_a);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  ASSERT_TRUE(stored->compliant) << stored->reason;
  const std::string path_a = (*cache_a)->EntryPathFor(ShaOf(program.image));
  ASSERT_TRUE(fs::exists(path_a));

  // Plant A's sealed accept where B expects its own entry, BEFORE creating
  // B's cache (the Create-time scan seeds the probe index from disk).
  const std::string dir_b = FreshDir("cross-fp-b");
  {
    VerdictCacheOptions probe_options;
    probe_options.directory = dir_b;
    auto name_probe = VerdictCache::Create(std::move(probe_options),
                                           policies_b(), sgx::EnclaveLayout{});
    ASSERT_TRUE(name_probe.ok()) << name_probe.status().ToString();
    std::error_code ec;
    fs::copy_file((*name_probe)->EntryPathFor(ShaOf(program.image)), path_a,
                  ec);  // no-op: just documents the names differ
    fs::copy_file(path_a, (*name_probe)->EntryPathFor(ShaOf(program.image)),
                  fs::copy_options::overwrite_existing, ec);
    ASSERT_FALSE(ec) << ec.message();
  }
  auto cache_b = MakeCache(dir_b, policies_b());
  ASSERT_TRUE(cache_b.ok()) << cache_b.status().ToString();
  ASSERT_EQ((*cache_b)->entry_count(), 1u);  // the planted entry is indexed

  // Under B the program links the wrong libc: B's cold verdict is a
  // rejection. A replayed accept sealed under A would be a wrong accept —
  // the MAC mismatch must stop it.
  auto uncached_b = Provision(program.image, policies_b(), nullptr);
  ASSERT_TRUE(uncached_b.ok()) << uncached_b.status().ToString();
  ASSERT_FALSE(uncached_b->compliant);

  auto warm_b = Provision(program.image, policies_b(), *cache_b);
  ASSERT_TRUE(warm_b.ok()) << warm_b.status().ToString();
  ExpectSameSnapshot(*uncached_b, *warm_b, "cross-fingerprint replay");
  EXPECT_FALSE(warm_b->compliant);
  EXPECT_EQ((*cache_b)->stats().tamper_rejects, 1u);
  EXPECT_EQ((*cache_b)->stats().hits, 0u);
}

// ---- Persistence, eviction, concurrency ------------------------------------

TEST_F(VerdictCacheTest, EntriesSurviveRestart) {
  const auto program = MakeProgram("evc-restart", 401);
  const auto make_policies = [&] { return LiblinkPolicy(program.libc_options); };
  const std::string dir = FreshDir("restart");

  auto uncached = Provision(program.image, make_policies(), nullptr);
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();

  {
    auto cache = MakeCache(dir, make_policies());
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    auto miss = Provision(program.image, make_policies(), *cache);
    ASSERT_TRUE(miss.ok()) << miss.status().ToString();
    EXPECT_EQ((*cache)->stats().misses, 1u);
  }  // cache destroyed: only the sealed files survive

  // A brand-new process: fresh device, fresh EGETKEY derivation, same
  // directory. The entry must unseal and replay.
  auto cache = MakeCache(dir, make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ((*cache)->entry_count(), 1u);
  auto warm = Provision(program.image, make_policies(), *cache);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ExpectSameSnapshot(*uncached, *warm, "hit after restart");
  EXPECT_EQ((*cache)->stats().hits, 1u);
  EXPECT_EQ((*cache)->stats().tamper_rejects, 0u);
}

TEST_F(VerdictCacheTest, LruEvictionPastCapacity) {
  const auto a = MakeProgram("evc-lru-a", 501);
  const auto b = MakeProgram("evc-lru-b", 503);
  const auto c = MakeProgram("evc-lru-c", 509);
  const auto make_policies = [&] { return LiblinkPolicy(a.libc_options); };

  auto cache = MakeCache(FreshDir("lru"), make_policies(), /*capacity=*/2);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  for (const auto* program : {&a, &b, &c}) {
    auto run = Provision(program->image, make_policies(), *cache);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }
  EXPECT_EQ((*cache)->entry_count(), 2u);
  EXPECT_EQ((*cache)->stats().evictions, 1u);
  EXPECT_FALSE(fs::exists((*cache)->EntryPathFor(ShaOf(a.image))))
      << "oldest entry must be the one unlinked";
  EXPECT_TRUE(fs::exists((*cache)->EntryPathFor(ShaOf(c.image))));

  // The evicted binary re-inspects cold and re-enters, displacing the next
  // oldest — steady-state LRU, not a one-shot.
  auto again = Provision(a.image, make_policies(), *cache);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*cache)->stats().evictions, 2u);
  EXPECT_EQ((*cache)->stats().hits, 0u);
  EXPECT_FALSE(fs::exists((*cache)->EntryPathFor(ShaOf(b.image))));
}

TEST_F(VerdictCacheTest, ConcurrentSessionsShareOneCache) {
  // What a sharded FrontendGroup does: many sessions on different threads
  // probing, storing and merging into one cache. Half the threads upload one
  // shared binary (racing store/hit), half upload private mutations of it
  // (racing the per-function store). The TSan job runs this.
  const auto program = MakeProgram("evc-concurrent", 601, 4000);
  const auto make_policies = [&] { return LiblinkPolicy(program.libc_options); };

  auto cache = MakeCache(FreshDir("concurrent"), make_policies());
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  constexpr size_t kThreads = 8;
  std::vector<Bytes> images(kThreads, program.image);
  for (size_t i = 0; i < kThreads; ++i) {
    if (i % 2 == 1) {  // odd threads get a unique compliant mutation
      workload::MutationOptions mutation;
      mutation.count = 1 + i / 2;
      auto names = workload::MutateFunctions(images[i], mutation);
      ASSERT_TRUE(names.ok()) << names.status().ToString();
    }
  }

  std::atomic<size_t> compliant{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (size_t round = 0; round < 2; ++round) {
        auto run = Provision(images[i], make_policies(), *cache);
        if (run.ok() && run->compliant) {
          compliant.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
      (void)(*cache)->stats();  // racing reader
      (void)(*cache)->entry_count();
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(compliant.load(), kThreads * 2);
  const VerdictCacheStats stats = (*cache)->stats();
  // Every run classified exactly once, whatever the interleaving.
  EXPECT_EQ(stats.hits + stats.partial_hits + stats.misses, kThreads * 2);
  // Round two of every thread re-uploads bytes already stored in round one.
  EXPECT_GE(stats.hits, kThreads);
  EXPECT_EQ(stats.tamper_rejects, 0u);
  EXPECT_EQ((*cache)->entry_count(), 1 + kThreads / 2);
}

}  // namespace
}  // namespace engarde::core
