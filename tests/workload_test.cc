#include <gtest/gtest.h>

#include <set>

#include "elf/reader.h"
#include "workload/catalog.h"
#include "workload/program_builder.h"
#include "workload/synth_libc.h"
#include "x86/decoder.h"
#include "x86/validator.h"

namespace engarde::workload {
namespace {

TEST(SynthLibcTest, DeterministicGeneration) {
  const SynthLibcOptions options;
  const SynthLibrary a = GenerateSynthLibc(options);
  const SynthLibrary b = GenerateSynthLibc(options);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.insn_count, b.insn_count);
  EXPECT_EQ(a.functions.size(), b.functions.size());
}

TEST(SynthLibcTest, VersionChangesEveryFunctionBody) {
  SynthLibcOptions v5;
  v5.version = "1.0.5";
  SynthLibcOptions v4 = v5;
  v4.version = "1.0.4";
  const SynthLibrary a = GenerateSynthLibc(v5);
  const SynthLibrary b = GenerateSynthLibc(v4);
  EXPECT_NE(a.code, b.code);
  // Same function inventory (an update does not rename functions).
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
  }
}

TEST(SynthLibcTest, HasMuslStyleNames) {
  const SynthLibrary lib = GenerateSynthLibc({});
  std::set<std::string> names;
  for (const SynthFunction& fn : lib.functions) names.insert(fn.name);
  EXPECT_TRUE(names.count("memcpy"));
  EXPECT_TRUE(names.count("malloc"));
  EXPECT_TRUE(names.count("__stack_chk_fail"));
}

TEST(SynthLibcTest, BlobDecodesCompletely) {
  const SynthLibrary lib = GenerateSynthLibc({});
  auto insns = x86::DecodeAll(ByteView(lib.code.data(), lib.code.size()), 0);
  ASSERT_TRUE(insns.ok()) << insns.status().ToString();
  EXPECT_EQ(insns->size(), lib.insn_count);
}

TEST(SynthLibcTest, PositionIndependentHashes) {
  // The same blob embedded at two different bases must hash identically per
  // function — the property that makes the library db transferable.
  const SynthLibrary lib = GenerateSynthLibc({});
  auto db1 = BuildLibcHashDb({});
  auto db2 = BuildLibcHashDb({});
  ASSERT_TRUE(db1.ok() && db2.ok());
  EXPECT_EQ(db1->DbDigest(), db2->DbDigest());
}

TEST(SynthLibcTest, StackProtectVariantDiffers) {
  SynthLibcOptions plain;
  SynthLibcOptions prot = plain;
  prot.stack_protect = true;
  EXPECT_NE(GenerateSynthLibc(plain).code, GenerateSynthLibc(prot).code);
}

TEST(LibcHashDbTest, SerializationRoundTrip) {
  auto db = BuildLibcHashDb({});
  ASSERT_TRUE(db.ok());
  const Bytes wire = db->Serialize();
  auto parsed = core::LibraryHashDb::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), db->size());
  EXPECT_EQ(parsed->DbDigest(), db->DbDigest());
  EXPECT_FALSE(core::LibraryHashDb::Deserialize(ToBytes("junk")).ok());
}

TEST(ProgramBuilderTest, Deterministic) {
  ProgramSpec spec;
  spec.seed = 99;
  spec.target_instructions = 2000;
  auto a = BuildProgram(spec);
  auto b = BuildProgram(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->image, b->image);
}

TEST(ProgramBuilderTest, ProducesValidEnclaveElf) {
  ProgramSpec spec;
  spec.target_instructions = 2000;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto elf = elf::ElfFile::Parse(ByteView(program->image.data(),
                                          program->image.size()));
  ASSERT_TRUE(elf.ok()) << elf.status().ToString();
  EXPECT_TRUE(elf->ValidateForEnclave().ok())
      << elf->ValidateForEnclave().ToString();
  EXPECT_NE(elf->SectionByName(".text"), nullptr);
  EXPECT_NE(elf->SectionByName(".text.libc"), nullptr);
  EXPECT_NE(elf->SectionByName(".data"), nullptr);
}

TEST(ProgramBuilderTest, SatisfiesNaClConstraints) {
  ProgramSpec spec;
  spec.target_instructions = 3000;
  spec.stack_protection = true;
  spec.ifcc = true;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto elf = elf::ElfFile::Parse(ByteView(program->image.data(),
                                          program->image.size()));
  ASSERT_TRUE(elf.ok());

  x86::InsnBuffer insns;
  uint64_t text_start = UINT64_MAX, text_end = 0;
  for (const elf::Shdr* section : elf->TextSections()) {
    auto content = elf->SectionContent(*section);
    ASSERT_TRUE(content.ok());
    auto decoded = x86::DecodeAll(*content, section->addr);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    for (const auto& insn : *decoded) insns.Append(insn);
    text_start = std::min(text_start, section->addr);
    text_end = std::max(text_end, section->addr + section->size);
  }

  x86::ValidationInput input;
  input.text_start = text_start;
  input.text_end = text_end;
  input.roots.push_back(elf->header().entry);
  for (const elf::Sym& sym : elf->symbols()) {
    if (sym.IsFunction() && !sym.name.empty()) {
      input.roots.push_back(sym.value);
    }
  }
  EXPECT_TRUE(x86::ValidateNaClConstraints(insns, input).ok())
      << x86::ValidateNaClConstraints(insns, input).ToString();
}

TEST(ProgramBuilderTest, InstructionTargetingAccuracy) {
  for (const size_t target : {1500ul, 5000ul, 20000ul}) {
    ProgramSpec spec;
    spec.seed = target;
    spec.target_instructions = target;
    auto program = BuildProgram(spec);
    ASSERT_TRUE(program.ok());
    const double ratio = static_cast<double>(program->emitted_insn_count) /
                         static_cast<double>(target);
    EXPECT_GT(ratio, 0.95) << target << " -> " << program->emitted_insn_count;
    EXPECT_LT(ratio, 1.06) << target << " -> " << program->emitted_insn_count;
  }
}

TEST(ProgramBuilderTest, SeedsProduceDistinctPrograms) {
  ProgramSpec a, b;
  a.seed = 1;
  b.seed = 2;
  a.target_instructions = b.target_instructions = 1500;
  auto pa = BuildProgram(a);
  auto pb = BuildProgram(b);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_NE(pa->image, pb->image);
}

TEST(CatalogTest, SevenBenchmarks) {
  const auto& entries = PaperBenchmarks();
  ASSERT_EQ(entries.size(), 7u);
  EXPECT_STREQ(entries[0].name, "Nginx");
  EXPECT_EQ(entries[0].fig3_instructions, 262228u);
  EXPECT_EQ(entries[3].fig3_instructions, 12903u);  // 429.mcf
}

TEST(CatalogTest, ScaledBuildHitsTarget) {
  // Build 429.mcf (the smallest) at 20% scale; full-scale builds are
  // exercised by the benches.
  const auto& mcf = PaperBenchmarks()[3];
  auto program = BuildBenchmarkScaled(mcf, BuildFlavor::kPlain, 0.2);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const double target = 12903 * 0.2;
  const double ratio = static_cast<double>(program->emitted_insn_count) / target;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(CatalogTest, FlavorsChangeInstrumentationNotIdentity) {
  const auto& mcf = PaperBenchmarks()[3];
  auto plain = BuildBenchmarkScaled(mcf, BuildFlavor::kPlain, 0.15);
  auto prot = BuildBenchmarkScaled(mcf, BuildFlavor::kStackProtector, 0.15);
  auto ifcc = BuildBenchmarkScaled(mcf, BuildFlavor::kIfcc, 0.15);
  ASSERT_TRUE(plain.ok() && prot.ok() && ifcc.ok());
  EXPECT_NE(plain->image, prot->image);
  EXPECT_NE(plain->image, ifcc->image);
  // Same benchmark name across flavors (it is the same program recompiled).
  EXPECT_EQ(plain->name, prot->name);
}

}  // namespace
}  // namespace engarde::workload
