// Demand-paging tests: enclaves larger than the EPC, transparent ELDU on
// access faults, and integrity of paged content — the driver-level EWB/ELDU
// duty a real SGX OS performs, which lets EnGarde handle executables whose
// staging + instruction buffer exceed physical EPC. The ReclaimerTest suite
// covers the ksgxd-style side: second-chance aging over the device LRU,
// pinning, pressure-driven wakes, typed retryable backpressure, and the
// oversubscribed fault storm / leak soak.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "client/client.h"
#include "core/engarde.h"
#include "core/inspection.h"
#include "sgx/hostos.h"
#include "workload/program_builder.h"

namespace engarde::sgx {
namespace {

TEST(PagingPressureTest, BuildEnclaveLargerThanEpc) {
  // 64 EPC pages, but the layout wants ~100: the build must succeed by
  // paging earlier additions out.
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 2;
  layout.heap_pages = 64;
  layout.load_pages = 24;
  layout.stack_pages = 8;
  layout.tls_pages = 1;
  ASSERT_GT(layout.TotalPages(), 64u);

  auto eid = host.BuildEnclave(layout, ToBytes("BOOT"));
  ASSERT_TRUE(eid.ok()) << eid.status().ToString();
  // Build-time overflow now goes through the LRU reclaim batch first
  // (pages_reclaimed); the inline self-eviction counter only moves when the
  // LRU comes up empty.
  EXPECT_GT(host.pages_reclaimed() + host.pages_evicted(), 0u);
  EXPECT_GT(device.EvictedPageCount(*eid), 0u);
  // Committed (resident + evicted) covers the whole layout.
  EXPECT_EQ(device.PageCount(*eid) + device.EvictedPageCount(*eid),
            layout.TotalPages());
}

TEST(PagingPressureTest, AccessFaultsPageContentBackIn) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 80;
  layout.load_pages = 8;
  layout.stack_pages = 2;
  auto eid = host.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  // Write a pattern across the whole heap (touching every page faults the
  // evicted ones back in, evicting others).
  const uint64_t heap = layout.HeapStart();
  for (uint64_t i = 0; i < layout.heap_pages; ++i) {
    Bytes marker;
    AppendLe64(marker, i * 0x1111);
    ASSERT_TRUE(device.EnclaveWrite(*eid, heap + i * kPageSize, marker).ok())
        << "page " << i;
  }
  EXPECT_GT(host.epc_faults_handled(), 0u);

  // Read everything back — more faults, and every byte must round-trip
  // through the encrypted backing store intact.
  for (uint64_t i = 0; i < layout.heap_pages; ++i) {
    Bytes readback(8);
    ASSERT_TRUE(device
                    .EnclaveRead(*eid, heap + i * kPageSize,
                                 MutableByteView(readback.data(), 8))
                    .ok())
        << "page " << i;
    EXPECT_EQ(LoadLe64(readback.data()), i * 0x1111) << "page " << i;
  }
}

TEST(PagingPressureTest, ExplicitEvictionAndTransparentReload) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 128});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 16;
  layout.load_pages = 4;
  layout.stack_pages = 2;
  auto eid = host.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  ASSERT_TRUE(
      device.EnclaveWrite(*eid, layout.HeapStart(), ToBytes("persist")).ok());
  ASSERT_TRUE(host.EvictPages(*eid, 10).ok());
  EXPECT_EQ(device.EvictedPageCount(*eid), 10u);

  // Access is transparent again: the fault handler reloads on demand.
  Bytes readback(7);
  ASSERT_TRUE(device
                  .EnclaveRead(*eid, layout.HeapStart(),
                               MutableByteView(readback.data(), 7))
                  .ok());
  EXPECT_EQ(ToString(ByteView(readback.data(), 7)), "persist");
}

TEST(PagingPressureTest, NoHandlerMeansHardFault) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  auto eid = device.ECreate(0x10000000, 16 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, 0x10000000, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  ASSERT_TRUE(device.Ewb(*eid, 0x10000000).ok());
  // No HostOs registered: the access fails instead of paging in.
  Bytes buf(4);
  EXPECT_EQ(device.EnclaveRead(*eid, 0x10000000, MutableByteView(buf.data(), 4))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(PagingPressureTest, FullProvisioningUnderEpcPressure) {
  // End to end: EnGarde provisions and runs a client program on a machine
  // whose EPC is much smaller than the enclave.
  SgxDevice device(SgxDevice::Options{.epc_pages = 160});
  HostOs host(&device);
  auto quoting = QuotingEnclave::Provision(ToBytes("paging-device"), 768);
  ASSERT_TRUE(quoting.ok());

  core::EngardeOptions options;
  options.rsa_bits = 768;
  options.layout.bootstrap_pages = 2;
  options.layout.heap_pages = 160;  // alone more than the whole EPC
  options.layout.load_pages = 48;
  options.layout.stack_pages = 8;
  ASSERT_GT(options.layout.TotalPages(), 160u);

  auto enclave = core::EngardeEnclave::Create(&host, *quoting,
                                              core::PolicySet{}, options);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  workload::ProgramSpec spec;
  spec.seed = 404;
  spec.target_instructions = 2500;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  crypto::DuplexPipe pipe;
  ASSERT_TRUE(enclave->SendHello(pipe.EndA()).ok());
  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program->image);
  ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());

  auto outcome = enclave->RunProvisioning(pipe.EndA());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->verdict.compliant) << outcome->verdict.reason;
  EXPECT_GT(host.epc_faults_handled() + host.pages_evicted(), 0u);

  auto rax = enclave->ExecuteClientProgram();
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
}

// ---- ksgxd-style reclaimer ---------------------------------------------------

// Touch every committed page of the enclave so each one carries its
// reference bit (reads resolve through the fault path, which marks the page
// accessed; reads work on RX bootstrap/load pages where writes would not).
void TouchAllPages(SgxDevice& device, uint64_t eid,
                   const EnclaveLayout& layout) {
  for (uint64_t page = 0; page < layout.TotalPages(); ++page) {
    Bytes readback(8);
    ASSERT_TRUE(device
                    .EnclaveRead(eid, layout.base + page * kPageSize,
                                 MutableByteView(readback.data(), 8))
                    .ok())
        << "page " << page;
  }
}

TEST(ReclaimerTest, SecondChanceAgesBeforeHarvesting) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 128});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 16;
  layout.load_pages = 1;
  layout.stack_pages = 1;
  layout.tls_pages = 1;
  auto eid = host.BuildEnclave(layout, ToBytes("AGE"));
  ASSERT_TRUE(eid.ok());
  TouchAllPages(device, *eid, layout);

  // Every page is referenced: the first clock revolution only clears the
  // bits (ages) and harvests nothing.
  EXPECT_EQ(host.ReclaimBatch(4), 0u);
  // The second call finds them aged and writes a batch back.
  EXPECT_EQ(host.ReclaimBatch(4), 4u);
  EXPECT_EQ(device.EvictedPageCount(*eid), 4u);

  // `force` collapses both revolutions into one call: re-reference what is
  // still resident, then harvest in a single forced pass.
  for (uint64_t page : device.ResidentPages(*eid)) {
    Bytes readback(8);
    ASSERT_TRUE(
        device.EnclaveRead(*eid, page, MutableByteView(readback.data(), 8))
            .ok());
  }
  EXPECT_EQ(host.ReclaimBatch(4, /*force=*/true), 4u);
  EXPECT_EQ(device.EvictedPageCount(*eid), 8u);
}

TEST(ReclaimerTest, PinnedPagesAreNeverReclaimed) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 128});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 8;
  layout.load_pages = 1;
  layout.stack_pages = 1;
  layout.tls_pages = 1;
  auto eid = host.BuildEnclave(layout, ToBytes("PIN"));
  ASSERT_TRUE(eid.ok());

  {
    ScopedEpcPin pin(&device, *eid);
    ASSERT_TRUE(device.IsPinned(*eid));
    // Even a forced pass finds nothing: pins trump aging.
    EXPECT_EQ(host.ReclaimBatch(8, /*force=*/true), 0u);
    EXPECT_EQ(device.EvictedPageCount(*eid), 0u);
  }
  ASSERT_FALSE(device.IsPinned(*eid));
  // Unpinned, the cold pages (never touched since EADD) harvest immediately.
  EXPECT_GT(host.ReclaimBatch(8), 0u);
}

TEST(ReclaimerTest, ReclaimPreferredEnclaveGoesFirst) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 128});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 8;
  layout.load_pages = 1;
  layout.stack_pages = 1;
  layout.tls_pages = 1;
  auto a = host.BuildEnclave(layout, ToBytes("HOT"));
  ASSERT_TRUE(a.ok());
  auto b = host.BuildEnclave(layout, ToBytes("SHELVED"));
  ASSERT_TRUE(b.ok());
  TouchAllPages(device, *a, layout);
  TouchAllPages(device, *b, layout);

  // B is shelved to the warm pool: its pages skip second chances and sit at
  // the old end of the LRU, so a batch comes entirely out of B while A's
  // referenced working set keeps its grace period.
  ASSERT_TRUE(device.SetReclaimPreferred(*b, true).ok());
  EXPECT_EQ(host.ReclaimBatch(4), 4u);
  EXPECT_EQ(device.EvictedPageCount(*b), 4u);
  EXPECT_EQ(device.EvictedPageCount(*a), 0u);
}

TEST(ReclaimerTest, BackgroundDaemonWakesOnPressureNotPoll) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 32;
  layout.load_pages = 4;
  layout.stack_pages = 2;
  layout.tls_pages = 1;
  auto eid = host.BuildEnclave(layout, ToBytes("BG"));
  ASSERT_TRUE(eid.ok());
  ASSERT_LT(device.FreeEpcPages(), 32u);

  ReclaimerOptions options;
  options.low_watermark_pages = 32;   // breached right now
  options.high_watermark_pages = 48;  // target after a reclaim burst
  options.batch_pages = 8;
  // A long poll interval proves the wake comes from the pressure
  // notification (the ksgxd waitqueue analogue), not from timeout polling.
  options.poll_interval_ms = 10'000;
  ASSERT_TRUE(host.StartReclaimer(options).ok());
  ASSERT_TRUE(host.reclaimer_running());
  EXPECT_EQ(host.StartReclaimer(options).code(),
            StatusCode::kFailedPrecondition);

  host.NotifyEpcPressure();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (device.FreeEpcPages() < options.high_watermark_pages &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(device.FreeEpcPages(), options.high_watermark_pages);
  EXPECT_GE(host.reclaim_wakeups(), 1u);
  EXPECT_GT(host.pages_reclaimed(), 0u);

  host.StopReclaimer();
  EXPECT_FALSE(host.reclaimer_running());
}

TEST(ReclaimerTest, FaultWithEverythingPinnedIsTypedRetryable) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);

  // A tiny enclave whose regular pages all get evicted...
  EnclaveLayout small;
  small.bootstrap_pages = 1;
  small.heap_pages = 1;
  small.load_pages = 1;
  small.stack_pages = 1;
  small.tls_pages = 1;
  auto a = host.BuildEnclave(small, ToBytes("A"));
  ASSERT_TRUE(a.ok());
  Bytes marker;
  AppendLe64(marker, 0xfeedface);
  ASSERT_TRUE(device.EnclaveWrite(*a, small.HeapStart(), marker).ok());
  ASSERT_TRUE(host.EvictPages(*a, small.TotalPages()).ok());

  // ...then a big pinned enclave fills every remaining EPC page, so the
  // fault on A's heap finds nothing reclaimable and nothing to self-evict.
  EnclaveLayout big;
  big.bootstrap_pages = 1;
  big.heap_pages = 57;
  big.load_pages = 2;
  big.stack_pages = 1;
  big.tls_pages = 1;
  auto b = host.BuildEnclave(big, ToBytes("B"));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(device.FreeEpcPages(), 0u);
  ASSERT_TRUE(device.PinEnclavePages(*b).ok());

  Bytes readback(8);
  Status st =
      device.EnclaveRead(*a, small.HeapStart(), MutableByteView(readback.data(), 8));
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  // The typed contract the front end keys on: back off and retry, don't
  // treat it as a hard failure.
  EXPECT_TRUE(core::IsRetryableResourceError(st)) << st.ToString();
  EXPECT_GT(host.epc_faults_handled(), 0u);

  // Once the pin drops the same access succeeds: demand reclaim pages B's
  // cold pages out and ELDU brings A's heap back intact.
  ASSERT_TRUE(device.UnpinEnclavePages(*b).ok());
  ASSERT_TRUE(
      device.EnclaveRead(*a, small.HeapStart(), MutableByteView(readback.data(), 8))
          .ok());
  EXPECT_EQ(LoadLe64(readback.data()), 0xfeedfaceu);
  EXPECT_GT(host.eldu_loads(), 0u);
}

TEST(ReclaimerTest, FaultStormUnderConcurrentReclaim) {
  // Two threads hammer their own enclave's heap while the background
  // reclaimer evicts under permanent pressure — the EWB/ELDU storm the TSan
  // job runs to shake out lock-ordering and counter races.
  SgxDevice device(SgxDevice::Options{.epc_pages = 100});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 64;
  layout.load_pages = 2;
  layout.stack_pages = 2;
  layout.tls_pages = 1;
  // Two 71-page enclaves on a 100-page EPC: the second build must already
  // page the first one out, so faulting is structural, not a daemon race.
  ASSERT_GT(2 * (layout.TotalPages() + 1), 100u);
  auto a = host.BuildEnclave(layout, ToBytes("STORM-A"));
  ASSERT_TRUE(a.ok());
  auto b = host.BuildEnclave(layout, ToBytes("STORM-B"));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_GT(device.EvictedPageCount(*a) + device.EvictedPageCount(*b), 0u);

  ReclaimerOptions options;
  options.low_watermark_pages = 90;  // permanently breached: always evicting
  options.batch_pages = 8;
  options.poll_interval_ms = 2;
  ASSERT_TRUE(host.StartReclaimer(options).ok());

  std::atomic<bool> failed{false};
  std::atomic<int> done{0};
  auto hammer = [&](uint64_t eid, uint64_t salt) {
    constexpr int kIterations = 8;
    constexpr uint64_t kStride = 4;
    for (int iter = 0; iter < kIterations && !failed; ++iter) {
      for (uint64_t page = 0; page < layout.heap_pages; page += kStride) {
        const uint64_t linear = layout.HeapStart() + page * kPageSize;
        const uint64_t want = salt ^ (page << 8) ^ uint64_t(iter);
        Bytes value;
        AppendLe64(value, want);
        // Faults can surface as retryable backpressure when the other
        // enclave briefly owns all reclaimable pages; honor the contract.
        Status st = device.EnclaveWrite(eid, linear, value);
        for (int attempt = 0; !st.ok() && attempt < 10'000; ++attempt) {
          if (!core::IsRetryableResourceError(st)) break;
          std::this_thread::yield();
          st = device.EnclaveWrite(eid, linear, value);
        }
        if (!st.ok()) { failed = true; return; }
        Bytes readback(8);
        st = device.EnclaveRead(eid, linear, MutableByteView(readback.data(), 8));
        for (int attempt = 0; !st.ok() && attempt < 10'000; ++attempt) {
          if (!core::IsRetryableResourceError(st)) break;
          std::this_thread::yield();
          st = device.EnclaveRead(eid, linear, MutableByteView(readback.data(), 8));
        }
        if (!st.ok() || LoadLe64(readback.data()) != want) {
          failed = true;
          return;
        }
      }
    }
  };
  std::thread ta([&] { hammer(*a, uint64_t{0xaaaa'0000}); ++done; });
  std::thread tb([&] { hammer(*b, uint64_t{0xbbbb'0000}); ++done; });
  // Keep the daemon awake the whole time, like allocators would.
  for (int tick = 0; done < 2 && tick < 60'000; ++tick) {
    host.NotifyEpcPressure();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ta.join();
  tb.join();
  host.StopReclaimer();
  EXPECT_FALSE(failed);
  EXPECT_GT(host.pages_reclaimed() + host.pages_evicted(), 0u);
  EXPECT_GT(host.epc_faults_handled(), 0u);

  ASSERT_TRUE(host.DestroyEnclave(*a).ok());
  ASSERT_TRUE(host.DestroyEnclave(*b).ok());
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.ReclaimablePageCount(), 0u);
  EXPECT_EQ(device.FreeEpcPages(), 100u);
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
}

TEST(ReclaimerTest, OversubscribedSoakRetainsNoPages) {
  // 1000 build/touch/destroy cycles with the layout bigger than physical
  // EPC and the reclaimer running: every cycle oversubscribes, and the gate
  // is that nothing — pages, LRU records, enclave bookkeeping — leaks.
  SgxDevice device(SgxDevice::Options{.epc_pages = 32});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 32;  // alone more than the whole EPC
  layout.load_pages = 2;
  layout.stack_pages = 1;
  layout.tls_pages = 1;
  ASSERT_GT(layout.TotalPages(), 32u);

  ReclaimerOptions options;
  options.low_watermark_pages = 8;
  options.batch_pages = 8;
  options.poll_interval_ms = 5;
  ASSERT_TRUE(host.StartReclaimer(options).ok());

  for (int cycle = 0; cycle < 1000; ++cycle) {
    auto eid = host.BuildEnclave(layout, ToBytes("SOAK"));
    ASSERT_TRUE(eid.ok()) << "cycle " << cycle << ": "
                          << eid.status().ToString();
    Bytes marker;
    AppendLe64(marker, uint64_t(cycle));
    ASSERT_TRUE(device.EnclaveWrite(*eid, layout.HeapStart(), marker).ok());
    if (cycle % 3 == 0) host.NotifyEpcPressure();
    Bytes readback(8);
    ASSERT_TRUE(device
                    .EnclaveRead(*eid, layout.HeapStart(),
                                 MutableByteView(readback.data(), 8))
                    .ok());
    ASSERT_EQ(LoadLe64(readback.data()), uint64_t(cycle));
    ASSERT_TRUE(host.DestroyEnclave(*eid).ok()) << "cycle " << cycle;
    if (cycle % 250 == 0) {
      ASSERT_EQ(device.EnclaveCount(), 0u) << "cycle " << cycle;
      ASSERT_EQ(device.ReclaimablePageCount(), 0u) << "cycle " << cycle;
      ASSERT_EQ(device.FreeEpcPages(), 32u) << "cycle " << cycle;
    }
  }
  host.StopReclaimer();
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.ReclaimablePageCount(), 0u);
  EXPECT_EQ(device.FreeEpcPages(), 32u);
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
}

}  // namespace
}  // namespace engarde::sgx
