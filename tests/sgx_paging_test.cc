// Demand-paging tests: enclaves larger than the EPC, transparent ELDU on
// access faults, and integrity of paged content — the driver-level EWB/ELDU
// duty a real SGX OS performs, which lets EnGarde handle executables whose
// staging + instruction buffer exceed physical EPC.
#include <gtest/gtest.h>

#include "client/client.h"
#include "core/engarde.h"
#include "sgx/hostos.h"
#include "workload/program_builder.h"

namespace engarde::sgx {
namespace {

TEST(PagingPressureTest, BuildEnclaveLargerThanEpc) {
  // 64 EPC pages, but the layout wants ~100: the build must succeed by
  // paging earlier additions out.
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 2;
  layout.heap_pages = 64;
  layout.load_pages = 24;
  layout.stack_pages = 8;
  layout.tls_pages = 1;
  ASSERT_GT(layout.TotalPages(), 64u);

  auto eid = host.BuildEnclave(layout, ToBytes("BOOT"));
  ASSERT_TRUE(eid.ok()) << eid.status().ToString();
  EXPECT_GT(host.pages_evicted(), 0u);
  EXPECT_GT(device.EvictedPageCount(*eid), 0u);
  // Committed (resident + evicted) covers the whole layout.
  EXPECT_EQ(device.PageCount(*eid) + device.EvictedPageCount(*eid),
            layout.TotalPages());
}

TEST(PagingPressureTest, AccessFaultsPageContentBackIn) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 80;
  layout.load_pages = 8;
  layout.stack_pages = 2;
  auto eid = host.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  // Write a pattern across the whole heap (touching every page faults the
  // evicted ones back in, evicting others).
  const uint64_t heap = layout.HeapStart();
  for (uint64_t i = 0; i < layout.heap_pages; ++i) {
    Bytes marker;
    AppendLe64(marker, i * 0x1111);
    ASSERT_TRUE(device.EnclaveWrite(*eid, heap + i * kPageSize, marker).ok())
        << "page " << i;
  }
  EXPECT_GT(host.epc_faults_handled(), 0u);

  // Read everything back — more faults, and every byte must round-trip
  // through the encrypted backing store intact.
  for (uint64_t i = 0; i < layout.heap_pages; ++i) {
    Bytes readback(8);
    ASSERT_TRUE(device
                    .EnclaveRead(*eid, heap + i * kPageSize,
                                 MutableByteView(readback.data(), 8))
                    .ok())
        << "page " << i;
    EXPECT_EQ(LoadLe64(readback.data()), i * 0x1111) << "page " << i;
  }
}

TEST(PagingPressureTest, ExplicitEvictionAndTransparentReload) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 128});
  HostOs host(&device);
  EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 16;
  layout.load_pages = 4;
  layout.stack_pages = 2;
  auto eid = host.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  ASSERT_TRUE(
      device.EnclaveWrite(*eid, layout.HeapStart(), ToBytes("persist")).ok());
  ASSERT_TRUE(host.EvictPages(*eid, 10).ok());
  EXPECT_EQ(device.EvictedPageCount(*eid), 10u);

  // Access is transparent again: the fault handler reloads on demand.
  Bytes readback(7);
  ASSERT_TRUE(device
                  .EnclaveRead(*eid, layout.HeapStart(),
                               MutableByteView(readback.data(), 7))
                  .ok());
  EXPECT_EQ(ToString(ByteView(readback.data(), 7)), "persist");
}

TEST(PagingPressureTest, NoHandlerMeansHardFault) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  auto eid = device.ECreate(0x10000000, 16 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, 0x10000000, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  ASSERT_TRUE(device.Ewb(*eid, 0x10000000).ok());
  // No HostOs registered: the access fails instead of paging in.
  Bytes buf(4);
  EXPECT_EQ(device.EnclaveRead(*eid, 0x10000000, MutableByteView(buf.data(), 4))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(PagingPressureTest, FullProvisioningUnderEpcPressure) {
  // End to end: EnGarde provisions and runs a client program on a machine
  // whose EPC is much smaller than the enclave.
  SgxDevice device(SgxDevice::Options{.epc_pages = 160});
  HostOs host(&device);
  auto quoting = QuotingEnclave::Provision(ToBytes("paging-device"), 768);
  ASSERT_TRUE(quoting.ok());

  core::EngardeOptions options;
  options.rsa_bits = 768;
  options.layout.bootstrap_pages = 2;
  options.layout.heap_pages = 160;  // alone more than the whole EPC
  options.layout.load_pages = 48;
  options.layout.stack_pages = 8;
  ASSERT_GT(options.layout.TotalPages(), 160u);

  auto enclave = core::EngardeEnclave::Create(&host, *quoting,
                                              core::PolicySet{}, options);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  workload::ProgramSpec spec;
  spec.seed = 404;
  spec.target_instructions = 2500;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  crypto::DuplexPipe pipe;
  ASSERT_TRUE(enclave->SendHello(pipe.EndA()).ok());
  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program->image);
  ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());

  auto outcome = enclave->RunProvisioning(pipe.EndA());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->verdict.compliant) << outcome->verdict.reason;
  EXPECT_GT(host.epc_faults_handled() + host.pages_evicted(), 0u);

  auto rax = enclave->ExecuteClientProgram();
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
}

}  // namespace
}  // namespace engarde::sgx
