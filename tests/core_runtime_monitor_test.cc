// Tests for the runtime-enforcement extension: shadow-stack (backward-edge
// CFI), indirect-target whitelisting (dynamic forward-edge CFI) and
// instruction metering, attached to programs provisioned through the full
// EnGarde pipeline.
#include "core/runtime_monitor.h"

#include <gtest/gtest.h>

#include "client/client.h"
#include "core/engarde.h"
#include "elf/builder.h"
#include "workload/program_builder.h"
#include "x86/encoder.h"

namespace engarde::core {
namespace {

// Provisions `image` through EnGarde with an empty static policy set and
// returns a ready-to-execute enclave. The test fixture owns device/host.
class RuntimeMonitorTest : public ::testing::Test {
 protected:
  RuntimeMonitorTest()
      : device_(sgx::SgxDevice::Options{.epc_pages = 2048}), host_(&device_) {}

  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("rt-device"), 768);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }

  Result<EngardeEnclave> Provision(const Bytes& image) {
    EngardeOptions options;
    options.rsa_bits = 768;
    options.layout.heap_pages = 256;
    options.layout.load_pages = 64;
    ASSIGN_OR_RETURN(auto enclave, EngardeEnclave::Create(
                                       &host_, *qe_, PolicySet{}, options));
    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave.SendHello(pipe.EndA()));
    client::ClientOptions client_options;
    client_options.attestation_key = qe_->attestation_public_key();
    client_options.skip_measurement_check = true;
    client::Client client(client_options, image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome,
                     enclave.RunProvisioning(pipe.EndA()));
    if (!outcome.verdict.compliant) {
      return InternalError("unexpected rejection: " + outcome.verdict.reason);
    }
    return enclave;
  }

  sgx::SgxDevice device_;
  sgx::HostOs host_;

 private:
  static sgx::QuotingEnclave* qe_;
};

sgx::QuotingEnclave* RuntimeMonitorTest::qe_ = nullptr;

// Position-independent variant: the victim computes the gadget address with
// lea gadget(%rip), %rax — works at any load base.
Bytes BuildRetHijackProgramRipRel() {
  x86::Assembler as(0x1000);
  as.CallAbs(0x1020);  // _start
  as.Hlt();
  as.AlignTo(32);
  as.LeaRipRelTo(x86::kRax, 0x1040);  // victim: rax = &gadget (RIP-relative)
  as.MovStore(x86::kRsp, 0, x86::kRax);
  as.Ret();
  as.AlignTo(32);
  as.MovRegImm32(x86::kRax, 0x1337);  // gadget
  as.Ret();

  elf::ElfBuilder builder;
  const uint64_t tv = builder.AddTextSection(".text", as.bytes());
  EXPECT_EQ(tv, 0x1000u);
  builder.AddSymbol("_start", 0x1000, 6, elf::kSttFunc);
  builder.AddSymbol("victim", 0x1020, 12, elf::kSttFunc);
  builder.AddSymbol("gadget", 0x1040, 6, elf::kSttFunc);
  builder.SetEntry(0x1000);
  auto image = builder.Build();
  EXPECT_TRUE(image.ok());
  return *image;
}

TEST_F(RuntimeMonitorTest, RetHijackSucceedsWithoutMonitor) {
  auto enclave = Provision(BuildRetHijackProgramRipRel());
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();
  auto rax = enclave->ExecuteClientProgram();
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, 0x1337u);  // the hijack reached the gadget undetected
}

TEST_F(RuntimeMonitorTest, ShadowStackCatchesRetHijack) {
  auto enclave = Provision(BuildRetHijackProgramRipRel());
  ASSERT_TRUE(enclave.ok());

  RuntimeMonitor monitor;
  monitor.AddPolicy(std::make_unique<ShadowStackPolicy>());
  monitor.BeginRun();
  auto rax = enclave->ExecuteClientProgram(1u << 22, &monitor);
  ASSERT_FALSE(rax.ok());
  EXPECT_EQ(rax.status().code(), StatusCode::kPolicyViolation);
  EXPECT_NE(monitor.violation().find("shadow-stack"), std::string::npos);
  EXPECT_NE(monitor.violation().find("hijack"), std::string::npos);
}

TEST_F(RuntimeMonitorTest, ShadowStackPassesHonestProgram) {
  workload::ProgramSpec spec;
  spec.seed = 77;
  spec.target_instructions = 2500;
  spec.ifcc = true;  // include indirect calls through the jump table
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto enclave = Provision(program->image);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  RuntimeMonitor monitor;
  monitor.AddPolicy(std::make_unique<ShadowStackPolicy>());
  monitor.BeginRun();
  auto rax = enclave->ExecuteClientProgram(1u << 22, &monitor);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString() << " / "
                        << monitor.violation();
  EXPECT_GT(monitor.transfers_observed(), 0u);
}

TEST_F(RuntimeMonitorTest, IndirectTargetWhitelistPassesJumpTableCalls) {
  workload::ProgramSpec spec;
  spec.seed = 78;
  spec.target_instructions = 2500;
  spec.ifcc = true;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto enclave = Provision(program->image);
  ASSERT_TRUE(enclave.ok());

  ASSERT_NE(enclave->loaded_symbols(), nullptr);
  ASSERT_NE(enclave->load_result(), nullptr);
  RuntimeMonitor monitor;
  monitor.AddPolicy(std::make_unique<IndirectTargetPolicy>(
      IndirectTargetPolicy::FromSymbols(*enclave->loaded_symbols(),
                                        enclave->load_result()->load_base)));
  monitor.BeginRun();
  auto rax = enclave->ExecuteClientProgram(1u << 22, &monitor);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString() << " / "
                        << monitor.violation();
}

TEST_F(RuntimeMonitorTest, IndirectTargetWhitelistCatchesWildPointer) {
  // A program that calls through a pointer into the middle of a function:
  //   _start: lea victim+4(%rip), %rcx ; call *%rcx ; hlt
  x86::Assembler as(0x1000);
  as.LeaRipRelTo(x86::kRcx, 0x1020 + 4);  // NOT a function entry
  as.CallIndirectReg(x86::kRcx);
  as.Hlt();
  as.AlignTo(32);
  as.NopBytes(4);
  as.MovRegImm32(x86::kRax, 7);  // the wild pointer lands here
  as.Ret();

  elf::ElfBuilder builder;
  builder.AddTextSection(".text", as.bytes());
  builder.AddSymbol("_start", 0x1000, 10, elf::kSttFunc);
  builder.AddSymbol("victim", 0x1020, 10, elf::kSttFunc);
  builder.SetEntry(0x1000);
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());

  auto enclave = Provision(*image);
  ASSERT_TRUE(enclave.ok()) << enclave.status().ToString();

  // Without the monitor the wild call goes through.
  auto unmonitored = enclave->ExecuteClientProgram();
  ASSERT_TRUE(unmonitored.ok());
  EXPECT_EQ(*unmonitored, 7u);

  RuntimeMonitor monitor;
  monitor.AddPolicy(std::make_unique<IndirectTargetPolicy>(
      IndirectTargetPolicy::FromSymbols(*enclave->loaded_symbols(),
                                        enclave->load_result()->load_base)));
  monitor.BeginRun();
  auto rax = enclave->ExecuteClientProgram(1u << 22, &monitor);
  ASSERT_FALSE(rax.ok());
  EXPECT_EQ(rax.status().code(), StatusCode::kPolicyViolation);
  EXPECT_NE(monitor.violation().find("non-whitelisted"), std::string::npos);
}

TEST_F(RuntimeMonitorTest, InstructionBudgetMetersRuns) {
  workload::ProgramSpec spec;
  spec.seed = 79;
  spec.target_instructions = 2500;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto enclave = Provision(program->image);
  ASSERT_TRUE(enclave.ok());

  // Generous budget: passes.
  {
    RuntimeMonitor monitor;
    monitor.AddPolicy(std::make_unique<InstructionBudgetPolicy>(1u << 22));
    monitor.BeginRun();
    EXPECT_TRUE(enclave->ExecuteClientProgram(1u << 22, &monitor).ok());
  }
  // Tiny budget: metered out.
  {
    RuntimeMonitor monitor;
    monitor.AddPolicy(std::make_unique<InstructionBudgetPolicy>(10));
    monitor.BeginRun();
    auto rax = enclave->ExecuteClientProgram(1u << 22, &monitor);
    ASSERT_FALSE(rax.ok());
    EXPECT_EQ(rax.status().code(), StatusCode::kPolicyViolation);
    EXPECT_NE(monitor.violation().find("instruction-budget"),
              std::string::npos);
  }
}

TEST_F(RuntimeMonitorTest, MultiplePoliciesCompose) {
  workload::ProgramSpec spec;
  spec.seed = 80;
  spec.target_instructions = 2500;
  spec.ifcc = true;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto enclave = Provision(program->image);
  ASSERT_TRUE(enclave.ok());

  RuntimeMonitor monitor;
  monitor.AddPolicy(std::make_unique<ShadowStackPolicy>());
  monitor.AddPolicy(std::make_unique<IndirectTargetPolicy>(
      IndirectTargetPolicy::FromSymbols(*enclave->loaded_symbols(),
                                        enclave->load_result()->load_base)));
  monitor.AddPolicy(std::make_unique<InstructionBudgetPolicy>(1u << 22));
  monitor.BeginRun();
  EXPECT_EQ(monitor.policy_count(), 3u);
  auto rax = enclave->ExecuteClientProgram(1u << 22, &monitor);
  EXPECT_TRUE(rax.ok()) << rax.status().ToString() << " / "
                        << monitor.violation();

  // Deterministic across runs, including the transfer count.
  const uint64_t transfers = monitor.transfers_observed();
  monitor.BeginRun();
  auto rax2 = enclave->ExecuteClientProgram(1u << 22, &monitor);
  ASSERT_TRUE(rax2.ok());
  EXPECT_EQ(*rax, *rax2);
  EXPECT_EQ(monitor.transfers_observed(), transfers);
}

TEST(ShadowStackUnitTest, EmptyStackReturnToExitSentinelAllowed) {
  ShadowStackPolicy policy;
  policy.OnRunStart();
  EXPECT_TRUE(policy
                  .OnControlTransfer(
                      x86::ExecutionObserver::TransferKind::kReturn, 0x1000,
                      x86::Machine::kExitAddr, 0)
                  .ok());
}

TEST(ShadowStackUnitTest, EmptyStackReturnElsewhereRejected) {
  ShadowStackPolicy policy;
  policy.OnRunStart();
  EXPECT_FALSE(policy
                   .OnControlTransfer(
                       x86::ExecutionObserver::TransferKind::kReturn, 0x1000,
                       0x2000, 0)
                   .ok());
}

TEST(ShadowStackUnitTest, NestedCallsBalance) {
  using TK = x86::ExecutionObserver::TransferKind;
  ShadowStackPolicy policy;
  policy.OnRunStart();
  EXPECT_TRUE(policy.OnControlTransfer(TK::kCall, 0x100, 0x500, 0x105).ok());
  EXPECT_TRUE(policy.OnControlTransfer(TK::kCallIndirect, 0x510, 0x800, 0x512).ok());
  EXPECT_EQ(policy.depth(), 2u);
  EXPECT_TRUE(policy.OnControlTransfer(TK::kReturn, 0x805, 0x512, 0).ok());
  EXPECT_TRUE(policy.OnControlTransfer(TK::kReturn, 0x520, 0x105, 0).ok());
  EXPECT_EQ(policy.depth(), 0u);
}

}  // namespace
}  // namespace engarde::core
