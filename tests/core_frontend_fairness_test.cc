// Adaptive overload control and multi-tenant fairness in the provisioning
// front end (core/frontend.h): percentile-derived deadlines (log-scale
// histogram buckets, cold start, recompute cadence, hysteresis), the
// oldest-eviction policy vs the classic newest-shed, deficit-round-robin
// admission across Transport::peer() tenants with token-bucket rate limits,
// and containment of short-writing / hard-failing transports on the
// RetryAfter path. Everything runs against the injected fake clock, so every
// latency sample and every refill is a statement, not a sleep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/frontend.h"
#include "core/policy_stackprot.h"
#include "net/transport.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 512;

PolicySet MakePolicies() {
  PolicySet policies;
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  return policies;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& q) {
  client::ClientOptions options;
  options.attestation_key = q.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

struct FakeClock {
  std::shared_ptr<std::atomic<uint64_t>> now_ns =
      std::make_shared<std::atomic<uint64_t>>(uint64_t{1});

  std::function<uint64_t()> fn() const {
    auto cell = now_ns;
    return [cell] { return cell->load(std::memory_order_relaxed); };
  }
  void AdvanceMs(uint64_t ms) {
    now_ns->fetch_add(ms * 1000000ull, std::memory_order_relaxed);
  }
};

class FairnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe =
        sgx::QuotingEnclave::Provision(ToBytes("fairness-device"), kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    workload::ProgramSpec spec;
    spec.name = "fairness";
    spec.seed = 4100;
    spec.target_instructions = 2500;
    spec.stack_protection = true;
    auto program = workload::BuildProgram(spec);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    image_ = new Bytes(std::move(program).value().image);
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete image_;
    image_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const Bytes& image() { return *image_; }

  static EngardeOptions EnclaveOptions() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  static size_t EpcPagesFor(size_t enclaves) {
    return enclaves * (EnclaveOptions().layout.TotalPages() + 1) + 64;
  }

  static sgx::QuotingEnclave* qe_;
  static Bytes* image_;
};

sgx::QuotingEnclave* FairnessTest::qe_ = nullptr;
Bytes* FairnessTest::image_ = nullptr;

struct MemoryClient {
  std::unique_ptr<crypto::DuplexPipe> pipe;
  std::unique_ptr<client::Client> client;
  uint64_t connection = 0;
  bool sent = false;
  std::optional<Verdict> verdict;
};

// Accepts a client whose transport carries a tenant tag (Transport::peer()),
// optionally wrapped in a FaultInjectingTransport.
Result<MemoryClient> ConnectTenant(ProvisioningFrontend& frontend,
                                   const Bytes& image,
                                   client::ClientOptions options,
                                   const std::string& peer,
                                   const net::FaultPlan* plan = nullptr) {
  MemoryClient mc;
  mc.pipe = std::make_unique<crypto::DuplexPipe>();
  mc.client = std::make_unique<client::Client>(std::move(options), image);
  auto pipe_transport = std::make_unique<net::PipeTransport>(mc.pipe->EndA());
  pipe_transport->set_peer(peer);
  std::unique_ptr<net::Transport> transport = std::move(pipe_transport);
  if (plan != nullptr) {
    transport = std::make_unique<net::FaultInjectingTransport>(
        std::move(transport), *plan);
  }
  ASSIGN_OR_RETURN(mc.connection, frontend.Accept(std::move(transport)));
  return mc;
}

Status DriveToVerdicts(ProvisioningFrontend& frontend,
                       std::vector<MemoryClient*> clients) {
  for (;;) {
    ASSIGN_OR_RETURN(size_t progress, frontend.PollOnce());
    for (MemoryClient* mc : clients) {
      if (!mc->sent && net::HasCompleteFrames(mc->pipe->EndB(), 3)) {
        ASSIGN_OR_RETURN(const auto retry,
                         mc->client->AwaitAdmission(mc->pipe->EndB()));
        if (retry.has_value()) {
          return InternalError("unexpected RetryAfter in fairness test");
        }
        RETURN_IF_ERROR(mc->client->SendProgram(mc->pipe->EndB()));
        mc->sent = true;
        ++progress;
      }
      if (mc->sent && !mc->verdict.has_value() &&
          net::HasCompleteSecureRecord(mc->pipe->EndB())) {
        ASSIGN_OR_RETURN(Verdict verdict, mc->client->AwaitVerdict());
        mc->verdict.emplace(std::move(verdict));
        ++progress;
      }
    }
    bool all_done = true;
    for (const MemoryClient* mc : clients) {
      all_done = all_done && mc->verdict.has_value();
    }
    if (all_done) return Status::Ok();
    if (progress == 0) return InternalError("no progress before all verdicts");
  }
}

#define ASSERT_OK(expr)                          \
  do {                                           \
    const Status _status = (expr);               \
    ASSERT_TRUE(_status.ok()) << _status.ToString(); \
  } while (0)

// Sweeps until `id` reaches kActive (bounded; queue admission is at most one
// sweep behind an EPC release).
Status PollUntilActive(ProvisioningFrontend& frontend, uint64_t id) {
  for (int i = 0; i < 200; ++i) {
    if (frontend.state(id) == ConnectionState::kActive) return Status::Ok();
    RETURN_IF_ERROR(frontend.PollOnce().status());
  }
  return InternalError("connection never admitted");
}

// One accept -> verdict -> outcome-taken session whose duration (and nothing
// else) advances the fake clock, so the session histogram fills with exactly
// the durations the test dictates.
Status RunTimedSession(ProvisioningFrontend& frontend, FakeClock& clock,
                       const Bytes& image, const sgx::QuotingEnclave& q,
                       uint64_t duration_ms) {
  ASSIGN_OR_RETURN(MemoryClient mc,
                   ConnectTenant(frontend, image, ClientOptionsFor(q), ""));
  if (frontend.state(mc.connection) != ConnectionState::kActive) {
    return InternalError("timed session not admitted immediately");
  }
  clock.AdvanceMs(duration_ms);
  RETURN_IF_ERROR(DriveToVerdicts(frontend, {&mc}));
  RETURN_IF_ERROR(frontend.TakeOutcome(mc.connection).status());
  // Reap the slot while mc's pipe is still alive: the frontend's transport
  // holds an endpoint into it, and the frontend ctor contract says peers
  // outlive their connections.
  RETURN_IF_ERROR(frontend.DrainAll());
  if (frontend.state(mc.connection) != ConnectionState::kReaped) {
    return InternalError("timed session not reaped after outcome taken");
  }
  return Status::Ok();
}

// ---- Histogram primitives --------------------------------------------------

TEST(LatencyHistogramTest, BucketIndexIsFloorLog2WithSaturation) {
  EXPECT_EQ(LatencyBucketIndex(0), 0u);
  EXPECT_EQ(LatencyBucketIndex(1), 0u);
  EXPECT_EQ(LatencyBucketIndex(2), 1u);
  EXPECT_EQ(LatencyBucketIndex(3), 1u);
  EXPECT_EQ(LatencyBucketIndex(4), 2u);
  EXPECT_EQ(LatencyBucketIndex((uint64_t{1} << 21) - 1), 20u);
  EXPECT_EQ(LatencyBucketIndex(uint64_t{1} << 21), 21u);
  // Everything past the last bucket boundary saturates into the last bucket.
  EXPECT_EQ(LatencyBucketIndex(uint64_t{1} << (kLatencyBuckets - 1)),
            kLatencyBuckets - 1);
  EXPECT_EQ(LatencyBucketIndex(~uint64_t{0}), kLatencyBuckets - 1);
}

TEST(LatencyHistogramTest, PercentileIsConservativeUpperBound) {
  uint64_t hist[kLatencyBuckets] = {};
  EXPECT_EQ(HistogramCount(hist), 0u);
  EXPECT_EQ(HistogramPercentileNs(hist, 95), 0u);  // empty: no estimate

  // A single sample reports the exclusive upper bound of its bucket: the
  // derived deadline must cover the sample, never undercut it.
  hist[LatencyBucketIndex(3000)] = 1;  // bucket 11 = [2048, 4096)
  EXPECT_EQ(HistogramPercentileNs(hist, 50), uint64_t{1} << 12);
  EXPECT_EQ(HistogramPercentileNs(hist, 95), uint64_t{1} << 12);

  // 9 fast + 1 slow: the median stays in the fast bucket, the p95 climbs to
  // the slow one.
  uint64_t mixed[kLatencyBuckets] = {};
  mixed[10] = 9;
  mixed[20] = 1;
  EXPECT_EQ(HistogramCount(mixed), 10u);
  EXPECT_EQ(HistogramPercentileNs(mixed, 50), uint64_t{1} << 11);
  EXPECT_EQ(HistogramPercentileNs(mixed, 95), uint64_t{1} << 21);
}

// ---- Adaptive deadlines ----------------------------------------------------

TEST_F(FairnessTest, AdaptiveColdStartHoldsStaticDeadlinesAndCadenceGates) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.clock = clock.fn();
  options.queue_deadline_ms = 2000;
  options.idle_deadline_ms = 1000;
  options.session_deadline_ms = 5000;
  options.retry_after_ms = 50;
  options.adaptive_deadlines = true;
  options.adaptive_recompute_ms = 100;
  options.adaptive_min_samples = 32;  // more than this test ever produces
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  // Before any traffic the effective values ARE the static options.
  EXPECT_EQ(frontend.effective_queue_deadline_ms(), 2000u);
  EXPECT_EQ(frontend.effective_idle_deadline_ms(), 1000u);
  EXPECT_EQ(frontend.effective_session_deadline_ms(), 5000u);
  EXPECT_EQ(frontend.effective_retry_after_ms(), 50u);

  // Two sessions' worth of samples: far below adaptive_min_samples, so a
  // recompute pass runs but adopts nothing.
  ASSERT_OK(RunTimedSession(frontend, clock, image(), qe(), 16));
  ASSERT_OK(RunTimedSession(frontend, clock, image(), qe(), 16));
  clock.AdvanceMs(150);
  ASSERT_TRUE(frontend.PollOnce().ok());
  FrontendMetrics m = frontend.metrics();
  EXPECT_EQ(HistogramCount(m.session_hist), 2u);
  EXPECT_GE(m.deadline_recomputes, 2u);
  EXPECT_EQ(frontend.effective_queue_deadline_ms(), 2000u);
  EXPECT_EQ(frontend.effective_idle_deadline_ms(), 1000u);
  EXPECT_EQ(frontend.effective_session_deadline_ms(), 5000u);
  EXPECT_EQ(frontend.effective_retry_after_ms(), 50u);

  // Recompute cadence: same instant and 99ms later are both inside the
  // 100ms window; the 100th millisecond opens it.
  const uint64_t recomputes = frontend.metrics().deadline_recomputes;
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.metrics().deadline_recomputes, recomputes);
  clock.AdvanceMs(99);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.metrics().deadline_recomputes, recomputes);
  clock.AdvanceMs(1);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.metrics().deadline_recomputes, recomputes + 1);
}

TEST_F(FairnessTest, AdaptiveAdoptsPercentileDerivedDeadlines) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.clock = clock.fn();
  options.queue_deadline_ms = 2000;
  options.idle_deadline_ms = 1000;
  options.session_deadline_ms = 5000;
  options.retry_after_ms = 50;
  options.adaptive_deadlines = true;
  options.adaptive_recompute_ms = 100;
  options.adaptive_min_samples = 4;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  // Four 16ms sessions: every session sample lands in bucket 23
  // ([2^23, 2^24) ns), every admission-wait sample in bucket 0 (immediate
  // admits under a frozen clock wait exactly 0ns).
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(RunTimedSession(frontend, clock, image(), qe(), 16));
  }
  clock.AdvanceMs(150);
  ASSERT_TRUE(frontend.PollOnce().ok());

  FrontendMetrics m = frontend.metrics();
  ASSERT_EQ(HistogramCount(m.session_hist), 4u);
  ASSERT_GE(HistogramCount(m.admission_wait_hist), 4u);
  ASSERT_EQ(HistogramPercentileNs(m.session_hist, 95), uint64_t{1} << 24);

  // session = 8 x p95 = 8 x 2^24 ns -> ceil 135ms; idle = 4 x p95 -> 68ms;
  // queue = 4 x p95(wait) = 8ns -> 1ms, clamped up to adaptive_min_ms = 10;
  // hint = p50(wait) = 2ns -> 1ms (the hint is exempt from the floor).
  EXPECT_EQ(frontend.effective_session_deadline_ms(), 135u);
  EXPECT_EQ(frontend.effective_idle_deadline_ms(), 68u);
  EXPECT_EQ(frontend.effective_queue_deadline_ms(), 10u);
  EXPECT_EQ(frontend.effective_retry_after_ms(), 1u);
  EXPECT_EQ(m.effective_session_deadline_ms, 135u);
}

TEST(ApplyHysteresisTest, AdoptHoldAndAsymmetry) {
  // Nothing in force: adopt outright, whatever the band.
  EXPECT_EQ(ApplyHysteresis(0, 135, 25), 135u);
  EXPECT_EQ(ApplyHysteresis(0, 1, 1000), 1u);
  // Moves inside the band hold the value in force; moves past it adopt.
  EXPECT_EQ(ApplyHysteresis(100, 125, 25), 100u);  // delta == band: holds
  EXPECT_EQ(ApplyHysteresis(100, 126, 25), 126u);
  EXPECT_EQ(ApplyHysteresis(100, 75, 25), 100u);
  EXPECT_EQ(ApplyHysteresis(100, 74, 25), 74u);
  // Unchanged proposal is always a hold.
  EXPECT_EQ(ApplyHysteresis(135, 135, 25), 135u);
  // At pct >= 100 a downward move can never exceed the band (delta <=
  // current), so shrinking requires the upward-only asymmetry documented on
  // the declaration.
  EXPECT_EQ(ApplyHysteresis(1000, 1, 100), 1000u);
  EXPECT_EQ(ApplyHysteresis(1000, 2001, 100), 2001u);
}

TEST_F(FairnessTest, AdaptiveHysteresisSuppressesSmallMoves) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.clock = clock.fn();
  // Static session/idle deadlines stay 0 (unlimited): the first recompute
  // adopts outright (nothing in force), and later phases only fight the
  // deadlines the recomputes themselves put in force.
  options.adaptive_deadlines = true;
  options.adaptive_recompute_ms = 100;
  options.adaptive_min_samples = 1;
  // Hysteresis wide enough that a one-bucket (2x) percentile move holds the
  // value in force while a two-bucket (4x) move breaks through.
  options.adaptive_hysteresis_pct = 150;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  // One 16ms session: p95 = 2^24 ns -> session deadline 135ms (idle 68ms)
  // adopted outright over the zero in force.
  ASSERT_OK(RunTimedSession(frontend, clock, image(), qe(), 16));
  clock.AdvanceMs(150);
  ASSERT_TRUE(frontend.PollOnce().ok());
  ASSERT_EQ(frontend.effective_session_deadline_ms(), 135u);

  // Nine 32ms sessions (under the 68ms idle deadline in force) drag the p95
  // one bucket up (2^25 ns -> proposal 269ms). Delta 134 <= 150% of 135:
  // hysteresis holds 135.
  for (int i = 0; i < 9; ++i) {
    ASSERT_OK(RunTimedSession(frontend, clock, image(), qe(), 32));
  }
  clock.AdvanceMs(150);
  ASSERT_TRUE(frontend.PollOnce().ok());
  FrontendMetrics m = frontend.metrics();
  ASSERT_EQ(HistogramPercentileNs(m.session_hist, 95), uint64_t{1} << 25);
  EXPECT_EQ(frontend.effective_session_deadline_ms(), 135u);

  // Ten 64ms sessions (still under the idle deadline) push the p95 two
  // buckets from the adopted point (2^26 ns -> proposal 537ms). Delta 402
  // > 150% of 135: adopted.
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(RunTimedSession(frontend, clock, image(), qe(), 64));
  }
  clock.AdvanceMs(150);
  ASSERT_TRUE(frontend.PollOnce().ok());
  m = frontend.metrics();
  ASSERT_EQ(HistogramPercentileNs(m.session_hist, 95), uint64_t{1} << 26);
  EXPECT_EQ(frontend.effective_session_deadline_ms(), 537u);
}

// ---- Oldest-eviction vs newest-shed ----------------------------------------

TEST_F(FairnessTest, EvictOldestShedsOldestQueuedArrivalNotNewest) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.clock = clock.fn();
  options.admission_queue_capacity = 1;
  options.retry_after_ms = 77;
  options.evict_oldest = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto active = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(active.ok()) << active.status().ToString();
  ASSERT_EQ(frontend.state(active->connection), ConnectionState::kActive);
  auto oldest = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(oldest.ok());
  ASSERT_EQ(frontend.state(oldest->connection), ConnectionState::kQueued);
  clock.AdvanceMs(5);

  // Queue pressure: the OLDEST waiter yields its place to the newcomer
  // (classic behavior would shed the newcomer instead).
  auto newest = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(frontend.state(oldest->connection), ConnectionState::kShed);
  EXPECT_EQ(frontend.state(newest->connection), ConnectionState::kQueued);
  FrontendMetrics m = frontend.metrics();
  EXPECT_EQ(m.evicted_oldest, 1u);
  EXPECT_EQ(m.shed, 1u);
  EXPECT_EQ(frontend.queued_count(), 1u);

  // The evicted waiter reads a well-formed RetryAfter with the shed-time
  // queue depth (itself already removed, the newcomer not yet parked).
  auto retry = oldest->client->AwaitAdmission(oldest->pipe->EndB());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(retry->has_value());
  EXPECT_EQ((*retry)->retry_after_ms, 77u);

  // The survivor admits once the active session finishes.
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*active, &*newest}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(active->connection).ok());
  ASSERT_TRUE(frontend.TakeOutcome(newest->connection).ok());
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.connection_count(), 0u);
}

TEST_F(FairnessTest, EvictOldestOffKeepsClassicNewestShed) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 1;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto active = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(active.ok());
  auto oldest = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(oldest.ok());
  auto newest = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(frontend.state(oldest->connection), ConnectionState::kQueued);
  EXPECT_EQ(frontend.state(newest->connection), ConnectionState::kShed);
  EXPECT_EQ(frontend.metrics().evicted_oldest, 0u);
}

// ---- Weighted-fair admission -----------------------------------------------

TEST_F(FairnessTest, FairAdmissionPreventsSingleTenantStarvation) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 8;
  options.fair_admission = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  // Tenant X floods; tenant Y sends one arrival AFTER X's backlog.
  auto ax = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  ASSERT_TRUE(ax.ok());
  ASSERT_EQ(frontend.state(ax->connection), ConnectionState::kActive);
  auto x1 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  auto x2 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  auto y1 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.2");
  ASSERT_TRUE(x1.ok() && x2.ok() && y1.ok());
  EXPECT_EQ(frontend.queued_count(), 3u);
  EXPECT_EQ(frontend.metrics().tenants_seen, 2u);

  // First EPC release goes to X (its rotation turn)...
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*ax}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(ax->connection).ok());
  ASSERT_TRUE(PollUntilActive(frontend, x1->connection).ok());
  EXPECT_EQ(frontend.state(x2->connection), ConnectionState::kQueued);
  EXPECT_EQ(frontend.state(y1->connection), ConnectionState::kQueued);

  // ...but the second goes to Y, ahead of X's earlier-arrived x2: a single
  // FIFO would have served x2 first and starved Y behind the flood.
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*x1}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(x1->connection).ok());
  ASSERT_TRUE(PollUntilActive(frontend, y1->connection).ok());
  EXPECT_EQ(frontend.state(x2->connection), ConnectionState::kQueued);

  ASSERT_TRUE(DriveToVerdicts(frontend, {&*y1}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(y1->connection).ok());
  ASSERT_TRUE(PollUntilActive(frontend, x2->connection).ok());
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*x2}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(x2->connection).ok());

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.queued_count(), 0u);
  EXPECT_EQ(frontend.metrics().queue_depth, 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.connection_count(), 0u);
}

TEST_F(FairnessTest, LegacyFifoServesFloodBeforeLateTenant) {
  // Control for the test above: fair_admission off, same arrival pattern —
  // the flood's x2 is served before Y.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 8;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto ax = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  ASSERT_TRUE(ax.ok());
  auto x1 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  auto x2 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  auto y1 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.2");
  ASSERT_TRUE(x1.ok() && x2.ok() && y1.ok());

  ASSERT_TRUE(DriveToVerdicts(frontend, {&*ax}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(ax->connection).ok());
  ASSERT_TRUE(PollUntilActive(frontend, x1->connection).ok());
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*x1}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(x1->connection).ok());
  ASSERT_TRUE(PollUntilActive(frontend, x2->connection).ok());
  EXPECT_EQ(frontend.state(y1->connection), ConnectionState::kQueued);
}

TEST_F(FairnessTest, TenantRateLimitDefersUntilBucketRefills) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(3)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.clock = clock.fn();
  options.admission_queue_capacity = 4;
  options.fair_admission = true;
  options.tenant_rate = 1000;  // 1 admission unit per fake millisecond
  options.tenant_burst = 1;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  // X's first arrival drains its one-token bucket; the second queues on the
  // rate limit even though the EPC has room for it.
  auto x1 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  ASSERT_TRUE(x1.ok());
  ASSERT_EQ(frontend.state(x1->connection), ConnectionState::kActive);
  auto x2 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1");
  ASSERT_TRUE(x2.ok());
  EXPECT_EQ(frontend.state(x2->connection), ConnectionState::kQueued);
  EXPECT_GE(frontend.metrics().rate_limit_deferrals, 1u);

  // Y is a different tenant with its own (full) bucket: it overtakes X's
  // blocked arrival instead of queueing behind it.
  auto y1 = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.2");
  ASSERT_TRUE(y1.ok());
  ASSERT_TRUE(PollUntilActive(frontend, y1->connection).ok());
  EXPECT_EQ(frontend.state(x2->connection), ConnectionState::kQueued);

  // A sweep with a frozen clock refills nothing; one fake millisecond
  // refills one token and x2 admits.
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(x2->connection), ConnectionState::kQueued);
  clock.AdvanceMs(1);
  ASSERT_TRUE(PollUntilActive(frontend, x2->connection).ok());

  ASSERT_TRUE(DriveToVerdicts(frontend, {&*x1, &*x2, &*y1}).ok());
  for (const auto* mc : {&*x1, &*x2, &*y1}) {
    ASSERT_TRUE(frontend.TakeOutcome(mc->connection).ok());
  }
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.connection_count(), 0u);
}

// ---- RetryAfter delivery under transport faults (shed containment) ---------

TEST_F(FairnessTest, ShortWritingTransportStillDeliversFullRetryAfter) {
  // The shed path's Flush() reports an unflushed tail (the transport
  // forwards one byte per flush). The reactor must keep draining the tail
  // across sweeps — not error out of Accept() — until the whole RetryAfter
  // record lands, and only then retire the slot.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 0;
  options.retry_after_ms = 125;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto active = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(active.ok());
  ASSERT_EQ(frontend.state(active->connection), ConnectionState::kActive);

  net::FaultPlan trickle;
  trickle.max_flush_bytes = 1;
  auto shed = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "",
                            &trickle);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();  // no sweep poisoning
  EXPECT_EQ(frontend.state(shed->connection), ConnectionState::kShed);

  // Sweep until the record has fully trickled out (one byte per sweep).
  for (int i = 0; i < 300 && !net::HasCompleteFrames(shed->pipe->EndB(), 1);
       ++i) {
    ASSERT_TRUE(frontend.PollOnce().ok());
  }
  auto retry = shed->client->AwaitAdmission(shed->pipe->EndB());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(retry->has_value());
  EXPECT_EQ((*retry)->retry_after_ms, 125u);

  // The slot is only retired after the tail landed; the sweep stays healthy.
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(shed->connection), ConnectionState::kReaped);
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*active}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(active->connection).ok());
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
}

TEST_F(FairnessTest, EvictionDrivenShedDrainsShortWritingVictim) {
  // Same short-write containment, but the shed comes from the oldest-evict
  // path instead of the front door.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 1;
  options.evict_oldest = true;
  options.retry_after_ms = 99;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto active = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(active.ok());
  net::FaultPlan trickle;
  trickle.max_flush_bytes = 1;
  auto victim = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "",
                              &trickle);
  ASSERT_TRUE(victim.ok());
  ASSERT_EQ(frontend.state(victim->connection), ConnectionState::kQueued);

  auto newcomer = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(newcomer.ok()) << newcomer.status().ToString();
  EXPECT_EQ(frontend.state(victim->connection), ConnectionState::kShed);
  EXPECT_EQ(frontend.metrics().evicted_oldest, 1u);

  for (int i = 0; i < 300 && !net::HasCompleteFrames(victim->pipe->EndB(), 1);
       ++i) {
    ASSERT_TRUE(frontend.PollOnce().ok());
  }
  auto retry = victim->client->AwaitAdmission(victim->pipe->EndB());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(retry->has_value());
  EXPECT_EQ((*retry)->retry_after_ms, 99u);

  ASSERT_TRUE(DriveToVerdicts(frontend, {&*active, &*newcomer}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(active->connection).ok());
  ASSERT_TRUE(frontend.TakeOutcome(newcomer->connection).ok());
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
}

TEST_F(FairnessTest, HardFlushFailureOnShedPathIsContained) {
  // A transport whose Flush() hard-fails on the very first call: the old
  // code propagated that error out of Accept() and poisoned the sweep; now
  // the wire is latched dead and the reaper retires the slot.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 0;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto active = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(active.ok());
  net::FaultPlan broken;
  broken.fail_flush_on_call = 1;
  auto shed = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "",
                            &broken);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(frontend.state(shed->connection), ConnectionState::kShed);

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(shed->connection), ConnectionState::kReaped);
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*active}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(active->connection).ok());
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
}

// ---- Stale queue entries under per-tenant queues ---------------------------

TEST_F(FairnessTest, StaleTenantQueueEntriesDropWithoutCorruptingGauges) {
  // Arrivals that expire while queued must vanish from the per-tenant
  // queues, the depth gauge must return to zero, and the dead entries must
  // not eat their tenant's DRR share: a fresh arrival admits immediately
  // once EPC frees.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.clock = clock.fn();
  options.admission_queue_capacity = 8;
  options.queue_deadline_ms = 50;
  options.fair_admission = true;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto active = ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "");
  ASSERT_TRUE(active.ok());
  std::vector<Result<MemoryClient>> waiters;
  waiters.push_back(
      ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1"));
  waiters.push_back(
      ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.1"));
  waiters.push_back(
      ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.2"));
  for (const auto& w : waiters) ASSERT_TRUE(w.ok());
  EXPECT_EQ(frontend.queued_count(), 3u);

  // Every waiter blows the 50ms queue deadline.
  clock.AdvanceMs(60);
  ASSERT_TRUE(frontend.PollOnce().ok());
  for (const auto& w : waiters) {
    EXPECT_EQ(frontend.state((*w).connection), ConnectionState::kTimedOut);
  }
  EXPECT_EQ(frontend.queued_count(), 0u);
  EXPECT_EQ(frontend.metrics().queue_depth, 0u);
  EXPECT_EQ(frontend.metrics().timed_out, 3u);

  // The expired flood left no deficit debt behind: a fresh arrival from a
  // third tenant queues (the active session still holds the EPC) and admits
  // on the first release.
  auto fresh =
      ConnectTenant(frontend, image(), ClientOptionsFor(qe()), "10.0.0.3");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*active}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(active->connection).ok());
  ASSERT_TRUE(PollUntilActive(frontend, fresh->connection).ok());
  ASSERT_TRUE(DriveToVerdicts(frontend, {&*fresh}).ok());
  ASSERT_TRUE(frontend.TakeOutcome(fresh->connection).ok());

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.queued_count(), 0u);
  EXPECT_EQ(frontend.metrics().queue_depth, 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.connection_count(), 0u);
}

}  // namespace
}  // namespace engarde::core
