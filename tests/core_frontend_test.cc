// The readiness-driven provisioning front end (core/frontend.h): the
// acceptance gate is that a reactor-driven run of a mixed accept/reject
// client population is bit-for-bit identical — verdicts, statistics,
// per-phase SGX attribution — to serially Drive()-ing the same exchanges
// through ProvisioningServer, while the admission controller never lets the
// committed EPC exceed its budget and the warm pool changes nothing but
// wall-clock position of the enclave build.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/frontend.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "net/transport.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 512;  // small keys keep the 64-client gate fast
constexpr size_t kPrograms = 8;

PolicySet MakePolicies() {
  PolicySet policies;
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  return policies;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& q) {
  client::ClientOptions options;
  options.attestation_key = q.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

class FrontendTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe =
        sgx::QuotingEnclave::Provision(ToBytes("frontend-device"), kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    programs_ = new std::vector<workload::BuiltProgram>();
    for (size_t i = 0; i < kPrograms; ++i) {
      workload::ProgramSpec spec;
      spec.name = "frontend-" + std::to_string(i);
      spec.seed = 7100 + i;
      spec.target_instructions = 2500;
      // Even programs carry stack protectors (compliant), odd ones violate.
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      programs_->push_back(std::move(program).value());
    }
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete programs_;
    programs_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const Bytes& image(size_t client) {
    return (*programs_)[client % kPrograms].image;
  }
  static bool compliant(size_t client) { return (client % kPrograms) % 2 == 0; }

  static EngardeOptions EnclaveOptions() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  // EPC sized for `enclaves` concurrent enclaves (layout pages + SECS) plus
  // the front end's default reserve.
  static size_t EpcPagesFor(size_t enclaves) {
    return enclaves * (EnclaveOptions().layout.TotalPages() + 1) + 64;
  }

  static sgx::QuotingEnclave* qe_;
  static std::vector<workload::BuiltProgram>* programs_;
};

sgx::QuotingEnclave* FrontendTest::qe_ = nullptr;
std::vector<workload::BuiltProgram>* FrontendTest::programs_ = nullptr;

// The invariants a provisioning exchange must keep across driving modes —
// same shape as the serial-vs-DriveAll gate in core_session_server_test.cc.
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  size_t stage_count = 0;
  uint64_t idle_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

Snapshot Snap(const ProvisionOutcome& outcome,
              const sgx::CycleAccountant& accountant) {
  Snapshot snap;
  snap.compliant = outcome.verdict.compliant;
  snap.reason = outcome.verdict.reason;
  snap.instruction_count = outcome.stats.instruction_count;
  snap.blocks_received = outcome.stats.blocks_received;
  snap.relocations_applied = outcome.stats.relocations_applied;
  snap.stage_count = outcome.stage_reports.size();
  snap.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  snap.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  snap.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  snap.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  snap.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  snap.total_sgx = accountant.total_sgx_instructions();
  snap.trampolines = accountant.total_trampolines();
  return snap;
}

void ExpectSameSnapshot(const Snapshot& serial, const Snapshot& frontend,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, frontend.compliant) << label;
  EXPECT_EQ(serial.reason, frontend.reason) << label;
  EXPECT_EQ(serial.instruction_count, frontend.instruction_count) << label;
  EXPECT_EQ(serial.blocks_received, frontend.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, frontend.relocations_applied) << label;
  EXPECT_EQ(serial.stage_count, frontend.stage_count) << label;
  EXPECT_EQ(serial.idle_sgx, frontend.idle_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, frontend.channel_sgx) << label;
  EXPECT_EQ(serial.disassembly_sgx, frontend.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, frontend.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, frontend.loading_sgx) << label;
  EXPECT_EQ(serial.total_sgx, frontend.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, frontend.trampolines) << label;
}

// Serial reference: the same client population driven one by one through
// ProvisioningServer::Drive on a fresh device.
Result<std::vector<Snapshot>> RunSerial(const sgx::QuotingEnclave& qe,
                                        const std::vector<Bytes>& images,
                                        const EngardeOptions& enclave_options,
                                        size_t epc_pages) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = enclave_options;
  ProvisioningServer server(&host, &qe, MakePolicies, options);

  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    if (index != i) return InternalError("unexpected session index");
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Snapshot> snaps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome, server.Drive(i));
    snaps.push_back(Snap(outcome, server.session_accountant(i)));
  }
  return snaps;
}

// One in-memory frontend client: the client-facing pipe plus the blocking
// client-library driver that feeds it.
struct MemoryClient {
  std::unique_ptr<crypto::DuplexPipe> pipe;  // EndA = frontend, EndB = client
  std::unique_ptr<client::Client> client;
  uint64_t connection = 0;
  bool sent = false;
  std::optional<Verdict> verdict;
};

Result<MemoryClient> ConnectMemoryClient(ProvisioningFrontend& frontend,
                                         const sgx::QuotingEnclave& /*qe*/,
                                         const Bytes& image,
                                         client::ClientOptions options) {
  MemoryClient mc;
  mc.pipe = std::make_unique<crypto::DuplexPipe>();
  mc.client = std::make_unique<client::Client>(std::move(options), image);
  ASSIGN_OR_RETURN(
      mc.connection,
      frontend.Accept(std::make_unique<net::PipeTransport>(mc.pipe->EndA())));
  return mc;
}

// Single-threaded orchestration: sweep the reactor, and whenever a client
// has its full admission preamble queued (control frame + two hello
// frames), let the blocking client consume it and send the program.
Status DriveToVerdicts(ProvisioningFrontend& frontend,
                       std::vector<MemoryClient>& clients) {
  for (;;) {
    ASSIGN_OR_RETURN(size_t progress, frontend.PollOnce());
    for (MemoryClient& mc : clients) {
      if (!mc.sent && net::HasCompleteFrames(mc.pipe->EndB(), 3)) {
        ASSIGN_OR_RETURN(const auto retry,
                         mc.client->AwaitAdmission(mc.pipe->EndB()));
        if (retry.has_value()) {
          return InternalError("unexpected RetryAfter in admission test");
        }
        RETURN_IF_ERROR(mc.client->SendProgram(mc.pipe->EndB()));
        mc.sent = true;
        ++progress;
      }
      if (mc.sent && !mc.verdict.has_value() &&
          net::HasCompleteSecureRecord(mc.pipe->EndB())) {
        ASSIGN_OR_RETURN(Verdict verdict, mc.client->AwaitVerdict());
        mc.verdict.emplace(std::move(verdict));
        ++progress;
      }
    }
    bool all_done = true;
    for (const MemoryClient& mc : clients) {
      all_done = all_done && mc.verdict.has_value();
    }
    if (all_done) return Status::Ok();
    if (progress == 0) {
      return InternalError("frontend made no progress before all verdicts");
    }
  }
}

// ---- The acceptance gate ---------------------------------------------------

TEST_F(FrontendTest, SixtyFourMixedClientsBitIdenticalToSerialDrive) {
  constexpr size_t kClients = 64;
  std::vector<Bytes> images;
  for (size_t i = 0; i < kClients; ++i) images.push_back(image(i));
  const size_t epc_pages = EpcPagesFor(kClients);

  auto serial = RunSerial(qe(), images, EnclaveOptions(), epc_pages);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->size(), kClients);

  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  std::vector<MemoryClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    auto mc =
        ConnectMemoryClient(frontend, qe(), images[i], ClientOptionsFor(qe()));
    ASSERT_TRUE(mc.ok()) << mc.status().ToString();
    ASSERT_EQ(mc->connection, i);
    ASSERT_EQ(frontend.state(i), ConnectionState::kActive);
    clients.push_back(std::move(mc).value());
  }
  const Status driven = DriveToVerdicts(frontend, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  ASSERT_EQ(frontend.done_count(), kClients);

  for (size_t i = 0; i < kClients; ++i) {
    auto outcome = frontend.TakeOutcome(i);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->verdict.compliant, compliant(i)) << i;
    // The client-side verdict decodes to the same compliance bit.
    ASSERT_TRUE(clients[i].verdict.has_value());
    EXPECT_EQ(clients[i].verdict->compliant, compliant(i)) << i;
    ExpectSameSnapshot((*serial)[i], Snap(*outcome, frontend.accountant(i)),
                       "client " + std::to_string(i));
  }
  // The reactor never overdrew its budget, and destroyed enclaves gave
  // their pages back.
  EXPECT_LE(frontend.max_committed_pages(), frontend.budget_pages());
  EXPECT_EQ(frontend.committed_pages(), 0u);
}

// ---- Admission control -----------------------------------------------------

TEST_F(FrontendTest, QueuedArrivalsAdmitInOrderWithinEpcBudget) {
  // EPC budget holds two enclaves; six arrivals. Four must wait in the
  // admission queue and be admitted FIFO as verdicts free pages.
  constexpr size_t kClients = 6;
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = kClients;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  const uint64_t per_enclave = EnclaveOptions().layout.TotalPages();
  ASSERT_GE(frontend.budget_pages(), 2 * per_enclave);
  ASSERT_LT(frontend.budget_pages(), 3 * per_enclave);

  std::vector<MemoryClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    auto mc =
        ConnectMemoryClient(frontend, qe(), image(i), ClientOptionsFor(qe()));
    ASSERT_TRUE(mc.ok()) << mc.status().ToString();
    clients.push_back(std::move(mc).value());
  }
  EXPECT_EQ(frontend.state(0), ConnectionState::kActive);
  EXPECT_EQ(frontend.state(1), ConnectionState::kActive);
  for (size_t i = 2; i < kClients; ++i) {
    EXPECT_EQ(frontend.state(i), ConnectionState::kQueued) << i;
  }
  EXPECT_EQ(frontend.queued_count(), kClients - 2);

  const Status driven = DriveToVerdicts(frontend, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  EXPECT_EQ(frontend.done_count(), kClients);
  EXPECT_EQ(frontend.shed_count(), 0u);
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i].verdict.has_value()) << i;
    EXPECT_EQ(clients[i].verdict->compliant, compliant(i)) << i;
  }
  // At no sweep did committed pages exceed the budget — the no-eviction
  // guarantee.
  EXPECT_LE(frontend.max_committed_pages(), frontend.budget_pages());
  EXPECT_EQ(frontend.committed_pages(), 0u);
}

TEST_F(FrontendTest, OverBudgetArrivalShedWithRetryAfterThenAdmittedOnRetry) {
  // Budget for one enclave, no queue: the second arrival is shed with an
  // explicit RetryAfter record; after the first verdict frees the EPC a
  // reconnect succeeds.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 0;
  options.retry_after_ms = 125;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto first =
      ConnectMemoryClient(frontend, qe(), image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(frontend.state(first->connection), ConnectionState::kActive);

  // Second arrival: shed. The client reads a well-formed RetryAfter.
  auto second =
      ConnectMemoryClient(frontend, qe(), image(1), ClientOptionsFor(qe()));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(frontend.state(second->connection), ConnectionState::kShed);
  EXPECT_EQ(frontend.shed_count(), 1u);
  auto retry = second->client->AwaitAdmission(second->pipe->EndB());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(retry->has_value());
  EXPECT_EQ((*retry)->retry_after_ms, 125u);
  EXPECT_EQ((*retry)->epc_budget_pages, frontend.budget_pages());
  EXPECT_GT((*retry)->epc_pages_in_use, 0u);
  // The shed connection's write side was closed: EOF after the record.
  EXPECT_TRUE(second->pipe->EndB().AtEof());

  // Drive the first client to its verdict; its enclave is destroyed and the
  // pages return to the budget.
  std::vector<MemoryClient> active;
  active.push_back(std::move(*first));
  const Status driven = DriveToVerdicts(frontend, active);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  EXPECT_EQ(frontend.committed_pages(), 0u);

  // The retry (a fresh connection, as the wire record instructs) admits and
  // completes.
  auto retried =
      ConnectMemoryClient(frontend, qe(), image(1), ClientOptionsFor(qe()));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(frontend.state(retried->connection), ConnectionState::kActive);
  std::vector<MemoryClient> retried_vec;
  retried_vec.push_back(std::move(*retried));
  const Status redriven = DriveToVerdicts(frontend, retried_vec);
  ASSERT_TRUE(redriven.ok()) << redriven.ToString();
  ASSERT_TRUE(retried_vec[0].verdict.has_value());
  EXPECT_EQ(retried_vec[0].verdict->compliant, compliant(1));
  EXPECT_LE(frontend.max_committed_pages(), frontend.budget_pages());
}

// ---- Warm pool -------------------------------------------------------------

TEST_F(FrontendTest, PooledEnclaveAttestsUnderPinnedMeasurement) {
  // A warm-pool enclave must attest exactly like a cold-built one: the
  // client pins the expected EnGarde measurement (no skip) and verifies the
  // quote before sending anything confidential.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  ASSERT_TRUE(frontend.PrefillPool(1).ok());
  EXPECT_EQ(frontend.pool().size(), 1u);

  auto expected = EngardeEnclave::ExpectedMeasurement(MakePolicies(),
                                                      EnclaveOptions());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  client::ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.expected_measurement = *expected;
  client_options.skip_measurement_check = false;

  auto mc = ConnectMemoryClient(frontend, qe(), image(0), client_options);
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_TRUE(frontend.served_from_pool(mc->connection));
  EXPECT_EQ(frontend.pool().size(), 0u);
  EXPECT_EQ(frontend.pool().total_handouts(), 1u);

  std::vector<MemoryClient> clients;
  clients.push_back(std::move(mc).value());
  const Status driven = DriveToVerdicts(frontend, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  ASSERT_TRUE(clients[0].verdict.has_value());
  EXPECT_TRUE(clients[0].verdict->compliant);
}

TEST_F(FrontendTest, WarmAndColdRunsBitIdenticalAcrossAcceptAndReject) {
  // One compliant and one violating program, provisioned twice: once
  // through a prefilled pool, once cold. Verdicts, stats and per-phase SGX
  // attribution must match exactly — pooling only moves the build earlier.
  const std::vector<Bytes> images = {image(0), image(1)};  // accept, reject
  const size_t epc_pages = EpcPagesFor(images.size());

  auto run = [&](size_t prefill) -> Result<std::vector<Snapshot>> {
    sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
    sgx::HostOs host(&device);
    FrontendOptions options;
    options.enclave_options = EnclaveOptions();
    ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
    RETURN_IF_ERROR(frontend.PrefillPool(prefill));
    std::vector<MemoryClient> clients;
    for (const Bytes& img : images) {
      ASSIGN_OR_RETURN(MemoryClient mc,
                       ConnectMemoryClient(frontend, qe(), img,
                                           ClientOptionsFor(qe())));
      const bool pooled = frontend.served_from_pool(mc.connection);
      if (pooled != (mc.connection < prefill)) {
        return InternalError("unexpected pool handout pattern");
      }
      clients.push_back(std::move(mc));
    }
    RETURN_IF_ERROR(DriveToVerdicts(frontend, clients));
    std::vector<Snapshot> snaps;
    for (size_t i = 0; i < images.size(); ++i) {
      ASSIGN_OR_RETURN(const ProvisionOutcome outcome, frontend.TakeOutcome(i));
      snaps.push_back(Snap(outcome, frontend.accountant(i)));
    }
    return snaps;
  };

  auto cold = run(0);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = run(images.size());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(cold->size(), warm->size());
  EXPECT_TRUE((*cold)[0].compliant);
  EXPECT_FALSE((*cold)[1].compliant);
  for (size_t i = 0; i < cold->size(); ++i) {
    ExpectSameSnapshot((*cold)[i], (*warm)[i],
                       "warm vs cold client " + std::to_string(i));
  }
}

TEST_F(FrontendTest, StalePoolFingerprintFallsBackToColdBuild) {
  // If the policy set changes after prefill, the shelved enclave's
  // fingerprint no longer matches and admission must build cold rather than
  // hand out an enclave measured against the old policies.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(3)});
  sgx::HostOs host(&device);
  bool renegotiated = false;  // toggled after prefill
  auto factory = [&renegotiated] {
    StackProtectionPolicy::Options policy_options;
    if (renegotiated) policy_options.exempt.insert("lib_entry");
    PolicySet policies;
    policies.push_back(
        std::make_unique<StackProtectionPolicy>(policy_options));
    return policies;
  };
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), factory, options);
  ASSERT_TRUE(frontend.PrefillPool(1).ok());
  renegotiated = true;

  auto mc = ConnectMemoryClient(frontend, qe(), image(0),
                                ClientOptionsFor(qe()));
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_FALSE(frontend.served_from_pool(mc->connection));
  EXPECT_EQ(frontend.pool().size(), 1u);  // stale entry left shelved
}

// ---- Failure paths ---------------------------------------------------------

TEST_F(FrontendTest, PeerClosingMidExchangeFailsTheConnection) {
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto mc =
      ConnectMemoryClient(frontend, qe(), image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  // The client walks away after the admission preamble without sending its
  // program: half-close the client's write side.
  mc->pipe->EndB().CloseWrite();
  // One sweep turns the connection terminal; the failure stays observable
  // until the reaper's next pass retires the slot.
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(mc->connection), ConnectionState::kFailed);
  const Status failure = frontend.connection_status(mc->connection);
  EXPECT_EQ(failure.code(), StatusCode::kProtocolError);
  // The failed connection released its EPC pages.
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_FALSE(frontend.TakeOutcome(mc->connection).ok());
  // Draining lets the reaper retire the slot: the id goes stale and the
  // table holds nothing for it anymore.
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(mc->connection), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_status(mc->connection).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(frontend.reaped_count(), 1u);
  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.reaped, 1u);
  EXPECT_EQ(metrics.live_connections, 0u);
}

}  // namespace
}  // namespace engarde::core
