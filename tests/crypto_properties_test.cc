// Cross-cutting property tests for the crypto substrate: algebraic
// invariants, domain separation, and keystream hygiene that the
// vector-based unit suites do not cover.
#include <gtest/gtest.h>

#include <set>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/bigint.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace engarde::crypto {
namespace {

TEST(Sha256Properties, ConcatenationViaUpdateEqualsJoinedMessage) {
  engarde::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes a = rng.NextBytes(rng.NextBelow(200));
    const Bytes b = rng.NextBytes(rng.NextBelow(200));
    Bytes joined = a;
    AppendBytes(joined, ByteView(b.data(), b.size()));
    Sha256 h;
    h.Update(a);
    h.Update(b);
    EXPECT_EQ(h.Finalize(), Sha256::Hash(joined));
  }
}

TEST(Sha256Properties, PrefixFreedom) {
  // hash(m) never equals hash(m || suffix) for any sampled m: no trivial
  // length-extension collision inside the digest itself.
  engarde::Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes m = rng.NextBytes(rng.NextInRange(1, 120));
    const Sha256Digest d = Sha256::Hash(m);
    m.push_back(0x00);
    EXPECT_NE(Sha256::Hash(m), d);
  }
}

TEST(HmacProperties, KeyLengthSweepAllDistinct) {
  // Keys of every length from 0 to 2 blocks produce distinct tags for the
  // same message (exercises the hash-long-keys path and padding).
  const Bytes msg = ToBytes("constant message");
  std::set<std::string> tags;
  for (size_t len = 0; len <= 2 * Sha256::kBlockSize; ++len) {
    const Bytes key(len, 0x42);
    tags.insert(HexEncode(DigestView(HmacSha256::Mac(key, msg))));
  }
  EXPECT_EQ(tags.size(), 2 * Sha256::kBlockSize + 1);
}

TEST(HmacProperties, DomainSeparationFromPlainHash) {
  const Bytes key = ToBytes("k");
  const Bytes msg = ToBytes("m");
  EXPECT_NE(HmacSha256::Mac(key, msg), Sha256::Hash(msg));
}

TEST(AesProperties, KeystreamBlocksNeverRepeatAcrossCounters) {
  Aes256Key key{};
  key[0] = 9;
  AesCtr ctr(key, {});
  std::set<std::string> blocks;
  Bytes zeros(16, 0);
  for (uint64_t block = 0; block < 512; ++block) {
    const Bytes ks = ctr.Crypt(block * 16, ByteView(zeros.data(), 16));
    EXPECT_TRUE(blocks.insert(HexEncode(ByteView(ks.data(), 16))).second)
        << "keystream repeat at block " << block;
  }
}

TEST(AesProperties, SingleBitKeyChangeDiffusesEverywhere) {
  Aes256Key k1{}, k2{};
  k2[31] ^= 0x01;
  uint8_t pt[16] = {}, c1[16], c2[16];
  Aes256(k1).EncryptBlock(pt, c1);
  Aes256(k2).EncryptBlock(pt, c2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (c1[i] != c2[i]) ++differing;
  }
  EXPECT_GE(differing, 8);  // avalanche
}

TEST(BigIntProperties, MulDivRoundTripRandomized) {
  engarde::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes a_raw = rng.NextBytes(rng.NextInRange(1, 40));
    const Bytes b_raw = rng.NextBytes(rng.NextInRange(1, 24));
    const BigInt a = BigInt::FromBytes(ByteView(a_raw.data(), a_raw.size()));
    BigInt b = BigInt::FromBytes(ByteView(b_raw.data(), b_raw.size()));
    if (b.IsZero()) b = BigInt::FromU64(3);
    // (a*b) / b == a exactly.
    BigInt q, r;
    BigInt::DivMod(BigInt::Mul(a, b), b, q, r);
    EXPECT_TRUE(r.IsZero());
    EXPECT_EQ(q, a);
  }
}

TEST(BigIntProperties, ShiftEqualsMulByPowerOfTwo) {
  engarde::Rng rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes raw = rng.NextBytes(rng.NextInRange(1, 32));
    const BigInt v = BigInt::FromBytes(ByteView(raw.data(), raw.size()));
    const size_t shift = rng.NextInRange(0, 70);
    const BigInt pow2 = BigInt::FromU64(1).ShiftLeft(shift);
    EXPECT_EQ(v.ShiftLeft(shift), BigInt::Mul(v, pow2));
  }
}

TEST(BigIntProperties, ModExpMultiplicative) {
  // (a*b)^e mod m == (a^e * b^e) mod m for random small cases.
  engarde::Rng rng(79);
  const BigInt m = *BigInt::FromHex("fffffffb");  // prime
  const BigInt e = BigInt::FromU64(65537);
  for (int trial = 0; trial < 25; ++trial) {
    const BigInt a = BigInt::FromU64(rng.NextInRange(2, 1u << 30));
    const BigInt b = BigInt::FromU64(rng.NextInRange(2, 1u << 30));
    const BigInt lhs = BigInt::ModExp(BigInt::Mul(a, b), e, m);
    const BigInt rhs = BigInt::Mod(
        BigInt::Mul(BigInt::ModExp(a, e, m), BigInt::ModExp(b, e, m)), m);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigIntProperties, FermatLittleTheoremOnLargePrime) {
  // a^(p-1) == 1 mod p for 2^127-1 and random bases.
  const BigInt p = *BigInt::FromHex("7fffffffffffffffffffffffffffffff");
  const BigInt p1 = BigInt::Sub(p, BigInt::FromU64(1));
  engarde::Rng rng(80);
  for (int trial = 0; trial < 5; ++trial) {
    const BigInt a = BigInt::FromU64(rng.NextInRange(2, ~0ull - 1));
    EXPECT_EQ(BigInt::ModExp(a, p1, p), BigInt::FromU64(1));
  }
}

TEST(RsaProperties, SignaturesAreDeterministicPerKey) {
  HmacDrbg drbg(ToBytes("det"));
  auto pair = RsaGenerateKey(512, drbg);
  ASSERT_TRUE(pair.ok());
  const Bytes msg = ToBytes("deterministic");
  auto s1 = RsaSign(pair->private_key, msg);
  auto s2 = RsaSign(pair->private_key, msg);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, *s2);  // PKCS#1 v1.5 type-1 padding is deterministic
}

TEST(RsaProperties, EncryptThenDecryptForAllKeySizes) {
  for (const size_t bits : {512ul, 768ul, 1024ul}) {
    HmacDrbg drbg(ToBytes("sz" + std::to_string(bits)));
    auto pair = RsaGenerateKey(bits, drbg);
    ASSERT_TRUE(pair.ok()) << bits;
    const Bytes key = drbg.Generate(32);
    auto ct = RsaEncrypt(pair->public_key, key, drbg);
    ASSERT_TRUE(ct.ok()) << bits;
    auto pt = RsaDecrypt(pair->private_key, *ct);
    ASSERT_TRUE(pt.ok()) << bits;
    EXPECT_EQ(*pt, key) << bits;
  }
}

TEST(DrbgProperties, StreamsFromRelatedSeedsDiverge) {
  // Seeds differing by one bit produce unrelated streams.
  Bytes seed1 = ToBytes("related-seed");
  Bytes seed2 = seed1;
  seed2.back() ^= 0x01;
  HmacDrbg d1(ByteView(seed1.data(), seed1.size()));
  HmacDrbg d2(ByteView(seed2.data(), seed2.size()));
  const Bytes s1 = d1.Generate(64);
  const Bytes s2 = d2.Generate(64);
  int differing = 0;
  for (size_t i = 0; i < 64; ++i) {
    if (s1[i] != s2[i]) ++differing;
  }
  EXPECT_GE(differing, 32);
}

TEST(PrimalityProperties, ProductsOfGeneratedPrimesAreComposite) {
  HmacDrbg drbg(ToBytes("pp"));
  auto pair = RsaGenerateKey(512, drbg);
  ASSERT_TRUE(pair.ok());
  EXPECT_TRUE(IsProbablePrime(pair->private_key.p, drbg));
  EXPECT_TRUE(IsProbablePrime(pair->private_key.q, drbg));
  EXPECT_FALSE(IsProbablePrime(pair->public_key.n, drbg));
}

}  // namespace
}  // namespace engarde::crypto
