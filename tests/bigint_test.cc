#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace engarde::crypto {
namespace {

BigInt RandomBigInt(engarde::Rng& rng, size_t max_bytes) {
  const size_t n = rng.NextInRange(0, max_bytes);
  const Bytes bytes = rng.NextBytes(n);
  return BigInt::FromBytes(ByteView(bytes.data(), bytes.size()));
}

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(zero.IsOdd());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToU64(), 0u);
  EXPECT_EQ(zero.ToHex(), "0");
}

TEST(BigIntTest, FromU64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 255ull, 1ull << 31, 1ull << 32,
                     0xffffffffffffffffull}) {
    EXPECT_EQ(BigInt::FromU64(v).ToU64(), v);
  }
}

TEST(BigIntTest, FromBytesIgnoresLeadingZeros) {
  const Bytes a = {0x00, 0x00, 0x01, 0x02};
  const Bytes b = {0x01, 0x02};
  EXPECT_EQ(BigInt::FromBytes(a), BigInt::FromBytes(b));
  EXPECT_EQ(BigInt::FromBytes(a).ToU64(), 0x0102u);
}

TEST(BigIntTest, ToBytesPadsToMinSize) {
  const BigInt v = BigInt::FromU64(0xabcd);
  const Bytes padded = v.ToBytes(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[6], 0xab);
  EXPECT_EQ(padded[7], 0xcd);
  EXPECT_EQ(padded[0], 0x00);
}

TEST(BigIntTest, HexRoundTrip) {
  auto v = BigInt::FromHex("deadbeefcafebabe0123456789");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "deadbeefcafebabe0123456789");
  // Odd-length hex gets an implicit leading zero.
  auto w = BigInt::FromHex("f00");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->ToU64(), 0xf00u);
}

TEST(BigIntTest, CompareOrdering) {
  const BigInt a = BigInt::FromU64(100);
  const BigInt b = BigInt::FromU64(200);
  const BigInt c = *BigInt::FromHex("10000000000000000");  // 2^64
  EXPECT_LT(BigInt::Compare(a, b), 0);
  EXPECT_GT(BigInt::Compare(b, a), 0);
  EXPECT_EQ(BigInt::Compare(a, a), 0);
  EXPECT_LT(BigInt::Compare(b, c), 0);
}

TEST(BigIntTest, AddCarriesAcrossLimbs) {
  const BigInt max32 = BigInt::FromU64(0xffffffff);
  EXPECT_EQ(BigInt::Add(max32, BigInt::FromU64(1)).ToU64(), 0x100000000ull);
  const BigInt big = *BigInt::FromHex("ffffffffffffffffffffffff");
  EXPECT_EQ(BigInt::Add(big, BigInt::FromU64(1)).ToHex(),
            "1000000000000000000000000");
}

TEST(BigIntTest, SubBorrowsAcrossLimbs) {
  const BigInt big = *BigInt::FromHex("1000000000000000000000000");
  EXPECT_EQ(BigInt::Sub(big, BigInt::FromU64(1)).ToHex(),
            "ffffffffffffffffffffffff");
  EXPECT_TRUE(BigInt::Sub(big, big).IsZero());
}

TEST(BigIntTest, MulSmall) {
  EXPECT_EQ(BigInt::Mul(BigInt::FromU64(7), BigInt::FromU64(6)).ToU64(), 42u);
  EXPECT_TRUE(BigInt::Mul(BigInt(), BigInt::FromU64(5)).IsZero());
}

TEST(BigIntTest, MulKnownWide) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const BigInt v = BigInt::FromU64(0xffffffffffffffffull);
  EXPECT_EQ(BigInt::Mul(v, v).ToHex(), "fffffffffffffffe0000000000000001");
}

TEST(BigIntTest, ShiftLeftRightInverse) {
  const BigInt v = *BigInt::FromHex("123456789abcdef0fedcba9876543210");
  for (size_t s : {0u, 1u, 31u, 32u, 33u, 100u}) {
    EXPECT_EQ(v.ShiftLeft(s).ShiftRight(s), v) << "shift=" << s;
  }
  EXPECT_TRUE(v.ShiftRight(v.BitLength()).IsZero());
}

TEST(BigIntTest, GetBitMatchesShift) {
  const BigInt v = *BigInt::FromHex("8000000000000001");
  EXPECT_TRUE(v.GetBit(0));
  EXPECT_TRUE(v.GetBit(63));
  EXPECT_FALSE(v.GetBit(1));
  EXPECT_FALSE(v.GetBit(64));
}

TEST(BigIntTest, DivModSmall) {
  BigInt q, r;
  BigInt::DivMod(BigInt::FromU64(100), BigInt::FromU64(7), q, r);
  EXPECT_EQ(q.ToU64(), 14u);
  EXPECT_EQ(r.ToU64(), 2u);
}

TEST(BigIntTest, DivModDividendSmallerThanDivisor) {
  BigInt q, r;
  BigInt::DivMod(BigInt::FromU64(3), BigInt::FromU64(7), q, r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r.ToU64(), 3u);
}

TEST(BigIntTest, DivModExactDivision) {
  const BigInt a = *BigInt::FromHex("100000000000000000000");
  BigInt q, r;
  BigInt::DivMod(a, BigInt::FromU64(16), q, r);
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(q.ToHex(), "10000000000000000000");
}

// Property: for random a, b != 0 — a == q*b + r and r < b. This exercises the
// Knuth-D add-back path statistically.
TEST(BigIntTest, DivModInvariantRandomized) {
  engarde::Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    const BigInt a = RandomBigInt(rng, 64);
    BigInt b = RandomBigInt(rng, 32);
    if (b.IsZero()) b = BigInt::FromU64(1);
    BigInt q, r;
    BigInt::DivMod(a, b, q, r);
    EXPECT_LT(BigInt::Compare(r, b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  }
}

// Targeted Knuth-D stress: divisors with a top limb of 0x80000000 and
// dividends full of 0xff bytes hit the qhat-correction branches.
TEST(BigIntTest, DivModQhatCorrectionCases) {
  const BigInt a = *BigInt::FromHex("ffffffffffffffffffffffffffffffff");
  const BigInt b = *BigInt::FromHex("80000000ffffffff");
  BigInt q, r;
  BigInt::DivMod(a, b, q, r);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  EXPECT_LT(BigInt::Compare(r, b), 0);

  const BigInt c = *BigInt::FromHex("7fffffff800000010000000000000000");
  const BigInt d = *BigInt::FromHex("800000008000000000000001");
  BigInt q2, r2;
  BigInt::DivMod(c, d, q2, r2);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q2, d), r2), c);
  EXPECT_LT(BigInt::Compare(r2, d), 0);
}

TEST(BigIntTest, AddSubRoundTripRandomized) {
  engarde::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const BigInt a = RandomBigInt(rng, 48);
    const BigInt b = RandomBigInt(rng, 48);
    const BigInt sum = BigInt::Add(a, b);
    EXPECT_EQ(BigInt::Sub(sum, b), a);
    EXPECT_EQ(BigInt::Sub(sum, a), b);
  }
}

TEST(BigIntTest, MulCommutesAndDistributesRandomized) {
  engarde::Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = RandomBigInt(rng, 24);
    const BigInt b = RandomBigInt(rng, 24);
    const BigInt c = RandomBigInt(rng, 24);
    EXPECT_EQ(BigInt::Mul(a, b), BigInt::Mul(b, a));
    EXPECT_EQ(BigInt::Mul(a, BigInt::Add(b, c)),
              BigInt::Add(BigInt::Mul(a, b), BigInt::Mul(a, c)));
  }
}

TEST(BigIntTest, ModExpSmallKnownValues) {
  // 3^7 mod 10 = 2187 mod 10 = 7
  EXPECT_EQ(BigInt::ModExp(BigInt::FromU64(3), BigInt::FromU64(7),
                           BigInt::FromU64(10))
                .ToU64(),
            7u);
  // x^0 = 1
  EXPECT_EQ(BigInt::ModExp(BigInt::FromU64(5), BigInt(), BigInt::FromU64(7))
                .ToU64(),
            1u);
  // Fermat: 2^(p-1) mod p == 1 for prime p
  const BigInt p = BigInt::FromU64(1000000007);
  EXPECT_EQ(BigInt::ModExp(BigInt::FromU64(2),
                           BigInt::Sub(p, BigInt::FromU64(1)), p)
                .ToU64(),
            1u);
}

TEST(BigIntTest, ModExpMatchesNaiveRandomized) {
  engarde::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const uint64_t base = rng.NextInRange(0, 1000);
    const uint64_t exp = rng.NextInRange(0, 20);
    const uint64_t mod = rng.NextInRange(2, 10000);
    // Naive computation with overflow-safe u64 math (mod < 2^14 keeps
    // products < 2^28).
    uint64_t expect = 1 % mod;
    for (uint64_t k = 0; k < exp; ++k) expect = (expect * (base % mod)) % mod;
    EXPECT_EQ(BigInt::ModExp(BigInt::FromU64(base), BigInt::FromU64(exp),
                             BigInt::FromU64(mod))
                  .ToU64(),
              expect);
  }
}

TEST(BigIntTest, GcdKnownValues) {
  EXPECT_EQ(BigInt::Gcd(BigInt::FromU64(48), BigInt::FromU64(18)).ToU64(), 6u);
  EXPECT_EQ(BigInt::Gcd(BigInt::FromU64(17), BigInt::FromU64(5)).ToU64(), 1u);
  EXPECT_EQ(BigInt::Gcd(BigInt::FromU64(0), BigInt::FromU64(5)).ToU64(), 5u);
}

TEST(BigIntTest, ModInverseKnownValues) {
  // 3 * 7 = 21 == 1 mod 10
  auto inv = BigInt::ModInverse(BigInt::FromU64(3), BigInt::FromU64(10));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv->ToU64(), 7u);
  // Not coprime -> error
  EXPECT_FALSE(BigInt::ModInverse(BigInt::FromU64(4), BigInt::FromU64(8)).ok());
}

TEST(BigIntTest, ModInverseRandomized) {
  engarde::Rng rng(31337);
  const BigInt m = *BigInt::FromHex("fffffffb");  // prime 2^32-5
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::FromU64(rng.NextInRange(1, 0xfffffffa));
    auto inv = BigInt::ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(BigInt::Mod(BigInt::Mul(a, *inv), m).ToU64(), 1u);
  }
}

TEST(BigIntTest, ModInverseLargeModulus) {
  const BigInt m = *BigInt::FromHex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff61");
  const BigInt a = *BigInt::FromHex("123456789abcdef0123456789abcdef");
  auto inv = BigInt::ModInverse(a, m);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(BigInt::Mod(BigInt::Mul(a, *inv), m), BigInt::FromU64(1));
}

}  // namespace
}  // namespace engarde::crypto
