// Edge-case coverage for the ELF substrate: geometry corruption, symbol
// table corner cases, multi-section layouts, and reader/builder agreement on
// addresses.
#include <gtest/gtest.h>

#include "elf/builder.h"
#include "elf/reader.h"

namespace engarde::elf {
namespace {

Bytes BasicImage() {
  ElfBuilder b;
  const uint64_t tv = b.AddTextSection(".text", Bytes(64, 0x90));
  b.AddSymbol("f", tv, 64, kSttFunc);
  auto image = b.Build();
  EXPECT_TRUE(image.ok());
  return *image;
}

TEST(ElfEdgeTest, ManyTextSections) {
  ElfBuilder b;
  std::vector<uint64_t> vaddrs;
  for (int i = 0; i < 12; ++i) {
    vaddrs.push_back(
        b.AddTextSection(".text." + std::to_string(i), Bytes(40 + i, 0x90)));
  }
  b.AddSymbol("f", vaddrs[0], 40, kSttFunc);
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const auto texts = file->TextSections();
  ASSERT_EQ(texts.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(texts[i]->addr, vaddrs[i]) << i;
    EXPECT_EQ(texts[i]->size, 40u + i) << i;
    EXPECT_EQ(texts[i]->addr % 32, 0u);  // bundle-aligned
  }
}

TEST(ElfEdgeTest, ManyDataSectionsAndSymbols) {
  ElfBuilder b;
  const uint64_t tv = b.AddTextSection(".text", Bytes(32, 0x90));
  b.AddSymbol("f", tv, 32, kSttFunc);
  for (int i = 0; i < 8; ++i) {
    const uint64_t dv =
        b.AddDataSection(".data." + std::to_string(i), Bytes(24 + i, 1));
    b.AddSymbol("obj_" + std::to_string(i), dv, 24 + i, kSttObject);
  }
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  // 1 null + 1 func + 8 objects.
  EXPECT_EQ(file->symbols().size(), 10u);
  // All object symbols resolve to distinct addresses inside data sections.
  std::set<uint64_t> addrs;
  for (const Sym& s : file->symbols()) {
    if (SymType(s.info) == kSttObject) addrs.insert(s.value);
  }
  EXPECT_EQ(addrs.size(), 8u);
}

TEST(ElfEdgeTest, HundredsOfSymbols) {
  ElfBuilder b;
  const uint64_t tv = b.AddTextSection(".text", Bytes(4096, 0x90));
  for (int i = 0; i < 500; ++i) {
    b.AddSymbol("fn_" + std::to_string(i), tv + i * 8, 8, kSttFunc);
  }
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->symbols().size(), 501u);
  // Spot-check resolution both ways.
  bool found = false;
  for (const Sym& s : file->symbols()) {
    if (s.name == "fn_250") {
      EXPECT_EQ(s.value, tv + 250 * 8);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ElfEdgeTest, ManyRelocations) {
  ElfBuilder b;
  const uint64_t tv = b.AddTextSection(".text", Bytes(32, 0x90));
  b.AddSymbol("f", tv, 32, kSttFunc);
  const uint64_t dv = b.AddDataSection(".data", Bytes(8 * 200, 0));
  for (int i = 0; i < 200; ++i) {
    b.AddRelativeRelocation(dv + i * 8, static_cast<int64_t>(tv + i));
  }
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->relocations().size(), 200u);
  EXPECT_EQ(*file->DynamicValue(kDtRelasz), 200u * kRelaSize);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(file->relocations()[i].offset, dv + i * 8);
    EXPECT_EQ(file->relocations()[i].addend, static_cast<int64_t>(tv + i));
  }
}

TEST(ElfEdgeTest, CorruptSymtabGeometryRejected) {
  Bytes image = BasicImage();
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok());
  // Find .symtab's header and corrupt sh_entsize.
  const Shdr* symtab = file->SectionByName(".symtab");
  ASSERT_NE(symtab, nullptr);
  const uint64_t shoff = LoadLe64(image.data() + 40);
  const uint16_t shnum = LoadLe16(image.data() + 60);
  for (uint16_t i = 0; i < shnum; ++i) {
    uint8_t* p = image.data() + shoff + i * kShdrSize;
    if (LoadLe32(p + 4) == kShtSymtab) {
      StoreLe64(p + 56, 23);  // bogus entsize
    }
  }
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfEdgeTest, CorruptRelaGeometryRejected) {
  Bytes image = BasicImage();
  const uint64_t shoff = LoadLe64(image.data() + 40);
  const uint16_t shnum = LoadLe16(image.data() + 60);
  for (uint16_t i = 0; i < shnum; ++i) {
    uint8_t* p = image.data() + shoff + i * kShdrSize;
    if (LoadLe32(p + 4) == kShtRela) {
      StoreLe64(p + 32, 7);  // size not a multiple of entsize
    }
  }
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfEdgeTest, SymtabWithBrokenStrtabLinkRejected) {
  Bytes image = BasicImage();
  const uint64_t shoff = LoadLe64(image.data() + 40);
  const uint16_t shnum = LoadLe16(image.data() + 60);
  for (uint16_t i = 0; i < shnum; ++i) {
    uint8_t* p = image.data() + shoff + i * kShdrSize;
    if (LoadLe32(p + 4) == kShtSymtab) {
      StoreLe32(p + 40, 0xffff);  // sh_link out of range
    }
  }
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfEdgeTest, UnterminatedStringTableRejected) {
  Bytes image = BasicImage();
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok());
  const Shdr* strtab = file->SectionByName(".strtab");
  ASSERT_NE(strtab, nullptr);
  // Symbol name offsets point into .strtab; shrink the table so the name at
  // its end loses the terminator.
  const uint64_t shoff = LoadLe64(image.data() + 40);
  const uint16_t shnum = LoadLe16(image.data() + 60);
  const uint16_t shstrndx = LoadLe16(image.data() + 62);
  for (uint16_t i = 0; i < shnum; ++i) {
    if (i == shstrndx) continue;
    uint8_t* p = image.data() + shoff + i * kShdrSize;
    if (LoadLe32(p + 4) == kShtStrtab) {
      const uint64_t size = LoadLe64(p + 32);
      StoreLe64(p + 32, size - 1);
    }
  }
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfEdgeTest, SectionContentOffsetsEqualVaddrs) {
  // The builder's offset==vaddr convention, which the loader and the
  // policy tests rely on, holds for every allocated progbits section.
  ElfBuilder b;
  b.AddTextSection(".text", Bytes(100, 0x90));
  b.AddTextSection(".text.libc", Bytes(50, 0x90));
  b.AddDataSection(".data", Bytes(30, 2));
  b.AddSymbol("f", 0x1000, 100, kSttFunc);
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  for (const Shdr& s : file->sections()) {
    if (s.type != kShtProgbits || !(s.flags & kShfAlloc)) continue;
    EXPECT_EQ(s.offset, s.addr) << s.name;
  }
}

TEST(ElfEdgeTest, EmptyDataSectionAllowed) {
  ElfBuilder b;
  const uint64_t tv = b.AddTextSection(".text", Bytes(32, 0x90));
  b.AddSymbol("f", tv, 32, kSttFunc);
  b.AddDataSection(".data", {});
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->ValidateForEnclave().ok());
}

TEST(ElfEdgeTest, LargeBssOnly) {
  ElfBuilder b;
  const uint64_t tv = b.AddTextSection(".text", Bytes(32, 0x90));
  b.AddSymbol("f", tv, 32, kSttFunc);
  const uint64_t bss = b.AddBss(1 << 20);
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  // A 1 MiB bss costs no file bytes beyond headers/tables/padding.
  EXPECT_LT(image->size(), static_cast<size_t>(16384));
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const Shdr* bss_sec = file->SectionByName(".bss");
  ASSERT_NE(bss_sec, nullptr);
  EXPECT_EQ(bss_sec->addr, bss);
  EXPECT_EQ(bss_sec->size, 1u << 20);
}

}  // namespace
}  // namespace engarde::elf
