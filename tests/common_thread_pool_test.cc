// Unit tests for the deterministic fork-join pool behind the parallel
// inspection engine: static partitioning (coverage, contiguity, order),
// serial fallback, exception propagation (lowest chunk wins — the serial
// answer), and reuse across many ParallelFor calls.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace engarde::common {
namespace {

// Records every (begin, end) chunk a ParallelFor produced, thread-safely.
struct ChunkLog {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;

  void Record(size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  }
  // Chunks sorted by begin must tile [begin, end) exactly.
  void ExpectTiles(size_t begin, size_t end) {
    std::sort(chunks.begin(), chunks.end());
    size_t cursor = begin;
    for (const auto& [b, e] : chunks) {
      EXPECT_EQ(b, cursor);
      EXPECT_LT(b, e);
      cursor = e;
    }
    EXPECT_EQ(cursor, end);
  }
};

TEST(ThreadPoolTest, ThreadCountIncludesCaller) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4u);
  // threads = 0 degrades to the serial pool, same as 1.
  EXPECT_EQ(ThreadPool(0).thread_count(), 1u);
}

TEST(ThreadPoolTest, ChunksTileTheRangeExactly) {
  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (const size_t items : {1u, 7u, 64u, 1000u}) {
      ChunkLog log;
      pool.ParallelFor(10, 10 + items, /*grain=*/1,
                       [&](size_t b, size_t e) { log.Record(b, e); });
      log.ExpectTiles(10, 10 + items);
      EXPECT_LE(log.chunks.size(), threads == 0 ? 1u : threads);
    }
  }
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(8);
  constexpr size_t kItems = 5000;
  std::vector<std::atomic<int>> visits(kItems);
  pool.ParallelFor(0, kItems, /*grain=*/64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, GrainBoundsChunkCount) {
  ThreadPool pool(8);
  // 100 items at grain 40 allow at most ceil(100/40) = 3 chunks even though
  // 8 threads are available.
  ChunkLog log;
  pool.ParallelFor(0, 100, /*grain=*/40,
                   [&](size_t b, size_t e) { log.Record(b, e); });
  log.ExpectTiles(0, 100);
  EXPECT_LE(log.chunks.size(), 3u);
}

TEST(ThreadPoolTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  pool.ParallelFor(0, 1000, 1, [&](size_t b, size_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1000u);
    ++calls;  // safe: single chunk, caller thread
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](size_t, size_t) {
                         throw std::runtime_error("shard failed");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  ThreadPool pool(4);
  // Every chunk throws its own begin index; the serial loop would have
  // surfaced the range's first error, so ParallelFor must rethrow the one
  // from the lowest-indexed chunk — begin == 0.
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      pool.ParallelFor(0, 400, 1, [](size_t b, size_t) {
        throw std::runtime_error("chunk@" + std::to_string(b));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& err) {
      EXPECT_STREQ(err.what(), "chunk@0");
    }
  }
}

TEST(ThreadPoolTest, ReusableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](size_t, size_t) {
                                  throw std::runtime_error("once");
                                }),
               std::runtime_error);
  // The pool is fully reusable: the next scan sees a clean error slate.
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
    size_t local = 0;
    for (size_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ManyBackToBackScans) {
  ThreadPool pool(8);
  for (int scan = 0; scan < 200; ++scan) {
    std::atomic<size_t> count{0};
    pool.ParallelFor(0, 97, 1, [&](size_t b, size_t e) {
      count.fetch_add(e - b);
    });
    ASSERT_EQ(count.load(), 97u) << "scan " << scan;
  }
}

}  // namespace
}  // namespace engarde::common
