// Broad-coverage decoder properties: byte-structure invariants over every
// instruction the generator can emit, golden decodes across the supported
// opcode map, register naming, and renderer smoke checks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hex.h"
#include "common/rng.h"
#include "workload/program_builder.h"
#include "x86/decoder.h"
#include "x86/encoder.h"

namespace engarde::x86 {
namespace {

// ---- Structural invariants over a large generated corpus --------------------

class CorpusInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusInvariants, ByteStructureSumsToLength) {
  workload::ProgramSpec spec;
  spec.seed = GetParam();
  spec.target_instructions = 4000;
  spec.stack_protection = (GetParam() % 2) == 0;
  spec.ifcc = (GetParam() % 3) == 0;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  auto elf = elf::ElfFile::Parse(
      ByteView(program->image.data(), program->image.size()));
  ASSERT_TRUE(elf.ok());

  size_t total = 0;
  std::set<Mnemonic> seen;
  for (const elf::Shdr* section : elf->TextSections()) {
    auto content = elf->SectionContent(*section);
    ASSERT_TRUE(content.ok());
    auto insns = DecodeAll(*content, section->addr);
    ASSERT_TRUE(insns.ok());
    uint64_t expected_addr = section->addr;
    for (const Insn& insn : *insns) {
      // Addresses tile the section exactly.
      EXPECT_EQ(insn.addr, expected_addr);
      expected_addr += insn.length;
      // Component lengths account for every byte.
      EXPECT_EQ(insn.prefix_len + insn.opcode_len + insn.modrm_len +
                    insn.sib_len + insn.disp_len + insn.imm_len,
                insn.length)
          << insn.ToString();
      // Architectural bounds.
      EXPECT_GE(insn.length, 1);
      EXPECT_LE(insn.length, kMaxInsnLength);
      EXPECT_NE(insn.mnemonic, Mnemonic::kUnknown) << insn.ToString();
      // NaCl bundle discipline.
      EXPECT_LE(insn.addr % 32 + insn.length, 32u) << insn.ToString();
      seen.insert(insn.mnemonic);
      ++total;
    }
    EXPECT_EQ(expected_addr, section->addr + section->size);
  }
  EXPECT_EQ(total, program->emitted_insn_count);
  // The corpus exercises a meaningful slice of the instruction set.
  EXPECT_GE(seen.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusInvariants,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

// ---- Golden decodes across the opcode map ------------------------------------

struct Golden {
  const char* hex;
  Mnemonic mnemonic;
  uint8_t length;
  uint8_t op_size;
};

class GoldenDecode : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenDecode, Decodes) {
  const Golden& g = GetParam();
  auto bytes = HexDecode(g.hex);
  ASSERT_TRUE(bytes.ok());
  auto insn = DecodeOne(ByteView(bytes->data(), bytes->size()), 0, 0x1000);
  ASSERT_TRUE(insn.ok()) << g.hex << ": " << insn.status().ToString();
  EXPECT_EQ(insn->mnemonic, g.mnemonic) << g.hex;
  EXPECT_EQ(insn->length, g.length) << g.hex;
  EXPECT_EQ(insn->op_size, g.op_size) << g.hex;
}

INSTANTIATE_TEST_SUITE_P(
    OneByteMap, GoldenDecode,
    ::testing::Values(
        Golden{"00d8", Mnemonic::kAdd, 2, 1},        // add %bl,%al
        Golden{"01d8", Mnemonic::kAdd, 2, 4},        // add %ebx,%eax
        Golden{"4801d8", Mnemonic::kAdd, 3, 8},      // add %rbx,%rax
        Golden{"02d8", Mnemonic::kAdd, 2, 1},        // add %al,%bl
        Golden{"0401", Mnemonic::kAdd, 2, 1},        // add $1,%al
        Golden{"0501000000", Mnemonic::kAdd, 5, 4},  // add $1,%eax
        Golden{"66050100", Mnemonic::kAdd, 4, 2},    // add $1,%ax (imm16)
        Golden{"08d8", Mnemonic::kOr, 2, 1},
        Golden{"10d8", Mnemonic::kAdc, 2, 1},
        Golden{"18d8", Mnemonic::kSbb, 2, 1},
        Golden{"20d8", Mnemonic::kAnd, 2, 1},
        Golden{"28d8", Mnemonic::kSub, 2, 1},
        Golden{"30d8", Mnemonic::kXor, 2, 1},
        Golden{"38d8", Mnemonic::kCmp, 2, 1},
        Golden{"6310", Mnemonic::kMovsxd, 2, 4},     // movsxd (%rax),%edx
        Golden{"4863d0", Mnemonic::kMovsxd, 3, 8},
        Golden{"6801000000", Mnemonic::kPush, 5, 8},  // push $1
        Golden{"6a7f", Mnemonic::kPush, 2, 8},        // push $0x7f
        Golden{"69c010270000", Mnemonic::kImul, 6, 4},  // imul $10000,%eax
        Golden{"6bc064", Mnemonic::kImul, 3, 4},      // imul $100,%eax
        Golden{"84c0", Mnemonic::kTest, 2, 1},
        Golden{"4885c0", Mnemonic::kTest, 3, 8},
        Golden{"86c8", Mnemonic::kXchg, 2, 1},
        Golden{"9190", Mnemonic::kXchg, 1, 4},        // xchg %ecx,%eax (0x91)
        Golden{"4898", Mnemonic::kCdqe, 2, 8},
        Golden{"4899", Mnemonic::kCqo, 2, 8},
        Golden{"a855", Mnemonic::kTest, 2, 1},        // test $0x55,%al
        Golden{"a955000000", Mnemonic::kTest, 5, 4},
        Golden{"b0ff", Mnemonic::kMov, 2, 1},         // mov $0xff,%al
        Golden{"c0e003", Mnemonic::kShl, 3, 1},       // shl $3,%al
        Golden{"48c1e803", Mnemonic::kShr, 4, 8},
        Golden{"48c1f803", Mnemonic::kSar, 4, 8},
        Golden{"48c1c003", Mnemonic::kRol, 4, 8},
        Golden{"48c1c803", Mnemonic::kRor, 4, 8},
        Golden{"48d1e0", Mnemonic::kShl, 3, 8},       // shl $1,%rax (d1 /4)
        Golden{"48d3e0", Mnemonic::kShl, 3, 8},       // shl %cl,%rax
        Golden{"c6010a", Mnemonic::kMov, 3, 1},       // movb $10,(%rcx)
        Golden{"48c7c103000000", Mnemonic::kMov, 7, 8},
        Golden{"c9", Mnemonic::kLeave, 1, 8},
        Golden{"48f7d8", Mnemonic::kNeg, 3, 8},
        Golden{"48f7d0", Mnemonic::kNot, 3, 8},
        Golden{"48f7e1", Mnemonic::kMul, 3, 8},
        Golden{"48f7e9", Mnemonic::kImul, 3, 8},
        Golden{"48f7f1", Mnemonic::kDiv, 3, 8},
        Golden{"48f7f9", Mnemonic::kIdiv, 3, 8},
        Golden{"f6c101", Mnemonic::kTest, 3, 1},      // test $1,%cl
        Golden{"48f7c001000000", Mnemonic::kTest, 7, 8},
        Golden{"fec0", Mnemonic::kInc, 2, 1},
        Golden{"fec8", Mnemonic::kDec, 2, 1},
        Golden{"48ffc0", Mnemonic::kInc, 3, 8},
        Golden{"48ffc8", Mnemonic::kDec, 3, 8},
        Golden{"ff30", Mnemonic::kPush, 2, 8},        // push (%rax)
        Golden{"ff20", Mnemonic::kJmpIndirect, 2, 8}, // jmp *(%rax)
        Golden{"ff10", Mnemonic::kCallIndirect, 2, 8}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = info.param.hex;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      return "x" + name;
    });

INSTANTIATE_TEST_SUITE_P(
    TwoByteMap, GoldenDecode,
    ::testing::Values(
        Golden{"0f05", Mnemonic::kSyscall, 2, 4},
        Golden{"0f0b", Mnemonic::kUd2, 2, 4},
        Golden{"0f1f4000", Mnemonic::kNop, 4, 4},
        Golden{"0f31", Mnemonic::kRdtsc, 2, 4},
        Golden{"0fa2", Mnemonic::kCpuid, 2, 4},
        Golden{"480fafc1", Mnemonic::kImul, 4, 8},
        Golden{"0fb6c1", Mnemonic::kMovzx, 3, 4},    // movzbl %cl,%eax
        Golden{"480fb6c1", Mnemonic::kMovzx, 4, 8},
        Golden{"0fb7c1", Mnemonic::kMovzx, 3, 4},    // movzwl
        Golden{"0fbec1", Mnemonic::kMovsx, 3, 4},
        Golden{"0fbfc1", Mnemonic::kMovsx, 3, 4},
        Golden{"0fc8", Mnemonic::kBswap, 2, 4},      // bswap %eax
        Golden{"480fc8", Mnemonic::kBswap, 3, 8},
        Golden{"0f44c1", Mnemonic::kCmov, 3, 4},
        Golden{"0f94c0", Mnemonic::kSetcc, 3, 1},
        Golden{"f30f1efa", Mnemonic::kEndbr64, 4, 4}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      return "x" + std::string(info.param.hex);
    });

// ---- Register naming ---------------------------------------------------------

TEST(RegNameTest, AllRegistersAllSizes) {
  EXPECT_STREQ(RegName(kRax, 8), "rax");
  EXPECT_STREQ(RegName(kRax, 4), "eax");
  EXPECT_STREQ(RegName(kRax, 2), "ax");
  EXPECT_STREQ(RegName(kRax, 1), "al");
  EXPECT_STREQ(RegName(kRsp, 8), "rsp");
  EXPECT_STREQ(RegName(kRsp, 1), "spl");
  EXPECT_STREQ(RegName(kR8, 8), "r8");
  EXPECT_STREQ(RegName(kR8, 4), "r8d");
  EXPECT_STREQ(RegName(kR8, 2), "r8w");
  EXPECT_STREQ(RegName(kR8, 1), "r8b");
  EXPECT_STREQ(RegName(kR15, 8), "r15");
  // Out-of-range register numbers are masked, never UB.
  EXPECT_STREQ(RegName(16, 8), "rax");
}

TEST(MnemonicNameTest, EveryMnemonicHasAName) {
  for (int m = 0; m <= static_cast<int>(Mnemonic::kUd2); ++m) {
    const char* name = MnemonicName(static_cast<Mnemonic>(m));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "(bad)");
  }
}

// ---- Random-byte robustness (differential structural check) ------------------

TEST(DecoderRobustness, RandomBytesNeverViolateInvariants) {
  Rng rng(0xfeed);
  size_t decoded = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const Bytes junk = rng.NextBytes(kMaxInsnLength);
    auto insn = DecodeOne(ByteView(junk.data(), junk.size()), 0, 0);
    if (!insn.ok()) continue;
    ++decoded;
    EXPECT_GE(insn->length, 1);
    EXPECT_LE(insn->length, kMaxInsnLength);
    EXPECT_EQ(insn->prefix_len + insn->opcode_len + insn->modrm_len +
                  insn->sib_len + insn->disp_len + insn->imm_len,
              insn->length);
    // Rendering must never crash on any decodable instruction.
    EXPECT_FALSE(insn->ToString().empty());
  }
  // A decent fraction of random bytes is decodable (dense opcode coverage).
  EXPECT_GT(decoded, 2000u);
}

// ---- Encoder determinism across the whole surface -----------------------------

TEST(EncoderDeterminism, SameProgramSameBytes) {
  auto emit = [] {
    Assembler as(0x1000);
    for (int r = 0; r < 16; ++r) {
      as.MovRegImm64(static_cast<Reg>(r), 0x123456789abcdef0ull + r);
      as.Push(static_cast<Reg>(r));
      as.Pop(static_cast<Reg>(r));
      as.AddRegReg(static_cast<Reg>(r), kRax);
      as.MovStore(static_cast<Reg>(r), 0x40, kRcx);
      as.MovLoad(kRcx, static_cast<Reg>(r), -0x40);
    }
    as.Ret();
    return as.bytes();
  };
  EXPECT_EQ(emit(), emit());
}

TEST(EncoderDeterminism, AllRegPairsRoundTripThroughDecoder) {
  for (int dst = 0; dst < 16; ++dst) {
    for (int src = 0; src < 16; src += 3) {
      Assembler as(0);
      as.MovRegReg(static_cast<Reg>(dst), static_cast<Reg>(src));
      as.SubRegReg(static_cast<Reg>(dst), static_cast<Reg>(src));
      as.CmpRegReg(static_cast<Reg>(dst), static_cast<Reg>(src));
      auto insns = DecodeAll(ByteView(as.bytes().data(), as.bytes().size()), 0);
      ASSERT_TRUE(insns.ok()) << dst << "," << src;
      ASSERT_EQ(insns->size(), 3u);
      EXPECT_TRUE((*insns)[0].dst.IsReg(static_cast<uint8_t>(dst)));
      EXPECT_TRUE((*insns)[0].src.IsReg(static_cast<uint8_t>(src)));
      EXPECT_EQ((*insns)[1].mnemonic, Mnemonic::kSub);
      EXPECT_EQ((*insns)[2].mnemonic, Mnemonic::kCmp);
    }
  }
}

TEST(EncoderDeterminism, MemoryDisplacementSweep) {
  // Exercise mod=00/01/10 across bases including the rsp/rbp special cases.
  for (int base = 0; base < 16; ++base) {
    for (const int32_t disp : {0, 1, 127, 128, -1, -128, -129, 0x10000}) {
      Assembler as(0);
      as.MovStore(static_cast<Reg>(base), disp, kRax);
      auto insn = DecodeOne(ByteView(as.bytes().data(), as.bytes().size()), 0, 0);
      ASSERT_TRUE(insn.ok()) << "base=" << base << " disp=" << disp;
      ASSERT_EQ(insn->dst.kind, OperandKind::kMem);
      EXPECT_EQ(insn->dst.mem.base, base);
      EXPECT_EQ(insn->dst.mem.disp, disp);
      EXPECT_EQ(insn->length, as.bytes().size());
    }
  }
}

}  // namespace
}  // namespace engarde::x86
