#include "crypto/rsa.h"

#include <gtest/gtest.h>

namespace engarde::crypto {
namespace {

// Shared 768-bit key: generated once, reused across tests (keygen is the
// expensive part). 768 bits is far too small for security but exercises the
// identical code paths as the 2048-bit production configuration.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    HmacDrbg drbg(ToBytes("rsa-test-seed"));
    auto pair = RsaGenerateKey(768, drbg);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    key_ = new RsaKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }

  static const RsaKeyPair& key() { return *key_; }

 private:
  static RsaKeyPair* key_;
};

RsaKeyPair* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyHasExpectedShape) {
  EXPECT_EQ(key().public_key.n.BitLength(), 768u);
  EXPECT_EQ(key().public_key.e.ToU64(), 65537u);
  EXPECT_EQ(BigInt::Mul(key().private_key.p, key().private_key.q),
            key().public_key.n);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  HmacDrbg drbg(ToBytes("enc"));
  const Bytes msg = ToBytes("256-bit AES session key here....");
  auto ct = RsaEncrypt(key().public_key, msg, drbg);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), key().public_key.ModulusBytes());
  auto pt = RsaDecrypt(key().private_key, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  HmacDrbg drbg(ToBytes("enc2"));
  const Bytes msg = ToBytes("same message");
  auto c1 = RsaEncrypt(key().public_key, msg, drbg);
  auto c2 = RsaEncrypt(key().public_key, msg, drbg);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);  // fresh PS bytes every time
}

TEST_F(RsaTest, RejectsOverlongPlaintext) {
  HmacDrbg drbg(ToBytes("enc3"));
  const Bytes msg(key().public_key.ModulusBytes() - 10, 0x41);
  EXPECT_FALSE(RsaEncrypt(key().public_key, msg, drbg).ok());
}

TEST_F(RsaTest, DecryptRejectsWrongLength) {
  const Bytes ct(7, 0x01);
  EXPECT_FALSE(RsaDecrypt(key().private_key, ct).ok());
}

TEST_F(RsaTest, DecryptRejectsTamperedCiphertext) {
  HmacDrbg drbg(ToBytes("enc4"));
  const Bytes msg = ToBytes("secret");
  auto ct = RsaEncrypt(key().public_key, msg, drbg);
  ASSERT_TRUE(ct.ok());
  Bytes tampered = *ct;
  tampered[tampered.size() / 2] ^= 0x01;
  auto pt = RsaDecrypt(key().private_key, tampered);
  // Either padding check fails, or we get a different plaintext; both are
  // acceptable failure surfaces for PKCS#1 v1.5.
  if (pt.ok()) {
    EXPECT_NE(*pt, msg);
  }
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Bytes msg = ToBytes("attestation quote body");
  auto sig = RsaSign(key().private_key, msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(RsaVerify(key().public_key, msg, *sig).ok());
}

TEST_F(RsaTest, VerifyRejectsModifiedMessage) {
  const Bytes msg = ToBytes("attestation quote body");
  auto sig = RsaSign(key().private_key, msg);
  ASSERT_TRUE(sig.ok());
  const Bytes other = ToBytes("attestation quote bodY");
  EXPECT_EQ(RsaVerify(key().public_key, other, *sig).code(),
            StatusCode::kIntegrityError);
}

TEST_F(RsaTest, VerifyRejectsModifiedSignature) {
  const Bytes msg = ToBytes("msg");
  auto sig = RsaSign(key().private_key, msg);
  ASSERT_TRUE(sig.ok());
  Bytes bad = *sig;
  bad[0] ^= 0x80;
  EXPECT_FALSE(RsaVerify(key().public_key, msg, bad).ok());
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  HmacDrbg drbg(ToBytes("other-key"));
  auto other = RsaGenerateKey(512, drbg);
  ASSERT_TRUE(other.ok());
  const Bytes msg = ToBytes("msg");
  auto sig = RsaSign(other->private_key, msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(RsaVerify(key().public_key, msg, *sig).ok());
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  const Bytes wire = key().public_key.Serialize();
  auto parsed = RsaPublicKey::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->n, key().public_key.n);
  EXPECT_EQ(parsed->e, key().public_key.e);
}

TEST_F(RsaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::Deserialize(ToBytes("nonsense")).ok());
  EXPECT_FALSE(RsaPublicKey::Deserialize({}).ok());
  // Trailing bytes are a protocol smell; reject them.
  Bytes wire = key().public_key.Serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(RsaPublicKey::Deserialize(wire).ok());
}

TEST(RsaKeygenTest, RejectsBadModulusSizes) {
  HmacDrbg drbg(ToBytes("x"));
  EXPECT_FALSE(RsaGenerateKey(128, drbg).ok());   // too small
  EXPECT_FALSE(RsaGenerateKey(300, drbg).ok());   // not multiple of 16
}

TEST(RsaKeygenTest, DeterministicFromSeed) {
  HmacDrbg d1(ToBytes("same-seed"));
  HmacDrbg d2(ToBytes("same-seed"));
  auto k1 = RsaGenerateKey(512, d1);
  auto k2 = RsaGenerateKey(512, d2);
  ASSERT_TRUE(k1.ok() && k2.ok());
  EXPECT_EQ(k1->public_key.n, k2->public_key.n);
  EXPECT_EQ(k1->private_key.d, k2->private_key.d);
}

TEST(PrimalityTest, KnownPrimes) {
  HmacDrbg drbg(ToBytes("p"));
  for (uint64_t p : {2ull, 3ull, 5ull, 65537ull, 1000000007ull,
                     2147483647ull /* 2^31-1, Mersenne */}) {
    EXPECT_TRUE(IsProbablePrime(BigInt::FromU64(p), drbg)) << p;
  }
}

TEST(PrimalityTest, KnownComposites) {
  HmacDrbg drbg(ToBytes("c"));
  for (uint64_t c : {1ull, 4ull, 561ull /* Carmichael */, 65536ull,
                     1000000008ull, 341ull /* 2-pseudoprime */}) {
    EXPECT_FALSE(IsProbablePrime(BigInt::FromU64(c), drbg)) << c;
  }
}

TEST(PrimalityTest, LargeKnownPrime) {
  // 2^127 - 1 (Mersenne prime)
  const BigInt p = *BigInt::FromHex("7fffffffffffffffffffffffffffffff");
  HmacDrbg drbg(ToBytes("m"));
  EXPECT_TRUE(IsProbablePrime(p, drbg));
  // Its square is certainly composite.
  EXPECT_FALSE(IsProbablePrime(BigInt::Mul(p, p), drbg));
}

}  // namespace
}  // namespace engarde::crypto
