#include "x86/validator.h"

#include <gtest/gtest.h>

#include "x86/decoder.h"
#include "x86/encoder.h"

namespace engarde::x86 {
namespace {

// Decodes `code` into an InsnBuffer and validates with the given roots.
Status ValidateCode(const Bytes& code, uint64_t base,
                    std::vector<uint64_t> roots) {
  auto insns = DecodeAll(ByteView(code.data(), code.size()), base);
  if (!insns.ok()) return insns.status();
  InsnBuffer buffer;
  for (const Insn& i : *insns) buffer.Append(i);
  ValidationInput input;
  input.text_start = base;
  input.text_end = base + code.size();
  input.roots = std::move(roots);
  return ValidateNaClConstraints(buffer, input);
}

TEST(ValidatorTest, AcceptsStraightLineCode) {
  Assembler as(0x1000);
  as.MovRegImm32(kRax, 7);
  as.AddRegImm32(kRax, 1);
  as.Ret();
  EXPECT_TRUE(ValidateCode(as.bytes(), 0x1000, {0x1000}).ok());
}

TEST(ValidatorTest, AcceptsBranchesToInstructionStarts) {
  Assembler as(0x1000);
  auto done = as.NewLabel();
  as.TestRegReg(kRax, kRax);
  as.JccLabel(kCondE, done);
  as.AddRegImm32(kRax, 1);
  as.Bind(done);
  as.Ret();
  const Bytes code = as.TakeBytes();
  EXPECT_TRUE(ValidateCode(code, 0x1000, {0x1000}).ok());
}

TEST(ValidatorTest, RejectsBundleStraddle) {
  Assembler as(0x1000);
  as.NopBytes(30);             // fill to offset 30 in the bundle
  as.MovRegImm64(kRax, 1);     // 10-byte instruction straddles offset 32
  as.Ret();
  const Status s = ValidateCode(as.bytes(), 0x1000, {0x1000});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bundle"), std::string::npos);
}

TEST(ValidatorTest, AcceptsWhenBundlePaddingInserted) {
  Assembler as(0x1000);
  as.NopBytes(30);
  as.BundleAlignFor(10);
  as.MovRegImm64(kRax, 1);
  as.Ret();
  EXPECT_TRUE(ValidateCode(as.bytes(), 0x1000, {0x1000}).ok());
}

TEST(ValidatorTest, RejectsBranchIntoInstructionMiddle) {
  Assembler as(0x1000);
  as.JmpAbs(0x1006);           // 5-byte jmp, then a 10-byte movabs at 0x1005;
  as.MovRegImm64(kRax, 1);     // 0x1006 is inside it
  as.Ret();
  const Status s = ValidateCode(as.bytes(), 0x1000, {0x1000});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not an instruction start"), std::string::npos);
}

TEST(ValidatorTest, RejectsBranchOutsideText) {
  Assembler as(0x1000);
  as.JmpAbs(0x9000);
  as.Ret();
  const Status s = ValidateCode(as.bytes(), 0x1000, {0x1000});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("outside text"), std::string::npos);
}

TEST(ValidatorTest, RejectsUnreachableInstructions) {
  Assembler as(0x1000);
  as.Ret();                    // entry returns immediately
  as.MovRegImm32(kRax, 1);     // dead code, no root covers it
  as.Ret();
  const Status s = ValidateCode(as.bytes(), 0x1000, {0x1000});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unreachable"), std::string::npos);
}

TEST(ValidatorTest, FunctionSymbolRootsMakeCodeReachable) {
  Assembler as(0x1000);
  as.Ret();                    // "main" at 0x1000
  const uint64_t helper = 0x1001;
  as.MovRegImm32(kRax, 1);     // "helper" at 0x1001
  as.Ret();
  EXPECT_TRUE(ValidateCode(as.bytes(), 0x1000, {0x1000, helper}).ok());
}

TEST(ValidatorTest, CallFallthroughIsReachable) {
  Assembler as(0x1000);
  as.CallAbs(0x1006);          // call the function below (at 0x1005+1)
  as.Ret();                    // fall-through after the call returns
  as.MovRegImm32(kRax, 2);     // callee at 0x1006
  as.Ret();
  EXPECT_TRUE(ValidateCode(as.bytes(), 0x1000, {0x1000}).ok());
}

TEST(ValidatorTest, CodeAfterJmpNeedsExplicitRoot) {
  Assembler as(0x1000);
  as.JmpAbs(0x100a);           // skip over the block below
  as.MovRegImm32(kRax, 3);     // at 0x1005: unreachable (jmp does not fall through)
  as.Ret();                    // at 0x100a
  const Status unrooted = ValidateCode(as.bytes(), 0x1000, {0x1000});
  EXPECT_FALSE(unrooted.ok());
  EXPECT_TRUE(ValidateCode(as.bytes(), 0x1000, {0x1000, 0x1005}).ok());
}

TEST(ValidatorTest, RejectsRootAtNonInstruction) {
  Assembler as(0x1000);
  as.MovRegImm64(kRax, 1);
  as.Ret();
  const Status s = ValidateCode(as.bytes(), 0x1000, {0x1000, 0x1003});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("root"), std::string::npos);
}

TEST(ValidatorTest, EmptyBufferIsValid) {
  InsnBuffer buffer;
  ValidationInput input;
  input.text_start = 0;
  input.text_end = 0;
  EXPECT_TRUE(ValidateNaClConstraints(buffer, input).ok());
}

TEST(InsnBufferTest, AppendAndIndex) {
  InsnBuffer buf;
  for (int i = 0; i < 300; ++i) {
    Insn insn;
    insn.addr = 0x1000 + static_cast<uint64_t>(i) * 4;
    insn.length = 4;
    buf.Append(insn);
  }
  EXPECT_EQ(buf.size(), 300u);
  EXPECT_EQ(buf[0].addr, 0x1000u);
  EXPECT_EQ(buf[299].addr, 0x1000u + 299 * 4);
  EXPECT_EQ(buf.IndexOfAddr(0x1000 + 57 * 4), 57u);
  EXPECT_EQ(buf.IndexOfAddr(0x1002), InsnBuffer::npos);
}

TEST(InsnBufferTest, ChunkAllocationsFireHook) {
  size_t allocations = 0;
  size_t bytes_total = 0;
  InsnBuffer buf([&](size_t bytes) {
    ++allocations;
    bytes_total += bytes;
  });
  // Fill a bit more than two chunks' worth.
  const size_t per_chunk = InsnBuffer::kInsnsPerChunk;
  for (size_t i = 0; i < 2 * per_chunk + 1; ++i) {
    Insn insn;
    insn.addr = i;
    buf.Append(insn);
  }
  EXPECT_EQ(allocations, 3u);  // page-at-a-time, as in the paper
  EXPECT_EQ(bytes_total, 3 * InsnBuffer::kChunkBytes);
  EXPECT_EQ(buf.chunk_allocations(), 3u);
}

TEST(InsnBufferTest, IteratorCoversAll) {
  InsnBuffer buf;
  for (int i = 0; i < 100; ++i) {
    Insn insn;
    insn.addr = static_cast<uint64_t>(i);
    buf.Append(insn);
  }
  uint64_t expect = 0;
  for (const Insn& insn : buf) {
    EXPECT_EQ(insn.addr, expect++);
  }
  EXPECT_EQ(expect, 100u);
}

}  // namespace
}  // namespace engarde::x86
