// Unit tests for the three policy modules, driven by the workload generator:
// compliant builds must pass their policy; each sabotage knob must produce a
// targeted rejection.
#include <gtest/gtest.h>

#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "workload/program_builder.h"
#include "x86/decoder.h"

namespace engarde::core {
namespace {

using workload::BuildProgram;
using workload::ProgramSpec;

// Disassembles a built program into the policy-context shape EnGarde uses.
struct Inspected {
  elf::ElfFile elf;
  x86::InsnBuffer insns;
  SymbolHashTable symbols;

  PolicyContext Context() const {
    PolicyContext context;
    context.insns = &insns;
    context.symbols = &symbols;
    context.elf = &elf;
    return context;
  }
};

Inspected Inspect(const Bytes& image) {
  auto elf = elf::ElfFile::Parse(ByteView(image.data(), image.size()));
  EXPECT_TRUE(elf.ok()) << elf.status().ToString();
  Inspected out{std::move(elf).value(), x86::InsnBuffer(), SymbolHashTable()};
  for (const elf::Shdr* section : out.elf.TextSections()) {
    auto content = out.elf.SectionContent(*section);
    EXPECT_TRUE(content.ok());
    auto insns = x86::DecodeAll(*content, section->addr);
    EXPECT_TRUE(insns.ok()) << insns.status().ToString();
    for (const x86::Insn& insn : *insns) out.insns.Append(insn);
  }
  out.symbols = SymbolHashTable::Build(out.elf);
  return out;
}

ProgramSpec BaseSpec() {
  ProgramSpec spec;
  spec.name = "policy-test";
  spec.seed = 42;
  spec.target_instructions = 3000;
  return spec;
}

// ---- Library linking ---------------------------------------------------------

TEST(LibraryLinkingPolicyTest, AcceptsMatchingLibrary) {
  auto program = BuildProgram(BaseSpec());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto db = workload::BuildLibcHashDb(program->libc_options);
  ASSERT_TRUE(db.ok());
  const Inspected inspected = Inspect(program->image);
  LibraryLinkingPolicy policy("synth-musl v1.0.5", std::move(db).value());
  EXPECT_TRUE(policy.Check(inspected.Context()).ok());
}

TEST(LibraryLinkingPolicyTest, RejectsWrongLibraryVersion) {
  // Client links v1.0.4; provider's database is for v1.0.5.
  ProgramSpec spec = BaseSpec();
  spec.libc.version = "1.0.4";
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  workload::SynthLibcOptions db_options = program->libc_options;
  db_options.version = "1.0.5";
  auto db = workload::BuildLibcHashDb(db_options);
  ASSERT_TRUE(db.ok());

  const Inspected inspected = Inspect(program->image);
  LibraryLinkingPolicy policy("synth-musl v1.0.5", std::move(db).value());
  const Status status = policy.Check(inspected.Context());
  ASSERT_EQ(status.code(), StatusCode::kPolicyViolation);
  EXPECT_NE(status.message().find("wrong library version"), std::string::npos);
}

TEST(LibraryLinkingPolicyTest, RejectsPatchedLibraryFunction) {
  auto program = BuildProgram(BaseSpec());
  ASSERT_TRUE(program.ok());
  auto db = workload::BuildLibcHashDb(program->libc_options);
  ASSERT_TRUE(db.ok());

  // Tamper with one byte inside a libc function the program calls: find the
  // .text.libc section and flip a byte in its middle. (Flipping an arbitrary
  // byte may break disassembly instead; use a digest-visible but
  // decode-invariant change: patch an imm32 of some mov.) Simplest robust
  // approach: flip the low byte of a 4-byte immediate — locate a
  // mov-reg-imm32 (0xb8..0xbf) inside .text.libc.
  Bytes image = program->image;
  auto elf = elf::ElfFile::Parse(ByteView(image.data(), image.size()));
  ASSERT_TRUE(elf.ok());
  const elf::Shdr* libc_sec = elf->SectionByName(".text.libc");
  ASSERT_NE(libc_sec, nullptr);
  auto content = elf->SectionContent(*libc_sec);
  ASSERT_TRUE(content.ok());
  auto insns = x86::DecodeAll(*content, libc_sec->addr);
  ASSERT_TRUE(insns.ok());
  bool patched = false;
  for (const x86::Insn& insn : *insns) {
    if (insn.mnemonic == x86::Mnemonic::kMov &&
        insn.src.kind == x86::OperandKind::kImm && insn.imm_len == 4) {
      const uint64_t file_off = libc_sec->offset +
                                (insn.addr - libc_sec->addr) + insn.length - 1;
      image[file_off] ^= 0x01;
      patched = true;
      break;
    }
  }
  ASSERT_TRUE(patched) << "no patchable instruction found";

  const Inspected inspected = Inspect(image);
  LibraryLinkingPolicy policy("synth-musl v1.0.5", std::move(db).value());
  // The patched function may or may not be on a direct-call path; patch the
  // *first* such instruction, which lives in an early (frequently called)
  // function. Expect rejection.
  const Status status = policy.Check(inspected.Context());
  EXPECT_EQ(status.code(), StatusCode::kPolicyViolation);
}

TEST(LibraryLinkingPolicyTest, MemoizationDoesNotChangeVerdicts) {
  // Accept case: both variants accept.
  {
    auto program = BuildProgram(BaseSpec());
    ASSERT_TRUE(program.ok());
    auto db1 = workload::BuildLibcHashDb(program->libc_options);
    auto db2 = workload::BuildLibcHashDb(program->libc_options);
    ASSERT_TRUE(db1.ok() && db2.ok());
    const Inspected inspected = Inspect(program->image);
    LibraryLinkingPolicy plain("musl", std::move(db1).value());
    LibraryLinkingPolicy memo("musl", std::move(db2).value(),
                              {.memoize_functions = true});
    EXPECT_EQ(plain.Check(inspected.Context()).ok(),
              memo.Check(inspected.Context()).ok());
    EXPECT_TRUE(memo.Check(inspected.Context()).ok());
    // And the fingerprint is identical — memoization is not a policy change.
    EXPECT_EQ(plain.Fingerprint(), memo.Fingerprint());
  }
  // Reject case: both variants reject the wrong library version.
  {
    ProgramSpec spec = BaseSpec();
    spec.libc.version = "1.0.4";
    auto program = BuildProgram(spec);
    ASSERT_TRUE(program.ok());
    workload::SynthLibcOptions db_options = program->libc_options;
    db_options.version = "1.0.5";
    auto db = workload::BuildLibcHashDb(db_options);
    ASSERT_TRUE(db.ok());
    const Inspected inspected = Inspect(program->image);
    LibraryLinkingPolicy memo("musl", std::move(db).value(),
                              {.memoize_functions = true});
    EXPECT_EQ(memo.Check(inspected.Context()).code(),
              StatusCode::kPolicyViolation);
  }
}

TEST(LibraryLinkingPolicyTest, FingerprintBindsDbContent) {
  auto db1 = workload::BuildLibcHashDb({.version = "1.0.5"});
  auto db2 = workload::BuildLibcHashDb({.version = "1.0.4"});
  ASSERT_TRUE(db1.ok() && db2.ok());
  LibraryLinkingPolicy p1("musl", std::move(db1).value());
  LibraryLinkingPolicy p2("musl", std::move(db2).value());
  EXPECT_NE(p1.Fingerprint(), p2.Fingerprint());
}

// ---- Stack protection ----------------------------------------------------------

TEST(StackProtectionPolicyTest, AcceptsInstrumentedBuild) {
  ProgramSpec spec = BaseSpec();
  spec.stack_protection = true;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);
  StackProtectionPolicy policy;
  EXPECT_TRUE(policy.Check(inspected.Context()).ok())
      << policy.Check(inspected.Context()).ToString();
}

TEST(StackProtectionPolicyTest, RejectsUninstrumentedBuild) {
  auto program = BuildProgram(BaseSpec());  // no stack protection
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);
  StackProtectionPolicy policy;
  const Status status = policy.Check(inspected.Context());
  ASSERT_EQ(status.code(), StatusCode::kPolicyViolation);
  EXPECT_NE(status.message().find("prologue"), std::string::npos);
}

TEST(StackProtectionPolicyTest, RejectsSingleSabotagedFunction) {
  // Everything instrumented except one function missing its epilogue check —
  // the "malicious client sneaks one unprotected function" scenario.
  ProgramSpec spec = BaseSpec();
  spec.stack_protection = true;
  spec.sabotage_one_function = true;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);
  StackProtectionPolicy policy;
  const Status status = policy.Check(inspected.Context());
  ASSERT_EQ(status.code(), StatusCode::kPolicyViolation);
  EXPECT_NE(status.message().find("epilogue"), std::string::npos);
  EXPECT_NE(status.message().find("fn_0"), std::string::npos);  // the victim
}

TEST(StackProtectionPolicyTest, ExemptionsApply) {
  // With every generated function exempted, even an uninstrumented build
  // passes — checks that the exempt set is honoured.
  auto program = BuildProgram(BaseSpec());
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);

  StackProtectionPolicy::Options options;
  for (const auto& fn : inspected.symbols.functions()) {
    options.exempt.insert(fn.name);
  }
  StackProtectionPolicy policy(std::move(options));
  EXPECT_TRUE(policy.Check(inspected.Context()).ok());
}

// ---- IFCC -----------------------------------------------------------------------

TEST(IfccPolicyTest, AcceptsInstrumentedBuild) {
  ProgramSpec spec = BaseSpec();
  spec.ifcc = true;
  spec.indirect_call_sites = 5;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);
  IndirectCallPolicy policy;
  EXPECT_TRUE(policy.Check(inspected.Context()).ok())
      << policy.Check(inspected.Context()).ToString();
}

TEST(IfccPolicyTest, AcceptsProgramWithoutIndirectCalls) {
  auto program = BuildProgram(BaseSpec());  // no indirect calls at all
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);
  IndirectCallPolicy policy;
  EXPECT_TRUE(policy.Check(inspected.Context()).ok());
}

TEST(IfccPolicyTest, RejectsUnguardedIndirectCall) {
  ProgramSpec spec = BaseSpec();
  spec.unguarded_indirect_call = true;
  spec.indirect_call_sites = 2;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  const Inspected inspected = Inspect(program->image);
  IndirectCallPolicy policy;
  const Status status = policy.Check(inspected.Context());
  ASSERT_EQ(status.code(), StatusCode::kPolicyViolation);
  EXPECT_NE(status.message().find("jump table"), std::string::npos);
}

TEST(IfccPolicyTest, JumpTableEntriesVerifiedStructurally) {
  ProgramSpec spec = BaseSpec();
  spec.ifcc = true;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  // Corrupt the first jump-table entry: overwrite the jmp with one-byte NOPs
  // (still decodable, but no longer a jmpq rel32 entry).
  Bytes image = program->image;
  auto elf = elf::ElfFile::Parse(ByteView(image.data(), image.size()));
  ASSERT_TRUE(elf.ok());
  uint64_t entry_vaddr = 0;
  for (const elf::Sym& sym : elf->symbols()) {
    if (sym.name == "__llvm_jump_instr_table_0_0") {
      entry_vaddr = sym.value;
      break;
    }
  }
  ASSERT_NE(entry_vaddr, 0u);
  // offset == vaddr in our builder layout.
  for (int i = 0; i < 5; ++i) image[entry_vaddr + i] = 0x90;

  const Inspected inspected = Inspect(image);
  IndirectCallPolicy policy;
  const Status status = policy.Check(inspected.Context());
  ASSERT_EQ(status.code(), StatusCode::kPolicyViolation);
  EXPECT_NE(status.message().find("jump-table entry"), std::string::npos);
}

TEST(IfccPolicyTest, FingerprintStable) {
  IndirectCallPolicy a;
  IndirectCallPolicy b;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

// ---- Generated-program structural properties (parameterized) -----------------

struct FlavorCase {
  const char* name;
  bool stackprot;
  bool ifcc;
};

class GeneratedProgramSweep : public ::testing::TestWithParam<FlavorCase> {};

TEST_P(GeneratedProgramSweep, DecodesCleanlyAndCountsMatch) {
  ProgramSpec spec = BaseSpec();
  spec.stack_protection = GetParam().stackprot;
  spec.ifcc = GetParam().ifcc;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  const Inspected inspected = Inspect(program->image);
  // The generator's instruction counter must agree exactly with a full
  // decode of the binary.
  EXPECT_EQ(inspected.insns.size(), program->emitted_insn_count);
  // And the count must be within 5% of the requested target.
  const double ratio = static_cast<double>(inspected.insns.size()) /
                       static_cast<double>(spec.target_instructions);
  EXPECT_GT(ratio, 0.95) << inspected.insns.size();
  EXPECT_LT(ratio, 1.10) << inspected.insns.size();
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, GeneratedProgramSweep,
    ::testing::Values(FlavorCase{"plain", false, false},
                      FlavorCase{"stackprot", true, false},
                      FlavorCase{"ifcc", false, true},
                      FlavorCase{"both", true, true}),
    [](const ::testing::TestParamInfo<FlavorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace engarde::core
