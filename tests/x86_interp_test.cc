#include "x86/interp.h"

#include <gtest/gtest.h>

#include <cstring>

#include "x86/encoder.h"

namespace engarde::x86 {
namespace {

// Flat test memory: code at kCodeBase (execute-only), data/stack/TLS writable.
class FlatMemory : public MemoryIface {
 public:
  static constexpr uint64_t kCodeBase = 0x10000;
  static constexpr uint64_t kDataBase = 0x20000;
  static constexpr uint64_t kStackTop = 0x40000;
  static constexpr uint64_t kFsBase = 0x50000;
  static constexpr size_t kSize = 0x60000;

  explicit FlatMemory(const Bytes& code) : mem_(kSize, 0) {
    std::memcpy(mem_.data() + kCodeBase, code.data(), code.size());
    code_end_ = kCodeBase + code.size();
  }

  void Poke64(uint64_t addr, uint64_t v) { StoreLe64(mem_.data() + addr, v); }
  uint64_t Peek64(uint64_t addr) const { return LoadLe64(mem_.data() + addr); }

  Result<uint64_t> Load(uint64_t addr, uint8_t size) override {
    if (addr + size > mem_.size()) return OutOfRangeError("load out of range");
    uint64_t v = 0;
    for (int i = size; i-- > 0;) v = (v << 8) | mem_[addr + i];
    return v;
  }
  Status Store(uint64_t addr, uint8_t size, uint64_t value) override {
    if (addr + size > mem_.size()) return OutOfRangeError("store out of range");
    if (addr >= kCodeBase && addr < code_end_) {
      return PermissionDeniedError("store to execute-only page");
    }
    for (int i = 0; i < size; ++i) mem_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    return Status::Ok();
  }
  Status Fetch(uint64_t addr, MutableByteView out) override {
    if (addr + out.size() > mem_.size()) {
      return OutOfRangeError("fetch out of range");
    }
    std::memcpy(out.data(), mem_.data() + addr, out.size());
    return Status::Ok();
  }
  bool IsExecutable(uint64_t addr) const override {
    return addr >= kCodeBase && addr < code_end_;
  }

 private:
  Bytes mem_;
  uint64_t code_end_;
};

Result<uint64_t> RunCode(const Bytes& code,
                         void (*setup)(FlatMemory&, Machine&) = nullptr) {
  FlatMemory mem(code);
  MachineConfig config;
  config.stack_top = FlatMemory::kStackTop;
  config.fs_base = FlatMemory::kFsBase;
  Machine machine(&mem, config);
  if (setup) setup(mem, machine);
  return machine.Run(FlatMemory::kCodeBase);
}

TEST(InterpTest, MovImmediateAndRet) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm32(kRax, 42);
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 42u);
}

TEST(InterpTest, ArithmeticChain) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm32(kRax, 10);
  as.MovRegImm32(kRcx, 4);
  as.AddRegReg(kRax, kRcx);   // 14
  as.SubRegImm32(kRax, 2);    // 12
  as.ShlRegImm8(kRax, 2);     // 48
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 48u);
}

TEST(InterpTest, LoopWithConditionalBranch) {
  // rax = sum of 1..10 via a loop.
  Assembler as(FlatMemory::kCodeBase);
  as.XorRegReg(kRax, kRax);
  as.MovRegImm32(kRcx, 10);
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.AddRegReg(kRax, kRcx);
  as.SubRegImm32(kRcx, 1);
  as.CmpRegImm32(kRcx, 0);
  as.JccLabel(kCondNe, loop);
  as.Ret();
  Bytes code = as.TakeBytes();
  auto r = RunCode(code);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 55u);
}

TEST(InterpTest, CallAndReturn) {
  Assembler as(FlatMemory::kCodeBase);
  auto fn = as.NewLabel();
  as.MovRegImm32(kRax, 1);
  as.CallAbs(FlatMemory::kCodeBase + 32);
  as.AddRegImm32(kRax, 1);  // after the call: rax = 100 + 1
  as.Ret();
  as.AlignTo(32);
  as.Bind(fn);
  as.MovRegImm32(kRax, 100);
  as.Ret();
  Bytes code = as.TakeBytes();
  auto r = RunCode(code);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 101u);
}

TEST(InterpTest, StackPushPop) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm32(kRcx, 77);
  as.Push(kRcx);
  as.MovRegImm32(kRcx, 0);
  as.Pop(kRax);
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 77u);
}

TEST(InterpTest, MemoryLoadStore) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm64(kRbx, FlatMemory::kDataBase);
  as.MovRegImm32(kRax, 1234);
  as.MovStore(kRbx, 16, kRax);
  as.MovRegImm32(kRax, 0);
  as.MovLoad(kRax, kRbx, 16);
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1234u);
}

TEST(InterpTest, FsSegmentReadsThreadArea) {
  // The stack-protector pattern: read the canary from %fs:0x28.
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegFsDisp(kRax, 0x28);
  as.Ret();
  auto r = RunCode(as.bytes(), [](FlatMemory& mem, Machine&) {
    mem.Poke64(FlatMemory::kFsBase + 0x28, 0xc0ffee);
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 0xc0ffeeu);
}

TEST(InterpTest, StackProtectorSequenceRoundTrips) {
  // Full prologue + epilogue: canary in, canary checked, no corruption ->
  // the jne is not taken and we return a marker value.
  Assembler as(FlatMemory::kCodeBase);
  as.SubRegImm32(kRsp, 24);
  as.MovRegFsDisp(kRax, 0x28);
  as.MovStore(kRsp, 16, kRax);
  // ... function body ...
  as.MovRegFsDisp(kRax, 0x28);
  as.CmpRegMem(kRax, kRsp, 16);
  auto fail = as.NewLabel();
  as.JccLabel(kCondNe, fail);
  as.MovRegImm32(kRax, 7);
  as.AddRegImm32(kRsp, 24);
  as.Ret();
  as.Bind(fail);
  as.Hlt();  // stand-in for __stack_chk_fail
  Bytes code = as.TakeBytes();
  auto r = RunCode(code, [](FlatMemory& mem, Machine&) {
    mem.Poke64(FlatMemory::kFsBase + 0x28, 0x1122334455667788);
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 7u);
}

TEST(InterpTest, IndirectCallThroughRegister) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm64(kRcx, FlatMemory::kCodeBase + 32);
  as.CallIndirectReg(kRcx);
  as.Ret();
  as.AlignTo(32);
  as.MovRegImm32(kRax, 55);
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 55u);
}

TEST(InterpTest, CmovAndSetcc) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm32(kRax, 1);
  as.MovRegImm32(kRcx, 9);
  as.TestRegReg(kRax, kRax);  // ZF=0
  // cmove: not taken (ZF=0) -> rax stays 1... then setne %al -> 1.
  auto l = as.NewLabel();
  as.JccLabel(kCondE, l);
  as.MovRegReg(kRax, kRcx);  // taken path: rax = 9
  as.Bind(l);
  as.Ret();
  Bytes code = as.TakeBytes();
  auto r = RunCode(code);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 9u);
}

TEST(InterpTest, SyscallIsRejected) {
  Assembler as(FlatMemory::kCodeBase);
  as.Syscall();
  auto r = RunCode(as.bytes());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(InterpTest, WriteToCodePageRejected) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm64(kRbx, FlatMemory::kCodeBase);
  as.MovStore(kRbx, 0, kRax);  // self-modify attempt
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(InterpTest, FetchFromNonExecutableRejected) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm64(kRcx, FlatMemory::kDataBase);  // data is not executable
  as.JmpIndirectReg(kRcx);
  auto r = RunCode(as.bytes());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(InterpTest, StepLimitStopsInfiniteLoop) {
  Assembler as(FlatMemory::kCodeBase);
  auto spin = as.NewLabel();
  as.Bind(spin);
  as.JmpLabel(spin);
  Bytes code = as.TakeBytes();
  FlatMemory mem(code);
  MachineConfig config;
  config.stack_top = FlatMemory::kStackTop;
  config.max_steps = 1000;
  Machine machine(&mem, config);
  auto r = machine.Run(FlatMemory::kCodeBase);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(InterpTest, HltStopsWithRax) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm32(kRax, 99);
  as.Hlt();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 99u);
}

TEST(InterpTest, SignedComparisons) {
  // rax = (-5 < 3) ? 1 : 0 using jl.
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm64(kRcx, static_cast<uint64_t>(-5));
  as.MovRegImm32(kRdx, 3);
  as.CmpRegReg(kRcx, kRdx);
  auto less = as.NewLabel();
  as.JccLabel(kCondL, less);
  as.MovRegImm32(kRax, 0);
  as.Ret();
  as.Bind(less);
  as.MovRegImm32(kRax, 1);
  as.Ret();
  Bytes code = as.TakeBytes();
  auto r = RunCode(code);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
}

TEST(InterpTest, ThirtyTwoBitWritesZeroExtend) {
  Assembler as(FlatMemory::kCodeBase);
  as.MovRegImm64(kRax, 0xffffffffffffffff);
  as.MovRegImm32(kRax, 7);  // 32-bit write must clear the top half
  as.Ret();
  auto r = RunCode(as.bytes());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7u);
}

}  // namespace
}  // namespace engarde::x86
