#include "crypto/channel.h"

#include <gtest/gtest.h>

namespace engarde::crypto {
namespace {

SessionKeys TestKeys() {
  const Bytes master = ToBytes("0123456789abcdef0123456789abcdef");
  return SessionKeys::Derive(ByteView(master.data(), master.size()));
}

TEST(ByteQueueTest, FifoOrder) {
  ByteQueue q;
  q.Write(ToBytes("abc"));
  q.Write(ToBytes("def"));
  auto first = q.Read(4);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ToString(ByteView(first->data(), first->size())), "abcd");
  EXPECT_EQ(q.Available(), 2u);
}

TEST(ByteQueueTest, ShortReadIsProtocolError) {
  ByteQueue q;
  q.Write(ToBytes("ab"));
  EXPECT_EQ(q.Read(3).status().code(), StatusCode::kProtocolError);
}

TEST(DuplexPipeTest, EndsAreCrossConnected) {
  DuplexPipe pipe;
  auto a = pipe.EndA();
  auto b = pipe.EndB();
  a.Write(ToBytes("ping"));
  b.Write(ToBytes("pong"));
  auto from_a = b.Read(4);
  auto from_b = a.Read(4);
  ASSERT_TRUE(from_a.ok() && from_b.ok());
  EXPECT_EQ(ToString(ByteView(from_a->data(), from_a->size())), "ping");
  EXPECT_EQ(ToString(ByteView(from_b->data(), from_b->size())), "pong");
}

TEST(SessionKeysTest, DirectionsAndRolesDiffer) {
  const SessionKeys keys = TestKeys();
  EXPECT_NE(keys.client_to_enclave_aes, keys.enclave_to_client_aes);
  EXPECT_NE(keys.client_to_enclave_mac, keys.enclave_to_client_mac);
  EXPECT_NE(
      Bytes(keys.client_to_enclave_aes.begin(), keys.client_to_enclave_aes.end()),
      Bytes(keys.client_to_enclave_mac.begin(), keys.client_to_enclave_mac.end()));
}

TEST(SessionKeysTest, DeterministicFromMaster) {
  const Bytes master = ToBytes("master-key-bytes");
  const SessionKeys a = SessionKeys::Derive(ByteView(master.data(), master.size()));
  const SessionKeys b = SessionKeys::Derive(ByteView(master.data(), master.size()));
  EXPECT_EQ(a.client_to_enclave_aes, b.client_to_enclave_aes);
}

class SecureChannelTest : public ::testing::Test {
 protected:
  SecureChannelTest()
      : keys_(TestKeys()),
        client_(pipe_.EndA(), keys_, /*is_enclave_side=*/false),
        enclave_(pipe_.EndB(), keys_, /*is_enclave_side=*/true) {}

  DuplexPipe pipe_;
  SessionKeys keys_;
  SecureChannel client_;
  SecureChannel enclave_;
};

TEST_F(SecureChannelTest, RoundTripBothDirections) {
  ASSERT_TRUE(client_.Send(ToBytes("hello enclave")).ok());
  auto got = enclave_.Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(ByteView(got->data(), got->size())), "hello enclave");

  ASSERT_TRUE(enclave_.Send(ToBytes("hello client")).ok());
  auto back = client_.Receive();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ToString(ByteView(back->data(), back->size())), "hello client");
}

TEST_F(SecureChannelTest, CiphertextOnTheWireDiffersFromPlaintext) {
  const Bytes msg = ToBytes("plaintext code page bytes");
  ASSERT_TRUE(client_.Send(msg).ok());
  // Peek at the raw wire: header(12) + ct + tag(32).
  auto wire = pipe_.EndB().Read(12 + msg.size() + 32);
  ASSERT_TRUE(wire.ok());
  const ByteView ct(wire->data() + 12, msg.size());
  EXPECT_NE(Bytes(ct.begin(), ct.end()), msg);
}

TEST_F(SecureChannelTest, MultipleRecordsInOrder) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_.Send(ToBytes("record " + std::to_string(i))).ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto got = enclave_.Receive();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(ToString(ByteView(got->data(), got->size())),
              "record " + std::to_string(i));
  }
  EXPECT_EQ(enclave_.records_received(), 10u);
}

TEST_F(SecureChannelTest, EmptyRecordAllowed) {
  ASSERT_TRUE(client_.Send({}).ok());
  auto got = enclave_.Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_F(SecureChannelTest, TamperedCiphertextRejected) {
  ASSERT_TRUE(client_.Send(ToBytes("sensitive")).ok());
  // Corrupt one ciphertext byte in flight.
  auto b_end = pipe_.EndB();
  auto raw = b_end.Read(12 + 9 + 32);
  ASSERT_TRUE(raw.ok());
  (*raw)[12] ^= 0xff;
  // Re-inject through the A->B direction by writing at the enclave's inbox.
  // (Endpoint B reads from a_to_b; we need to write into that queue, which
  // only EndA can do.)
  pipe_.EndA().Write(ByteView(raw->data(), raw->size()));
  EXPECT_EQ(enclave_.Receive().status().code(), StatusCode::kIntegrityError);
}

TEST_F(SecureChannelTest, TamperedLengthRejected) {
  ASSERT_TRUE(client_.Send(ToBytes("abcdef")).ok());
  auto raw = pipe_.EndB().Read(12 + 6 + 32);
  ASSERT_TRUE(raw.ok());
  (*raw)[0] ^= 0x01;  // flip a length bit; record now misparses
  pipe_.EndA().Write(ByteView(raw->data(), raw->size()));
  EXPECT_FALSE(enclave_.Receive().ok());
}

TEST_F(SecureChannelTest, ReplayedRecordRejected) {
  ASSERT_TRUE(client_.Send(ToBytes("first")).ok());
  auto raw = pipe_.EndB().Read(12 + 5 + 32);
  ASSERT_TRUE(raw.ok());
  // Deliver the record once (accepted), then replay it (sequence mismatch).
  pipe_.EndA().Write(ByteView(raw->data(), raw->size()));
  ASSERT_TRUE(enclave_.Receive().ok());
  pipe_.EndA().Write(ByteView(raw->data(), raw->size()));
  EXPECT_EQ(enclave_.Receive().status().code(), StatusCode::kProtocolError);
}

TEST_F(SecureChannelTest, ReflectedRecordRejected) {
  // A record the client sent must not authenticate when fed back to the
  // client as if it came from the enclave (per-direction keys).
  ASSERT_TRUE(client_.Send(ToBytes("boomerang")).ok());
  auto raw = pipe_.EndB().Read(12 + 9 + 32);
  ASSERT_TRUE(raw.ok());
  pipe_.EndB().Write(ByteView(raw->data(), raw->size()));  // reflect to client
  EXPECT_EQ(client_.Receive().status().code(), StatusCode::kIntegrityError);
}

TEST_F(SecureChannelTest, TruncatedRecordIsProtocolError) {
  ASSERT_TRUE(client_.Send(ToBytes("cut short")).ok());
  auto raw = pipe_.EndB().Read(12 + 4);  // swallow part of the record
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(enclave_.Receive().status().code(), StatusCode::kProtocolError);
}

TEST_F(SecureChannelTest, LargeRecordRoundTrip) {
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(client_.Send(big).ok());
  auto got = enclave_.Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

// ---- Half-close / EOF semantics -------------------------------------------

TEST(ByteQueueTest, CloseStopsWritesButDrainsPendingBytes) {
  ByteQueue q;
  q.Write(ToBytes("pending"));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.AtEof());  // bytes still queued
  q.Write(ToBytes("late"));  // discarded: nothing follows a close
  EXPECT_EQ(q.Available(), 7u);
  auto drained = q.Read(7);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(q.AtEof());
}

TEST(ByteQueueTest, ReadStraddlingEofIsProtocolError) {
  ByteQueue q;
  q.Write(ToBytes("abc"));
  q.Close();
  // A read past what the peer will ever send must fail loudly, not block.
  const Status short_read = q.Read(4).status();
  EXPECT_EQ(short_read.code(), StatusCode::kProtocolError);
  EXPECT_NE(short_read.ToString().find("EOF"), std::string::npos);
}

TEST(DuplexPipeTest, HalfCloseIsPerDirection) {
  DuplexPipe pipe;
  pipe.EndA().CloseWrite();
  EXPECT_TRUE(pipe.EndB().PeerClosed());
  EXPECT_TRUE(pipe.EndB().AtEof());
  // The other direction still flows.
  EXPECT_FALSE(pipe.EndA().PeerClosed());
  pipe.EndB().Write(ToBytes("reply"));
  auto got = pipe.EndA().Read(5);
  ASSERT_TRUE(got.ok());
}

TEST_F(SecureChannelTest, CleanEofBetweenRecordsIsNotAnError) {
  ASSERT_TRUE(client_.Send(ToBytes("last words")).ok());
  pipe_.EndA().CloseWrite();
  auto got = enclave_.TryReceive();
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  // After the final record, EOF reads as "no more records", never an error.
  auto drained = enclave_.TryReceive();
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(drained->has_value());
}

TEST_F(SecureChannelTest, EofInsideRecordHeaderIsProtocolError) {
  ASSERT_TRUE(client_.Send(ToBytes("cut off")).ok());
  // Deliver only part of the 12-byte header, then the peer vanishes.
  auto header_prefix = pipe_.EndB().Read(5);
  ASSERT_TRUE(header_prefix.ok());
  Bytes rest(pipe_.EndB().Available());
  ASSERT_TRUE(pipe_.EndB().Read(rest.size()).ok());
  DuplexPipe relay;
  relay.EndA().Write(ByteView(header_prefix->data(), 5));
  relay.EndA().CloseWrite();
  SecureChannel receiver(relay.EndB(), keys_, /*is_enclave_side=*/true);
  const auto got = receiver.TryReceive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(got.status().ToString().find("EOF"), std::string::npos);
}

TEST_F(SecureChannelTest, EofInsidePayloadIsProtocolError) {
  ASSERT_TRUE(client_.Send(ToBytes("truncated payload")).ok());
  const size_t whole = pipe_.EndB().Available();
  auto partial = pipe_.EndB().Read(whole - 3);  // keep header, lose the tail
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(pipe_.EndB().Read(3).ok());
  DuplexPipe relay;
  relay.EndA().Write(ByteView(partial->data(), partial->size()));
  relay.EndA().CloseWrite();
  SecureChannel receiver(relay.EndB(), keys_, /*is_enclave_side=*/true);
  const auto got = receiver.TryReceive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kProtocolError);
}

TEST(SecureChannelKeysTest, WrongMasterKeyFailsAuthentication) {
  DuplexPipe pipe;
  const Bytes m1 = ToBytes("master-one");
  const Bytes m2 = ToBytes("master-two");
  SecureChannel sender(pipe.EndA(), SessionKeys::Derive(ByteView(m1.data(), m1.size())), false);
  SecureChannel receiver(pipe.EndB(), SessionKeys::Derive(ByteView(m2.data(), m2.size())), true);
  ASSERT_TRUE(sender.Send(ToBytes("hello")).ok());
  EXPECT_EQ(receiver.Receive().status().code(), StatusCode::kIntegrityError);
}

}  // namespace
}  // namespace engarde::crypto
