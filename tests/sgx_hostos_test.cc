#include "sgx/hostos.h"

#include <gtest/gtest.h>

namespace engarde::sgx {
namespace {

EnclaveLayout SmallLayout() {
  EnclaveLayout layout;
  layout.bootstrap_pages = 2;
  layout.heap_pages = 4;
  layout.load_pages = 4;
  layout.stack_pages = 2;
  layout.tls_pages = 1;
  return layout;
}

class HostOsTest : public ::testing::Test {
 protected:
  HostOsTest() : device_(SgxDevice::Options{.epc_pages = 64}), host_(&device_) {}

  SgxDevice device_;
  HostOs host_;
};

TEST_F(HostOsTest, BuildEnclaveCreatesAllRegions) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, ToBytes("BOOTSTRAP"));
  ASSERT_TRUE(eid.ok()) << eid.status().ToString();
  EXPECT_TRUE(device_.IsInitialized(*eid));
  EXPECT_EQ(device_.PageCount(*eid), layout.TotalPages());
  EXPECT_TRUE(device_.HasPage(*eid, layout.BootstrapStart()));
  EXPECT_TRUE(device_.HasPage(*eid, layout.HeapStart()));
  EXPECT_TRUE(device_.HasPage(*eid, layout.LoadStart()));
  EXPECT_TRUE(device_.HasPage(*eid, layout.StackStart()));
  EXPECT_TRUE(device_.HasPage(*eid, layout.TlsStart()));
}

TEST_F(HostOsTest, BootstrapIsExecutableHeapIsNot) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, ToBytes("BOOTSTRAP"));
  ASSERT_TRUE(eid.ok());
  auto boot = device_.EpcmPerms(*eid, layout.BootstrapStart());
  auto heap = device_.EpcmPerms(*eid, layout.HeapStart());
  ASSERT_TRUE(boot.ok() && heap.ok());
  EXPECT_EQ(*boot, PagePerms::RX());
  EXPECT_EQ(*heap, PagePerms::RW());
}

TEST_F(HostOsTest, BootstrapContentLandsInEnclave) {
  const EnclaveLayout layout = SmallLayout();
  const Bytes image = ToBytes("ENGARDE-v1+liblink+stackprot");
  auto eid = host_.BuildEnclave(layout, image);
  ASSERT_TRUE(eid.ok());
  Bytes readback(image.size());
  ASSERT_TRUE(device_
                  .EnclaveRead(*eid, layout.BootstrapStart(),
                               MutableByteView(readback.data(), readback.size()))
                  .ok());
  EXPECT_EQ(readback, image);
}

TEST_F(HostOsTest, OversizedBootstrapRejected) {
  EnclaveLayout layout = SmallLayout();
  layout.bootstrap_pages = 1;
  const Bytes image(2 * kPageSize, 0x90);
  EXPECT_FALSE(host_.BuildEnclave(layout, image).ok());
}

TEST_F(HostOsTest, DifferentBootstrapsDifferentMeasurements) {
  auto e1 = host_.BuildEnclave(SmallLayout(), ToBytes("policy-set-A"));
  auto e2 = host_.BuildEnclave(SmallLayout(), ToBytes("policy-set-B"));
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_NE(*device_.Measurement(*e1), *device_.Measurement(*e2));
}

TEST_F(HostOsTest, PageTablePermsDefaultPermissive) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());
  EXPECT_EQ(host_.PageTablePerms(*eid, layout.HeapStart()), PagePerms::RWX());
}

TEST_F(HostOsTest, PageTableRestrictionsAffectAccess) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());
  // Heap page is EPCM-RW; restrict page tables to R only -> writes fault.
  ASSERT_TRUE(host_.SetPageTablePerms(*eid, layout.HeapStart(), 1,
                                      PagePerms::R())
                  .ok());
  EXPECT_EQ(device_.EnclaveWrite(*eid, layout.HeapStart(), ToBytes("x")).code(),
            StatusCode::kPermissionDenied);
  // Restore and the write goes through.
  ASSERT_TRUE(host_.SetPageTablePerms(*eid, layout.HeapStart(), 1,
                                      PagePerms::RW())
                  .ok());
  EXPECT_TRUE(device_.EnclaveWrite(*eid, layout.HeapStart(), ToBytes("x")).ok());
}

TEST_F(HostOsTest, ApplyWxPolicySplitsLoadRegion) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  const uint64_t code_page = layout.LoadStart();
  const uint64_t data_page = layout.LoadStart() + kPageSize;
  ASSERT_TRUE(host_.ApplyWxPolicy(*eid, layout, 2, {code_page}).ok());
  ASSERT_TRUE(host_.HardenWxInEpcm(*eid, {code_page}).ok());

  // Code page: executable, not writable (both levels on SGX2).
  EXPECT_EQ(host_.PageTablePerms(*eid, code_page), PagePerms::RX());
  EXPECT_EQ(*device_.EpcmPerms(*eid, code_page), PagePerms::RX());
  EXPECT_EQ(device_.EnclaveWrite(*eid, code_page, ToBytes("!")).code(),
            StatusCode::kPermissionDenied);

  // Data page: writable, not executable.
  EXPECT_EQ(host_.PageTablePerms(*eid, data_page), PagePerms::RW());
  EXPECT_EQ(*device_.EpcmPerms(*eid, data_page), PagePerms::RW());
  EXPECT_TRUE(device_.EnclaveWrite(*eid, data_page, ToBytes("!")).ok());
}

TEST_F(HostOsTest, ApplyWxPolicyRejectsPagesOutsideLoadRegion) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());
  // Claiming the bootstrap region as "client code" is a protocol violation.
  EXPECT_FALSE(
      host_.ApplyWxPolicy(*eid, layout, 1, {layout.BootstrapStart()}).ok());
  // As is claiming a span beyond the load region.
  EXPECT_FALSE(host_.ApplyWxPolicy(*eid, layout, layout.load_pages + 1, {})
                   .ok());
}

TEST_F(HostOsTest, LockPreventsAugmentation) {
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  ASSERT_TRUE(host_.LockEnclave(*eid).ok());
  EXPECT_TRUE(host_.IsLocked(*eid));
  const Status s = host_.AugmentPages(*eid, layout.TlsStart() + kPageSize, 1);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

TEST_F(HostOsTest, Sgx1WxGapIsObservable) {
  // On SGX1 the EPCM cannot be restricted: after ApplyWxPolicy the page
  // tables say RX but the EPCM still says RW(X) — and since the page tables
  // are *host-controlled*, a malicious host can silently flip them back.
  // This is the attack surface (AsyncShock et al.) that makes the paper
  // require SGX2.
  SgxDevice sgx1(SgxDevice::Options{.epc_pages = 64, .sgx_version = 1});
  HostOs host1(&sgx1);
  const EnclaveLayout layout = SmallLayout();
  auto eid = host1.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());

  const uint64_t code_page = layout.LoadStart();
  ASSERT_TRUE(host1.ApplyWxPolicy(*eid, layout, 1, {code_page}).ok());
  // EPCM hardening is impossible on version-1 silicon.
  EXPECT_EQ(host1.HardenWxInEpcm(*eid, {code_page}).code(),
            StatusCode::kUnimplemented);
  // Page tables enforce for now...
  EXPECT_EQ(sgx1.EnclaveWrite(*eid, code_page, ToBytes("!")).code(),
            StatusCode::kPermissionDenied);
  // ...but the EPCM was never restricted (SGX1), so the host can revert.
  EXPECT_EQ(*sgx1.EpcmPerms(*eid, code_page), PagePerms::RW());
  ASSERT_TRUE(
      host1.SetPageTablePerms(*eid, code_page, 1, PagePerms::RWX()).ok());
  EXPECT_TRUE(sgx1.EnclaveWrite(*eid, code_page, ToBytes("!")).ok());

  // On SGX2 the same revert is useless: the EPCM level still blocks writes.
  SgxDevice sgx2(SgxDevice::Options{.epc_pages = 64, .sgx_version = 2});
  HostOs host2(&sgx2);
  auto eid2 = host2.BuildEnclave(layout, {});
  ASSERT_TRUE(eid2.ok());
  ASSERT_TRUE(host2.ApplyWxPolicy(*eid2, layout, 1, {code_page}).ok());
  ASSERT_TRUE(host2.HardenWxInEpcm(*eid2, {code_page}).ok());
  ASSERT_TRUE(
      host2.SetPageTablePerms(*eid2, code_page, 1, PagePerms::RWX()).ok());
  EXPECT_EQ(sgx2.EnclaveWrite(*eid2, code_page, ToBytes("!")).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(HostOsTest, AugmentWorksBeforeLock) {
  // Build an enclave whose linear range is larger than its committed pages
  // by using a custom ECREATE through the device, then EAUG into the gap.
  const EnclaveLayout layout = SmallLayout();
  auto eid = host_.BuildEnclave(layout, {});
  ASSERT_TRUE(eid.ok());
  // All pages committed: augmenting over an existing page fails cleanly.
  EXPECT_FALSE(host_.AugmentPages(*eid, layout.HeapStart(), 1).ok());
}

}  // namespace
}  // namespace engarde::sgx
