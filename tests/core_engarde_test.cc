// End-to-end integration tests for the full EnGarde provisioning flow:
// attestation -> key exchange -> encrypted transfer -> inspection -> load ->
// W^X -> lock -> execution, plus the rejection and tamper paths.
#include "core/engarde.h"

#include <gtest/gtest.h>

#include "client/client.h"
#include "elf/builder.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

using client::Client;
using client::ClientOptions;
using workload::BuildProgram;
using workload::ProgramSpec;

constexpr size_t kTestRsaBits = 768;  // small keys keep the suite fast

EngardeOptions TestOptions() {
  EngardeOptions options;
  options.rsa_bits = kTestRsaBits;
  options.layout.bootstrap_pages = 4;
  options.layout.heap_pages = 256;
  options.layout.load_pages = 64;
  options.layout.stack_pages = 8;
  return options;
}

ProgramSpec CompliantSpec() {
  ProgramSpec spec;
  spec.name = "integration";
  spec.seed = 7;
  spec.target_instructions = 2500;
  spec.stack_protection = true;
  spec.ifcc = true;
  spec.indirect_call_sites = 3;
  return spec;
}

// All three policies, configured consistently with CompliantSpec.
PolicySet FullPolicySet(const workload::SynthLibcOptions& libc_options) {
  PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc_options);
  EXPECT_TRUE(db.ok());
  policies.push_back(std::make_unique<LibraryLinkingPolicy>(
      "synth-musl v" + libc_options.version, std::move(db).value()));
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  policies.push_back(std::make_unique<IndirectCallPolicy>());
  return policies;
}

class EngardeIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("integration-device"),
                                             kTestRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }
  static const sgx::QuotingEnclave& qe() { return *qe_; }

  // Runs the whole protocol for `program` under `policies`; returns the
  // enclave-side outcome and stores the client verdict.
  Result<ProvisionOutcome> RunProtocol(const workload::BuiltProgram& program,
                                       PolicySet policies,
                                       bool keep_enclave = false) {
    device_.emplace(sgx::SgxDevice::Options{.epc_pages = 512}, &accountant_);
    host_.emplace(&*device_);

    EngardeOptions options = TestOptions();
    auto expected = EngardeEnclave::ExpectedMeasurement(policies, options);
    if (!expected.ok()) return expected.status();

    auto enclave =
        EngardeEnclave::Create(&*host_, qe(), std::move(policies), options);
    if (!enclave.ok()) return enclave.status();

    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave->SendHello(pipe.EndA()));

    ClientOptions client_options;
    client_options.attestation_key = qe().attestation_public_key();
    client_options.expected_measurement = *expected;
    Client client(client_options, program.image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));

    auto outcome = enclave->RunProvisioning(pipe.EndA());
    if (!outcome.ok()) return outcome.status();

    auto verdict = client.AwaitVerdict();
    if (!verdict.ok()) return verdict.status();
    client_verdict_ = *verdict;

    if (keep_enclave) enclave_.emplace(std::move(enclave).value());
    return outcome;
  }

  sgx::CycleAccountant accountant_;
  std::optional<sgx::SgxDevice> device_;
  std::optional<sgx::HostOs> host_;
  std::optional<EngardeEnclave> enclave_;
  Verdict client_verdict_;

 private:
  static sgx::QuotingEnclave* qe_;
};

sgx::QuotingEnclave* EngardeIntegrationTest::qe_ = nullptr;

TEST_F(EngardeIntegrationTest, CompliantProgramAccepted) {
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto outcome = RunProtocol(*program, FullPolicySet(program->libc_options));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  EXPECT_TRUE(outcome->verdict.compliant) << outcome->verdict.reason;
  EXPECT_TRUE(client_verdict_.compliant);
  EXPECT_TRUE(outcome->provider_report.compliant);
  EXPECT_FALSE(outcome->provider_report.executable_pages.empty());
  EXPECT_EQ(outcome->stats.instruction_count, program->emitted_insn_count);
  EXPECT_GT(outcome->stats.relocations_applied, 0u);
  EXPECT_TRUE(outcome->load.has_value());
}

TEST_F(EngardeIntegrationTest, AcceptedProgramExecutes) {
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok());
  auto outcome = RunProtocol(*program, FullPolicySet(program->libc_options),
                             /*keep_enclave=*/true);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->verdict.compliant) << outcome->verdict.reason;

  ASSERT_TRUE(enclave_.has_value());
  auto rax = enclave_->ExecuteClientProgram();
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  // The program terminates; its checksum is deterministic across runs.
  auto rax2 = enclave_->ExecuteClientProgram();
  ASSERT_TRUE(rax2.ok());
  EXPECT_EQ(*rax, *rax2);
}

TEST_F(EngardeIntegrationTest, ExecuteBeforeProvisionFails) {
  device_.emplace(sgx::SgxDevice::Options{.epc_pages = 512}, &accountant_);
  host_.emplace(&*device_);
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok());
  auto enclave = EngardeEnclave::Create(
      &*host_, qe(), FullPolicySet(program->libc_options), TestOptions());
  ASSERT_TRUE(enclave.ok());
  EXPECT_EQ(enclave->ExecuteClientProgram().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EngardeIntegrationTest, WrongLibcVersionRejected) {
  ProgramSpec spec = CompliantSpec();
  spec.libc.version = "1.0.4";  // client links the vulnerable version
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  // Policy set pins v1.0.5.
  workload::SynthLibcOptions db_options = program->libc_options;
  db_options.version = "1.0.5";
  auto outcome = RunProtocol(*program, FullPolicySet(db_options));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->verdict.compliant);
  EXPECT_NE(outcome->verdict.reason.find("library-linking"),
            std::string::npos);
  EXPECT_FALSE(outcome->provider_report.compliant);
  EXPECT_TRUE(outcome->provider_report.executable_pages.empty());
  // The client received the same verdict.
  EXPECT_FALSE(client_verdict_.compliant);
}

TEST_F(EngardeIntegrationTest, MissingStackProtectorRejected) {
  ProgramSpec spec = CompliantSpec();
  spec.sabotage_one_function = true;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto outcome = RunProtocol(*program, FullPolicySet(program->libc_options));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->verdict.compliant);
  EXPECT_NE(outcome->verdict.reason.find("stack-protection"),
            std::string::npos);
}

TEST_F(EngardeIntegrationTest, UnguardedIndirectCallRejected) {
  ProgramSpec spec = CompliantSpec();
  spec.ifcc = false;
  spec.unguarded_indirect_call = true;
  spec.stack_protection = true;
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  auto outcome = RunProtocol(*program, FullPolicySet(program->libc_options));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->verdict.compliant);
  EXPECT_NE(outcome->verdict.reason.find("indirect-call-check"),
            std::string::npos);
}

TEST_F(EngardeIntegrationTest, RejectionLeaksNothingToProvider) {
  ProgramSpec spec = CompliantSpec();
  spec.libc.version = "1.0.4";
  auto program = BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  workload::SynthLibcOptions db_options = program->libc_options;
  db_options.version = "1.0.5";
  auto outcome = RunProtocol(*program, FullPolicySet(db_options));
  ASSERT_TRUE(outcome.ok());
  // The provider report carries only the compliance bit on rejection — the
  // detailed reason goes to the client alone over the encrypted channel.
  EXPECT_FALSE(outcome->provider_report.compliant);
  EXPECT_TRUE(outcome->provider_report.executable_pages.empty());
  EXPECT_FALSE(client_verdict_.reason.empty());
}

TEST_F(EngardeIntegrationTest, EnclaveLockedAfterProvisioning) {
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok());
  auto outcome = RunProtocol(*program, FullPolicySet(program->libc_options),
                             /*keep_enclave=*/true);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->verdict.compliant);
  // "The host OS component of EnGarde also prevents the enclave from being
  // extended after it has been provisioned."
  EXPECT_TRUE(host_->IsLocked(enclave_->enclave_id()));
  EXPECT_EQ(host_->AugmentPages(enclave_->enclave_id(), 0x10000000, 1).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(EngardeIntegrationTest, CodePagesNotWritableAfterLoad) {
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok());
  auto outcome = RunProtocol(*program, FullPolicySet(program->libc_options),
                             /*keep_enclave=*/true);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->verdict.compliant);
  for (const uint64_t page : outcome->provider_report.executable_pages) {
    EXPECT_EQ(device_->EnclaveWrite(enclave_->enclave_id(), page,
                                    ToBytes("inject"))
                  .code(),
              StatusCode::kPermissionDenied)
        << "code page writable after W^X";
  }
}

TEST_F(EngardeIntegrationTest, WrongMeasurementAbortsClientBeforeSending) {
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok());

  device_.emplace(sgx::SgxDevice::Options{.epc_pages = 512}, &accountant_);
  host_.emplace(&*device_);
  auto enclave = EngardeEnclave::Create(
      &*host_, qe(), FullPolicySet(program->libc_options), TestOptions());
  ASSERT_TRUE(enclave.ok());

  crypto::DuplexPipe pipe;
  ASSERT_TRUE(enclave->SendHello(pipe.EndA()).ok());

  ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.expected_measurement = {};  // wrong pin
  Client client(client_options, program->image);
  const Status status = client.SendProgram(pipe.EndB());
  ASSERT_EQ(status.code(), StatusCode::kIntegrityError);
  // Nothing confidential crossed the wire: the client stopped at attestation.
  EXPECT_EQ(pipe.EndA().Available(), 0u);
}

TEST_F(EngardeIntegrationTest, GarbageExecutableRejectedCleanly) {
  workload::BuiltProgram garbage;
  garbage.name = "garbage";
  // A well-formed *manifest* path requires a parsable ELF on the client side;
  // craft a minimal valid ELF whose text is junk that fails disassembly.
  elf::ElfBuilder builder;
  Bytes junk = {0x0f, 0x10, 0x00, 0x90};  // SSE movups: unsupported
  junk.resize(32, 0x90);
  const uint64_t tv = builder.AddTextSection(".text", junk);
  builder.AddSymbol("main", tv, 4, elf::kSttFunc);
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());
  garbage.image = *image;

  auto outcome = RunProtocol(garbage, FullPolicySet({}));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->verdict.compliant);
  EXPECT_NE(outcome->verdict.reason.find("UNIMPLEMENTED"), std::string::npos);
}

TEST_F(EngardeIntegrationTest, MeasurementDependsOnPolicySet) {
  EngardeOptions options = TestOptions();
  PolicySet with_stackprot;
  with_stackprot.push_back(std::make_unique<StackProtectionPolicy>());
  PolicySet with_ifcc;
  with_ifcc.push_back(std::make_unique<IndirectCallPolicy>());

  auto m1 = EngardeEnclave::ExpectedMeasurement(with_stackprot, options);
  auto m2 = EngardeEnclave::ExpectedMeasurement(with_ifcc, options);
  ASSERT_TRUE(m1.ok() && m2.ok());
  // Different agreed policy sets -> different MRENCLAVE -> a client always
  // notices if the provider runs different policies than negotiated.
  EXPECT_NE(*m1, *m2);
}

TEST_F(EngardeIntegrationTest, EmptyPolicySetAcceptsAnyValidBinary) {
  auto program = BuildProgram(CompliantSpec());
  ASSERT_TRUE(program.ok());
  auto outcome = RunProtocol(*program, PolicySet{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->verdict.compliant) << outcome->verdict.reason;
}

}  // namespace
}  // namespace engarde::core
