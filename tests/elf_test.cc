#include <gtest/gtest.h>

#include "elf/builder.h"
#include "elf/reader.h"

namespace engarde::elf {
namespace {

// A minimal well-formed executable: one text section with two "functions",
// one data section, bss, a relocation and an entry point.
ElfBuilder MakeBasicBuilder() {
  ElfBuilder b;
  Bytes text(64, 0x90);  // NOPs
  text[32] = 0xc3;       // RET at the second function
  const uint64_t text_vaddr = b.AddTextSection(".text", text);
  const uint64_t data_vaddr = b.AddDataSection(".data", ToBytes("hello world"));
  const uint64_t bss_vaddr = b.AddBss(256);
  b.AddSymbol("main", text_vaddr, 32, kSttFunc);
  b.AddSymbol("helper", text_vaddr + 32, 32, kSttFunc);
  b.AddSymbol("greeting", data_vaddr, 11, kSttObject);
  b.AddSymbol("buffer", bss_vaddr, 256, kSttObject, kStbLocal);
  b.AddRelativeRelocation(data_vaddr, static_cast<int64_t>(text_vaddr));
  b.SetEntry(text_vaddr);
  return b;
}

Bytes MakeBasicImage() {
  auto image = MakeBasicBuilder().Build();
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return *image;
}

TEST(ElfBuilderTest, BuildsNonEmptyImage) {
  const Bytes image = MakeBasicImage();
  ASSERT_GT(image.size(), kEhdrSize);
  EXPECT_EQ(image[0], 0x7f);
  EXPECT_EQ(image[1], 'E');
}

TEST(ElfBuilderTest, RequiresText) {
  ElfBuilder b;
  EXPECT_EQ(b.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ElfBuilderTest, TextSectionsAreBundleAligned) {
  ElfBuilder b;
  const uint64_t t1 = b.AddTextSection(".text", Bytes(33, 0x90));
  const uint64_t t2 = b.AddTextSection(".text.cold", Bytes(10, 0x90));
  EXPECT_EQ(t1 % 32, 0u);
  EXPECT_EQ(t2 % 32, 0u);
  EXPECT_GE(t2, t1 + 33);
}

TEST(ElfBuilderTest, DataFollowsTextPageAligned) {
  ElfBuilder b;
  const uint64_t t = b.AddTextSection(".text", Bytes(100, 0x90));
  const uint64_t d = b.AddDataSection(".data", Bytes(8, 0));
  EXPECT_EQ(d % kPageSize, 0u);
  EXPECT_GT(d, t);
}

TEST(ElfReaderTest, ParsesBasicImage) {
  const Bytes image = MakeBasicImage();
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  EXPECT_EQ(file->header().type, kEtDyn);
  EXPECT_EQ(file->header().machine, kEmX8664);
  EXPECT_EQ(file->header().entry, 0x1000u);
}

TEST(ElfReaderTest, FindsSectionsByName) {
  auto file = ElfFile::Parse(MakeBasicImage());
  ASSERT_TRUE(file.ok());
  EXPECT_NE(file->SectionByName(".text"), nullptr);
  EXPECT_NE(file->SectionByName(".data"), nullptr);
  EXPECT_NE(file->SectionByName(".bss"), nullptr);
  EXPECT_NE(file->SectionByName(".rela.dyn"), nullptr);
  EXPECT_NE(file->SectionByName(".dynamic"), nullptr);
  EXPECT_NE(file->SectionByName(".symtab"), nullptr);
  EXPECT_EQ(file->SectionByName(".no.such.section"), nullptr);
}

TEST(ElfReaderTest, TextSectionsDetected) {
  ElfBuilder b;
  b.AddTextSection(".text", Bytes(32, 0x90));
  b.AddTextSection(".text.hot", Bytes(32, 0x90));
  b.AddDataSection(".data", Bytes(8, 0));
  b.AddSymbol("f", 0x1000, 32, kSttFunc);
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const auto texts = file->TextSections();
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(texts[0]->name, ".text");
  EXPECT_EQ(texts[1]->name, ".text.hot");
  EXPECT_TRUE(texts[0]->flags & kShfExecinstr);
}

TEST(ElfReaderTest, SectionContentRoundTrips) {
  auto file = ElfFile::Parse(MakeBasicImage());
  ASSERT_TRUE(file.ok());
  const Shdr* data = file->SectionByName(".data");
  ASSERT_NE(data, nullptr);
  auto content = file->SectionContent(*data);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(*content), "hello world");

  // NOBITS (.bss) content is empty but the header carries the size.
  const Shdr* bss = file->SectionByName(".bss");
  ASSERT_NE(bss, nullptr);
  EXPECT_EQ(bss->size, 256u);
  auto bss_content = file->SectionContent(*bss);
  ASSERT_TRUE(bss_content.ok());
  EXPECT_TRUE(bss_content->empty());
}

TEST(ElfReaderTest, SymbolsResolved) {
  auto file = ElfFile::Parse(MakeBasicImage());
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->symbols().size(), 5u);  // null + 4 declared
  // Null symbol first.
  EXPECT_TRUE(file->symbols()[0].name.empty());
  // Locals sort before globals: "buffer" is the only local.
  EXPECT_EQ(file->symbols()[1].name, "buffer");
  EXPECT_EQ(SymBind(file->symbols()[1].info), kStbLocal);

  bool found_main = false;
  for (const Sym& s : file->symbols()) {
    if (s.name == "main") {
      found_main = true;
      EXPECT_TRUE(s.IsFunction());
      EXPECT_EQ(s.value, 0x1000u);
      EXPECT_EQ(s.size, 32u);
    }
  }
  EXPECT_TRUE(found_main);
}

TEST(ElfReaderTest, RelocationsResolved) {
  auto file = ElfFile::Parse(MakeBasicImage());
  ASSERT_TRUE(file.ok());
  ASSERT_EQ(file->relocations().size(), 1u);
  const Rela& r = file->relocations()[0];
  EXPECT_EQ(r.type, kRX8664Relative);
  EXPECT_EQ(r.addend, 0x1000);
  EXPECT_EQ(r.offset % 8, 0u);
}

TEST(ElfReaderTest, DynamicTableResolved) {
  auto file = ElfFile::Parse(MakeBasicImage());
  ASSERT_TRUE(file.ok());
  const auto rela_addr = file->DynamicValue(kDtRela);
  const auto rela_size = file->DynamicValue(kDtRelasz);
  const auto rela_ent = file->DynamicValue(kDtRelaent);
  ASSERT_TRUE(rela_addr.has_value());
  ASSERT_TRUE(rela_size.has_value());
  ASSERT_TRUE(rela_ent.has_value());
  EXPECT_EQ(*rela_size, kRelaSize);
  EXPECT_EQ(*rela_ent, kRelaSize);
  EXPECT_FALSE(file->DynamicValue(999).has_value());

  // DT_RELA points at the .rela.dyn section's vaddr.
  const Shdr* rela_sec = file->SectionByName(".rela.dyn");
  ASSERT_NE(rela_sec, nullptr);
  EXPECT_EQ(*rela_addr, rela_sec->addr);
}

TEST(ElfReaderTest, ValidatesBasicImageForEnclave) {
  auto file = ElfFile::Parse(MakeBasicImage());
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->ValidateForEnclave().ok());
}

// ---- Malformed input rejection -------------------------------------------

TEST(ElfReaderTest, RejectsTruncatedFile) {
  EXPECT_FALSE(ElfFile::Parse(Bytes(10, 0)).ok());
  EXPECT_FALSE(ElfFile::Parse({}).ok());
}

TEST(ElfReaderTest, RejectsBadMagic) {
  Bytes image = MakeBasicImage();
  image[0] = 0x7e;
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfReaderTest, Rejects32BitClass) {
  Bytes image = MakeBasicImage();
  image[4] = 1;  // ELFCLASS32
  auto r = ElfFile::Parse(image);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("64-bit"), std::string::npos);
}

TEST(ElfReaderTest, RejectsBigEndian) {
  Bytes image = MakeBasicImage();
  image[5] = 2;  // ELFDATA2MSB
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfReaderTest, RejectsSectionBeyondEof) {
  Bytes image = MakeBasicImage();
  // Corrupt the section header table offset to point past the end.
  StoreLe64(image.data() + 40, image.size() + 1000);
  EXPECT_FALSE(ElfFile::Parse(image).ok());
}

TEST(ElfReaderTest, TruncationAnywhereNeverCrashes) {
  // Parsing any prefix of a valid image must fail cleanly, not crash.
  const Bytes image = MakeBasicImage();
  for (size_t len = 0; len < image.size(); len += 97) {
    auto r = ElfFile::Parse(ByteView(image.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(ElfReaderTest, BitFlipsNeverCrash) {
  // Flip bytes across the header/metadata region; Parse must either succeed
  // or fail cleanly. (Content flips are fine; geometry flips must be caught.)
  const Bytes image = MakeBasicImage();
  for (size_t pos = 0; pos < std::min<size_t>(image.size(), 4096); pos += 13) {
    Bytes mutated = image;
    mutated[pos] ^= 0xff;
    (void)ElfFile::Parse(mutated);  // must not crash or hang
  }
  SUCCEED();
}

// ---- EnGarde front-door validation ----------------------------------------

TEST(ValidateTest, RejectsNonPie) {
  Bytes image = MakeBasicImage();
  StoreLe16(image.data() + 16, kEtExec);
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok());
  const Status s = file->ValidateForEnclave();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("position-independent"), std::string::npos);
}

TEST(ValidateTest, RejectsWrongMachine) {
  Bytes image = MakeBasicImage();
  StoreLe16(image.data() + 18, 40);  // EM_ARM
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(file->ValidateForEnclave().ok());
}

TEST(ValidateTest, RejectsStrippedBinary) {
  ElfBuilder b;
  b.AddTextSection(".text", Bytes(32, 0x90));
  // No function symbols at all.
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const Status s = file->ValidateForEnclave();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("stripped"), std::string::npos);
}

TEST(ValidateTest, RejectsWritableExecutableSegment) {
  Bytes image = MakeBasicImage();
  // Set the W bit on the text PT_LOAD (phdr index 1).
  uint8_t* p = image.data() + kEhdrSize + 1 * kPhdrSize;
  ASSERT_EQ(LoadLe32(p), kPtLoad);
  StoreLe32(p + 4, kPfR | kPfW | kPfX);
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->ValidateForEnclave().code(), StatusCode::kPolicyViolation);
}

TEST(ValidateTest, RejectsEntryOutsideText) {
  ElfBuilder b = MakeBasicBuilder();
  b.SetEntry(0x10);  // inside the header page, not executable
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const Status s = file->ValidateForEnclave();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("entry point"), std::string::npos);
}

TEST(ValidateTest, RejectsInterpSegment) {
  Bytes image = MakeBasicImage();
  // Rewrite the first PT_LOAD as PT_INTERP (type 3) to simulate a
  // dynamically-linked binary.
  uint8_t* p = image.data() + kEhdrSize;
  StoreLe32(p, 3);
  auto file = ElfFile::Parse(image);
  ASSERT_TRUE(file.ok());
  const Status s = file->ValidateForEnclave();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("statically linked"), std::string::npos);
}

// Round-trip property over varying section shapes.
class ElfRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(ElfRoundTrip, ContentSurvives) {
  const size_t text_size = GetParam();
  ElfBuilder b;
  Bytes text(text_size);
  for (size_t i = 0; i < text.size(); ++i) text[i] = static_cast<uint8_t>(i);
  const uint64_t tv = b.AddTextSection(".text", text);
  b.AddSymbol("f", tv, text_size, kSttFunc);
  auto image = b.Build();
  ASSERT_TRUE(image.ok());
  auto file = ElfFile::Parse(*image);
  ASSERT_TRUE(file.ok());
  const Shdr* sec = file->SectionByName(".text");
  ASSERT_NE(sec, nullptr);
  auto content = file->SectionContent(*sec);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(Bytes(content->begin(), content->end()), text);
  EXPECT_TRUE(file->ValidateForEnclave().ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElfRoundTrip,
                         ::testing::Values(1, 31, 32, 33, 4095, 4096, 4097,
                                           65536));

}  // namespace
}  // namespace engarde::elf
