// Connection-lifecycle hardening of the provisioning front end
// (core/frontend.h): per-state deadlines measured against an injected
// monotonic clock, the reaper that retires terminal connections from the
// slot-mapped table, containment of per-connection transport faults, and the
// soak gates — after a 1k-session mixed run the front end must hold O(active)
// connections with its EPC budget back at zero, and after a TCP soak the
// process must hold exactly its baseline fd count. Fault schedules come from
// net::FaultInjectingTransport so every pathology is deterministic.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "client/client.h"
#include "core/frontend.h"
#include "core/frontend_group.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 512;  // small keys keep the 1k-session soak fast
constexpr size_t kPrograms = 8;

PolicySet MakePolicies() {
  PolicySet policies;
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  return policies;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& q) {
  client::ClientOptions options;
  options.attestation_key = q.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

// Deterministic monotonic clock for the deadline tests: time moves only when
// the test says so, so "the client went silent for 110ms" is a statement,
// not a sleep.
struct FakeClock {
  std::shared_ptr<std::atomic<uint64_t>> now_ns =
      std::make_shared<std::atomic<uint64_t>>(uint64_t{1});

  std::function<uint64_t()> fn() const {
    auto cell = now_ns;
    return [cell] { return cell->load(std::memory_order_relaxed); };
  }
  void AdvanceMs(uint64_t ms) {
    now_ns->fetch_add(ms * 1000000ull, std::memory_order_relaxed);
  }
};

class ReaperTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("reaper-device"),
                                             kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    programs_ = new std::vector<workload::BuiltProgram>();
    for (size_t i = 0; i < kPrograms; ++i) {
      workload::ProgramSpec spec;
      spec.name = "reaper-" + std::to_string(i);
      spec.seed = 9300 + i;
      spec.target_instructions = 2500;
      // Even programs carry stack protectors (compliant), odd ones violate.
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      programs_->push_back(std::move(program).value());
    }
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete programs_;
    programs_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const Bytes& image(size_t client) {
    return (*programs_)[client % kPrograms].image;
  }
  static bool compliant(size_t client) { return (client % kPrograms) % 2 == 0; }

  static EngardeOptions EnclaveOptions() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  // EPC sized for `enclaves` concurrent enclaves (layout pages + SECS) plus
  // the front end's default reserve.
  static size_t EpcPagesFor(size_t enclaves) {
    return enclaves * (EnclaveOptions().layout.TotalPages() + 1) + 64;
  }

  static sgx::QuotingEnclave* qe_;
  static std::vector<workload::BuiltProgram>* programs_;
};

sgx::QuotingEnclave* ReaperTest::qe_ = nullptr;
std::vector<workload::BuiltProgram>* ReaperTest::programs_ = nullptr;

// Same invariants as the serial-vs-frontend gate in core_frontend_test.cc.
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  size_t stage_count = 0;
  uint64_t idle_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

Snapshot Snap(const ProvisionOutcome& outcome,
              const sgx::CycleAccountant& accountant) {
  Snapshot snap;
  snap.compliant = outcome.verdict.compliant;
  snap.reason = outcome.verdict.reason;
  snap.instruction_count = outcome.stats.instruction_count;
  snap.blocks_received = outcome.stats.blocks_received;
  snap.relocations_applied = outcome.stats.relocations_applied;
  snap.stage_count = outcome.stage_reports.size();
  snap.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  snap.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  snap.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  snap.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  snap.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  snap.total_sgx = accountant.total_sgx_instructions();
  snap.trampolines = accountant.total_trampolines();
  return snap;
}

auto SnapKey(const Snapshot& s) {
  return std::make_tuple(s.compliant, s.reason, s.instruction_count,
                         s.blocks_received, s.relocations_applied,
                         s.stage_count, s.idle_sgx, s.channel_sgx,
                         s.disassembly_sgx, s.policy_sgx, s.loading_sgx,
                         s.total_sgx, s.trampolines);
}

void ExpectSameSnapshot(const Snapshot& serial, const Snapshot& frontend,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, frontend.compliant) << label;
  EXPECT_EQ(serial.reason, frontend.reason) << label;
  EXPECT_EQ(serial.instruction_count, frontend.instruction_count) << label;
  EXPECT_EQ(serial.blocks_received, frontend.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, frontend.relocations_applied) << label;
  EXPECT_EQ(serial.stage_count, frontend.stage_count) << label;
  EXPECT_EQ(serial.idle_sgx, frontend.idle_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, frontend.channel_sgx) << label;
  EXPECT_EQ(serial.disassembly_sgx, frontend.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, frontend.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, frontend.loading_sgx) << label;
  EXPECT_EQ(serial.total_sgx, frontend.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, frontend.trampolines) << label;
}

// Serial reference: the same client population driven one by one through
// ProvisioningServer::Drive on a fresh device.
Result<std::vector<Snapshot>> RunSerial(const sgx::QuotingEnclave& qe,
                                        const std::vector<Bytes>& images,
                                        const EngardeOptions& enclave_options,
                                        size_t epc_pages) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = enclave_options;
  ProvisioningServer server(&host, &qe, MakePolicies, options);

  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    if (index != i) return InternalError("unexpected session index");
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Snapshot> snaps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome, server.Drive(i));
    snaps.push_back(Snap(outcome, server.session_accountant(i)));
  }
  return snaps;
}

// One in-memory frontend client (EndA = frontend side, EndB = client side).
struct MemoryClient {
  std::unique_ptr<crypto::DuplexPipe> pipe;
  std::unique_ptr<client::Client> client;
  uint64_t connection = 0;
  bool sent = false;
  std::optional<Verdict> verdict;
};

Result<MemoryClient> ConnectMemoryClient(ProvisioningFrontend& frontend,
                                         const Bytes& image,
                                         client::ClientOptions options) {
  MemoryClient mc;
  mc.pipe = std::make_unique<crypto::DuplexPipe>();
  mc.client = std::make_unique<client::Client>(std::move(options), image);
  ASSIGN_OR_RETURN(
      mc.connection,
      frontend.Accept(std::make_unique<net::PipeTransport>(mc.pipe->EndA())));
  return mc;
}

// Sweeps `poll` until every client holds a verdict, letting the blocking
// client library consume whole protocol units as they land.
template <typename Poll>
Status DriveClients(Poll&& poll, std::vector<MemoryClient>& clients) {
  for (;;) {
    ASSIGN_OR_RETURN(size_t progress, poll());
    for (MemoryClient& mc : clients) {
      if (!mc.sent && net::HasCompleteFrames(mc.pipe->EndB(), 3)) {
        ASSIGN_OR_RETURN(const auto retry,
                         mc.client->AwaitAdmission(mc.pipe->EndB()));
        if (retry.has_value()) {
          return InternalError("unexpected RetryAfter in reaper test");
        }
        RETURN_IF_ERROR(mc.client->SendProgram(mc.pipe->EndB()));
        mc.sent = true;
        ++progress;
      }
      if (mc.sent && !mc.verdict.has_value() &&
          net::HasCompleteSecureRecord(mc.pipe->EndB())) {
        ASSIGN_OR_RETURN(Verdict verdict, mc.client->AwaitVerdict());
        mc.verdict.emplace(std::move(verdict));
        ++progress;
      }
    }
    bool all_done = true;
    for (const MemoryClient& mc : clients) {
      all_done = all_done && mc.verdict.has_value();
    }
    if (all_done) return Status::Ok();
    if (progress == 0) {
      return InternalError("no progress before all verdicts");
    }
  }
}

Status DriveToVerdicts(ProvisioningFrontend& frontend,
                       std::vector<MemoryClient>& clients) {
  return DriveClients([&frontend] { return frontend.PollOnce(); }, clients);
}

// ---- Deadlines -------------------------------------------------------------

TEST_F(ReaperTest, SlowLorisReclaimedAtIdleDeadlineAndQueuedClientAdmits) {
  // Budget for exactly one enclave: a silent admitted client is the only
  // thing standing between the queued client and admission.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 4;
  options.idle_deadline_ms = 100;
  options.clock = clock.fn();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  const uint64_t per_enclave = EnclaveOptions().layout.TotalPages();
  ASSERT_LT(frontend.budget_pages(), 2 * per_enclave);

  auto loris =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(loris.ok()) << loris.status().ToString();
  ASSERT_EQ(frontend.state(loris->connection), ConnectionState::kActive);
  auto waiter =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(waiter.ok()) << waiter.status().ToString();
  ASSERT_EQ(frontend.state(waiter->connection), ConnectionState::kQueued);
  EXPECT_EQ(frontend.committed_pages(), per_enclave);

  // 50ms of silence: under the deadline, nothing happens.
  clock.AdvanceMs(50);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(loris->connection), ConnectionState::kActive);
  EXPECT_EQ(frontend.state(waiter->connection), ConnectionState::kQueued);

  // 110ms total: the loris expires, its enclave's pages come back, and the
  // queued client admits in the same sweep.
  clock.AdvanceMs(60);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(loris->connection), ConnectionState::kTimedOut);
  const Status loris_status = frontend.connection_status(loris->connection);
  EXPECT_EQ(loris_status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(loris_status.message().find("inbound-idle"), std::string::npos)
      << loris_status.ToString();
  EXPECT_EQ(frontend.state(waiter->connection), ConnectionState::kActive);
  EXPECT_EQ(frontend.timed_out_count(), 1u);
  EXPECT_EQ(frontend.queued_count(), 0u);
  EXPECT_EQ(frontend.committed_pages(), per_enclave);  // the waiter's now

  // The loris's wire carries the full parting sequence: admission preamble
  // (control + quote + key) followed by the deadline notice.
  crypto::DuplexPipe::Endpoint loris_end = loris->pipe->EndB();
  auto hello_control = ReadControlFrame(loris_end);
  ASSERT_TRUE(hello_control.ok());
  EXPECT_EQ(hello_control->type, ControlType::kHelloFollows);
  ASSERT_TRUE(ReadFrame(loris_end).ok());  // quote
  ASSERT_TRUE(ReadFrame(loris_end).ok());  // RSA key
  auto parting = ReadControlFrame(loris_end);
  ASSERT_TRUE(parting.ok());
  ASSERT_EQ(parting->type, ControlType::kDeadlineExceeded);
  auto notice = DeadlineNotice::Deserialize(
      ByteView(parting->body.data(), parting->body.size()));
  ASSERT_TRUE(notice.ok());
  EXPECT_EQ(notice->deadline_ms, 100u);
  EXPECT_GE(notice->elapsed_ms, 100u);

  // The admitted waiter completes normally.
  std::vector<MemoryClient> clients;
  clients.push_back(std::move(waiter).value());
  const Status driven = DriveToVerdicts(frontend, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  EXPECT_TRUE(clients[0].verdict->compliant);
  ASSERT_TRUE(frontend.TakeOutcome(clients[0].connection).ok());

  // The reaper retires both: the table, the budget, the metrics all agree.
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(loris->connection), ConnectionState::kReaped);
  EXPECT_EQ(frontend.state(clients[0].connection), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.reaped_count(), 2u);

  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.accepted, 2u);
  EXPECT_EQ(metrics.admitted, 2u);
  EXPECT_EQ(metrics.queued, 1u);
  EXPECT_EQ(metrics.timed_out, 1u);
  EXPECT_EQ(metrics.done, 1u);
  EXPECT_EQ(metrics.reaped, 2u);
  EXPECT_EQ(metrics.live_connections, 0u);
  EXPECT_EQ(metrics.peak_live_connections, 2u);
  EXPECT_EQ(metrics.session_count, 2u);
  // The waiter's admission waited out the loris's 110ms.
  EXPECT_GE(metrics.admission_wait_max_ns, 100u * 1000000u);
}

TEST_F(ReaperTest, QueueWaitDeadlineExpiresAndClientSeesTheNotice) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.admission_queue_capacity = 4;
  options.queue_deadline_ms = 80;
  options.clock = clock.fn();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto holder =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(holder.ok());
  ASSERT_EQ(frontend.state(holder->connection), ConnectionState::kActive);
  auto waiter =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(waiter.ok());
  ASSERT_EQ(frontend.state(waiter->connection), ConnectionState::kQueued);

  // The holder keeps its enclave (no idle deadline armed); only the queued
  // arrival's wait is on the clock.
  clock.AdvanceMs(100);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(holder->connection), ConnectionState::kActive);
  EXPECT_EQ(frontend.state(waiter->connection), ConnectionState::kTimedOut);
  EXPECT_EQ(frontend.connection_status(waiter->connection).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(frontend.queued_count(), 0u);

  // Nothing else was ever written to a queued connection, so the client's
  // own AwaitAdmission surfaces the deadline as its admission answer.
  const auto admission = waiter->client->AwaitAdmission(waiter->pipe->EndB());
  ASSERT_FALSE(admission.ok());
  EXPECT_EQ(admission.status().code(), StatusCode::kDeadlineExceeded);

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(waiter->connection), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_count(), 1u);  // the holder lives on
  EXPECT_EQ(frontend.state(holder->connection), ConnectionState::kActive);
}

TEST_F(ReaperTest, SessionDeadlineCapsTheExchangeEvenWithInboundProgress) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.session_deadline_ms = 200;
  options.clock = clock.fn();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto mc =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(mc.ok());
  // The client is live — it even delivers its whole program — but the
  // overall session budget has already run out by the next sweep.
  auto admission = mc->client->AwaitAdmission(mc->pipe->EndB());
  ASSERT_TRUE(admission.ok());
  ASSERT_FALSE(admission->has_value());
  ASSERT_TRUE(mc->client->SendProgram(mc->pipe->EndB()).ok());

  clock.AdvanceMs(250);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(mc->connection), ConnectionState::kTimedOut);
  const Status status = frontend.connection_status(mc->connection);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("session"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(frontend.committed_pages(), 0u);

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
}

// ---- Slot map --------------------------------------------------------------

TEST_F(ReaperTest, StaleIdsNeverAliasReusedSlots) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto first =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(first.ok());
  const uint64_t first_id = first->connection;
  EXPECT_EQ(first_id, 0u);  // slot 0, generation 0

  std::vector<MemoryClient> clients;
  clients.push_back(std::move(first).value());
  ASSERT_TRUE(DriveToVerdicts(frontend, clients).ok());
  ASSERT_TRUE(frontend.TakeOutcome(first_id).ok());
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(first_id), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_status(first_id).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(frontend.TakeOutcome(first_id).ok());
  EXPECT_EQ(frontend.connection_count(), 0u);

  // The next accept reuses slot 0 under a bumped generation: a fresh id the
  // stale one can never alias.
  auto second =
      ConnectMemoryClient(frontend, image(1), ClientOptionsFor(qe()));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->connection, uint64_t{1} << 32);  // slot 0, generation 1
  EXPECT_EQ(frontend.state(second->connection), ConnectionState::kActive);
  EXPECT_EQ(frontend.state(first_id), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_count(), 1u);
  EXPECT_EQ(frontend.reaped_count(), 1u);
}

// ---- Fault injection -------------------------------------------------------

TEST_F(ReaperTest, MidFrameCloseFailsAndReapsTheConnection) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto pipe = std::make_unique<crypto::DuplexPipe>();
  net::FaultPlan plan;
  plan.close_inbound_after = 48;  // EOF inside the wrapped-key frame
  auto accepted = frontend.Accept(std::make_unique<net::FaultInjectingTransport>(
      std::make_unique<net::PipeTransport>(pipe->EndA()), plan));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  const uint64_t id = *accepted;

  client::Client client(ClientOptionsFor(qe()), image(0));
  auto admission = client.AwaitAdmission(pipe->EndB());
  ASSERT_TRUE(admission.ok());
  ASSERT_FALSE(admission->has_value());
  ASSERT_TRUE(client.SendProgram(pipe->EndB()).ok());

  for (int sweep = 0;
       sweep < 10 && frontend.state(id) == ConnectionState::kActive; ++sweep) {
    ASSERT_TRUE(frontend.PollOnce().ok());
  }
  EXPECT_EQ(frontend.state(id), ConnectionState::kFailed);
  const Status status = frontend.connection_status(id);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mid-frame"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(frontend.committed_pages(), 0u);

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kReaped);
  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.reaped, 1u);
  EXPECT_EQ(metrics.live_connections, 0u);
}

TEST_F(ReaperTest, ShortWritesStillDeliverTheVerdict) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto pipe = std::make_unique<crypto::DuplexPipe>();
  net::FaultPlan plan;
  plan.max_flush_bytes = 7;  // severely congested outbound path
  auto transport = std::make_unique<net::FaultInjectingTransport>(
      std::make_unique<net::PipeTransport>(pipe->EndA()), plan);
  net::FaultInjectingTransport* fault = transport.get();
  auto accepted = frontend.Accept(std::move(transport));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  const uint64_t id = *accepted;

  client::Client client(ClientOptionsFor(qe()), image(0));
  crypto::DuplexPipe::Endpoint client_end = pipe->EndB();
  bool sent = false;
  std::optional<Verdict> verdict;
  for (int sweep = 0; sweep < 5000 && !verdict.has_value(); ++sweep) {
    ASSERT_TRUE(frontend.PollOnce().ok());
    if (!sent && net::HasCompleteFrames(client_end, 3)) {
      auto admission = client.AwaitAdmission(client_end);
      ASSERT_TRUE(admission.ok());
      ASSERT_FALSE(admission->has_value());
      ASSERT_TRUE(client.SendProgram(client_end).ok());
      sent = true;
    }
    if (sent && net::HasCompleteSecureRecord(client_end)) {
      auto v = client.AwaitVerdict();
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      verdict.emplace(std::move(v).value());
    }
  }
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->compliant);
  // The whole hello + verdict actually went out 7 bytes at a time.
  EXPECT_GT(fault->flush_calls(), 20u);
  ASSERT_TRUE(frontend.TakeOutcome(id).ok());

  // DrainAll keeps sweeping through the trickle until the tail lands and
  // the reaper can retire the slot.
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_count(), 0u);
}

TEST_F(ReaperTest, InjectedDrainFaultFailsOnlyThatConnection) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  const uint64_t per_enclave = EnclaveOptions().layout.TotalPages();

  auto faulty_pipe = std::make_unique<crypto::DuplexPipe>();
  net::FaultPlan plan;
  plan.fail_drain_on_call = 1;  // recv blows up on the very first sweep
  auto accepted = frontend.Accept(std::make_unique<net::FaultInjectingTransport>(
      std::make_unique<net::PipeTransport>(faulty_pipe->EndA()), plan));
  ASSERT_TRUE(accepted.ok());
  const uint64_t faulty_id = *accepted;

  auto healthy =
      ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(healthy.ok());

  // The faulty wire fails its own connection; the sweep — and the healthy
  // neighbor — carry on.
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(faulty_id), ConnectionState::kFailed);
  const Status status = frontend.connection_status(faulty_id);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected drain fault"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(frontend.committed_pages(), per_enclave);  // healthy's only

  std::vector<MemoryClient> clients;
  clients.push_back(std::move(healthy).value());
  ASSERT_TRUE(DriveToVerdicts(frontend, clients).ok());
  EXPECT_TRUE(clients[0].verdict->compliant);
  ASSERT_TRUE(frontend.TakeOutcome(clients[0].connection).ok());

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.done, 1u);
  EXPECT_EQ(metrics.reaped, 2u);
}

TEST_F(ReaperTest, InjectedFlushFaultFailsOnlyThatConnection) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto pipe = std::make_unique<crypto::DuplexPipe>();
  net::FaultPlan plan;
  // Calls 1-2 flush the hello at admission (Send flushes eagerly); call 3 —
  // the first sweep's outbound flush — fails.
  plan.fail_flush_on_call = 3;
  auto accepted = frontend.Accept(std::make_unique<net::FaultInjectingTransport>(
      std::make_unique<net::PipeTransport>(pipe->EndA()), plan));
  ASSERT_TRUE(accepted.ok());
  const uint64_t id = *accepted;

  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kFailed);
  EXPECT_NE(frontend.connection_status(id).message().find(
                "injected flush fault"),
            std::string::npos);
  EXPECT_EQ(frontend.committed_pages(), 0u);

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kReaped);
  EXPECT_EQ(frontend.connection_count(), 0u);
}

TEST_F(ReaperTest, StalledInboundTripsTheIdleDeadline) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FakeClock clock;
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.idle_deadline_ms = 100;
  options.clock = clock.fn();
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto pipe = std::make_unique<crypto::DuplexPipe>();
  net::FaultPlan plan;
  plan.stall_inbound_after = 32;  // the peer dribbles 32 bytes, then silence
  auto accepted = frontend.Accept(std::make_unique<net::FaultInjectingTransport>(
      std::make_unique<net::PipeTransport>(pipe->EndA()), plan));
  ASSERT_TRUE(accepted.ok());
  const uint64_t id = *accepted;

  client::Client client(ClientOptionsFor(qe()), image(0));
  auto admission = client.AwaitAdmission(pipe->EndB());
  ASSERT_TRUE(admission.ok());
  ASSERT_FALSE(admission->has_value());
  ASSERT_TRUE(client.SendProgram(pipe->EndB()).ok());

  // The 32 delivered bytes count as progress on the sweep they arrive...
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kActive);
  // ...but the stall that follows runs out the idle budget.
  clock.AdvanceMs(110);
  ASSERT_TRUE(frontend.PollOnce().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kTimedOut);
  EXPECT_EQ(frontend.connection_status(id).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(frontend.committed_pages(), 0u);

  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
}

// ---- Soaks -----------------------------------------------------------------

TEST_F(ReaperTest, ThousandSessionSoakStaysBoundedAndBitIdentical) {
  constexpr size_t kPerWave = kPrograms;
  constexpr size_t kWaves = 125;  // 1000 sessions

  std::vector<Bytes> wave_images;
  for (size_t i = 0; i < kPerWave; ++i) wave_images.push_back(image(i));
  auto serial =
      RunSerial(qe(), wave_images, EnclaveOptions(), EpcPagesFor(kPerWave));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  std::vector<Snapshot> serial_sorted = std::move(serial).value();
  std::sort(serial_sorted.begin(), serial_sorted.end(),
            [](const Snapshot& a, const Snapshot& b) {
              return SnapKey(a) < SnapKey(b);
            });

  // Two reactors over a shared budget that holds four enclaves: every wave
  // exercises queueing, admission hand-off, verdict harvest and the reaper.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(4)});
  sgx::HostOs host(&device);
  FrontendGroupOptions options;
  options.frontend.enclave_options = EnclaveOptions();
  options.frontend.admission_queue_capacity = kPerWave;
  options.reactors = 2;
  std::vector<Snapshot> wave_snaps;
  FrontendGroup* group_ptr = nullptr;
  options.on_verdict = [&wave_snaps, &group_ptr](
                           size_t reactor, uint64_t connection,
                           const ProvisionOutcome& outcome, bool /*pool*/) {
    wave_snaps.push_back(
        Snap(outcome, group_ptr->reactor(reactor).accountant(connection)));
  };
  FrontendGroup group(&host, &qe(), MakePolicies, options);
  group_ptr = &group;

  for (size_t wave = 0; wave < kWaves; ++wave) {
    wave_snaps.clear();
    std::vector<MemoryClient> clients;
    for (size_t i = 0; i < kPerWave; ++i) {
      MemoryClient mc;
      mc.pipe = std::make_unique<crypto::DuplexPipe>();
      mc.client = std::make_unique<client::Client>(ClientOptionsFor(qe()),
                                                   wave_images[i]);
      group.Dispatch(std::make_unique<net::PipeTransport>(mc.pipe->EndA()));
      clients.push_back(std::move(mc));
    }
    const Status driven =
        DriveClients([&group] { return group.PollOnce(); }, clients);
    ASSERT_TRUE(driven.ok()) << "wave " << wave << ": " << driven.ToString();
    ASSERT_EQ(wave_snaps.size(), kPerWave) << wave;

    // Accounting is bit-identical to the serial drive, wave after wave, no
    // matter which reactor served which client.
    std::sort(wave_snaps.begin(), wave_snaps.end(),
              [](const Snapshot& a, const Snapshot& b) {
                return SnapKey(a) < SnapKey(b);
              });
    for (size_t i = 0; i < kPerWave; ++i) {
      ExpectSameSnapshot(serial_sorted[i], wave_snaps[i],
                         "wave " + std::to_string(wave) + " rank " +
                             std::to_string(i));
    }

    // O(active): after the wave drains, the table is empty again — no
    // retained connections, no held pages, and the queue-depth gauge is back
    // at zero on every reactor (lazily-dropped stale FIFO entries included).
    ASSERT_TRUE(group.DrainAll().ok());
    ASSERT_EQ(group.connection_count(), 0u) << wave;
    ASSERT_EQ(group.budget().committed_pages(), 0u) << wave;
    ASSERT_EQ(group.metrics().queue_depth, 0u) << wave;
    for (size_t r = 0; r < options.reactors; ++r) {
      ASSERT_EQ(group.reactor(r).queued_count(), 0u) << wave << " r" << r;
    }
  }

  const FrontendMetrics metrics = group.metrics();
  EXPECT_EQ(metrics.accepted, kWaves * kPerWave);
  EXPECT_EQ(metrics.done, kWaves * kPerWave);
  EXPECT_EQ(metrics.reaped, kWaves * kPerWave);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.timed_out, 0u);
  EXPECT_EQ(metrics.shed, 0u);
  EXPECT_EQ(metrics.live_connections, 0u);
  EXPECT_LE(metrics.peak_live_connections, kPerWave);
  EXPECT_LE(metrics.max_committed_pages, metrics.budget_pages);
  EXPECT_EQ(metrics.committed_pages, 0u);
  EXPECT_EQ(metrics.queue_depth, 0u);
}

size_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") ++count;
  }
  closedir(dir);
  return count;  // includes the enumeration fd itself; the bias cancels
}

// Blocking TCP client used by the fd soak (same shape as the serve selftest).
Status RunTcpSoakClient(uint16_t port, const client::ClientOptions& options,
                        const Bytes& executable) {
  auto socket = net::TcpTransport::Connect("127.0.0.1", port);
  if (!socket.ok()) return socket.status();
  crypto::DuplexPipe pipe;
  crypto::DuplexPipe::Endpoint client_end = pipe.EndB();
  client::Client client(options, executable);

  const auto pump_until = [&](auto ready) -> Status {
    while (!ready()) {
      Bytes inbound;
      ASSIGN_OR_RETURN(const size_t drained, (*socket)->Drain(inbound));
      crypto::DuplexPipe::Endpoint bridge = pipe.EndA();
      if (drained > 0) bridge.Write(ByteView(inbound));
      const size_t pending = bridge.Available();
      size_t moved = drained;
      if (pending > 0) {
        ASSIGN_OR_RETURN(const Bytes outbound, bridge.Read(pending));
        RETURN_IF_ERROR((*socket)->Send(ByteView(outbound)));
        moved += pending;
      }
      RETURN_IF_ERROR((*socket)->Flush().status());
      if (moved == 0) {
        if ((*socket)->AtEof() && client_end.Available() == 0) {
          return ProtocolError("server closed before the exchange completed");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return Status::Ok();
  };

  RETURN_IF_ERROR(pump_until(
      [&client_end] { return net::HasCompleteFrames(client_end, 1); }));
  ASSIGN_OR_RETURN(const std::optional<RetryAfter> retry,
                   client.AwaitAdmission(client_end));
  if (retry.has_value()) {
    return ResourceExhaustedError("unexpected shed in fd soak");
  }
  RETURN_IF_ERROR(pump_until(
      [&client_end] { return net::HasCompleteFrames(client_end, 2); }));
  RETURN_IF_ERROR(client.SendProgram(client_end));
  RETURN_IF_ERROR(pump_until(
      [&client_end] { return net::HasCompleteSecureRecord(client_end); }));
  ASSIGN_OR_RETURN(const Verdict verdict, client.AwaitVerdict());
  (void)verdict;
  (*socket)->Close();
  return Status::Ok();
}

TEST_F(ReaperTest, TcpSoakReturnsFdsAndPagesToBaseline) {
  constexpr size_t kPerWave = 8;
  constexpr size_t kSoakWaves = 4;

  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendGroupOptions options;
  options.frontend.enclave_options = EnclaveOptions();
  options.frontend.admission_queue_capacity = kPerWave;
  options.reactors = 1;
  std::atomic<size_t> verdicts{0};
  options.on_verdict = [&verdicts](size_t, uint64_t, const ProvisionOutcome&,
                                   bool) {
    verdicts.fetch_add(1, std::memory_order_relaxed);
  };
  FrontendGroup group(&host, &qe(), MakePolicies, options);

  auto listener = net::TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = listener->port();
  group.AttachListener(&listener.value());

  const size_t fd_baseline = CountOpenFds();
  ASSERT_TRUE(group.Start().ok());

  for (size_t wave = 0; wave < kSoakWaves; ++wave) {
    std::vector<std::thread> threads;
    std::vector<Status> failures(kPerWave);
    for (size_t i = 0; i < kPerWave; ++i) {
      threads.emplace_back([&, i] {
        failures[i] = RunTcpSoakClient(port, ClientOptionsFor(qe()), image(i));
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (size_t i = 0; i < kPerWave; ++i) {
      EXPECT_TRUE(failures[i].ok())
          << "wave " << wave << " client " << i << ": "
          << failures[i].ToString();
    }
    // The reactor thread keeps sweeping: harvested verdicts clear the way
    // for the reaper, which closes the server-side fds.
    for (int spin = 0; spin < 5000 && group.connection_count() != 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(group.connection_count(), 0u) << "wave " << wave;
  }

  ASSERT_TRUE(group.Stop().ok());
  EXPECT_EQ(verdicts.load(), kSoakWaves * kPerWave);
  // Every socket the soak opened — client side and server side — is closed:
  // the process is back at its pre-soak fd count.
  EXPECT_EQ(CountOpenFds(), fd_baseline);
  EXPECT_EQ(group.budget().committed_pages(), 0u);
  const FrontendMetrics metrics = group.metrics();
  EXPECT_EQ(metrics.done, kSoakWaves * kPerWave);
  EXPECT_EQ(metrics.reaped, kSoakWaves * kPerWave);
  EXPECT_EQ(metrics.live_connections, 0u);
}

// ---- TCP bind satellites ---------------------------------------------------

TEST(TcpBindTest, RejectsMalformedHost) {
  auto listener = net::TcpListener::Bind("not-an-address", 0);
  ASSERT_FALSE(listener.ok());
  EXPECT_EQ(listener.status().code(), StatusCode::kInvalidArgument);
}

TEST(TcpBindTest, WildcardHostBindsAnEphemeralPort) {
  auto listener = net::TcpListener::Bind("0.0.0.0", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0u);
}

}  // namespace
}  // namespace engarde::core
