#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"

namespace engarde::crypto {
namespace {

std::string MacHex(ByteView key, ByteView data) {
  return HexEncode(DigestView(HmacSha256::Mac(key, data)));
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = ToBytes("Hi There");
  EXPECT_EQ(MacHex(key, data),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: key shorter than block size.
TEST(HmacTest, Rfc4231Case2) {
  const Bytes key = ToBytes("Jefe");
  const Bytes data = ToBytes("what do ya want for nothing?");
  EXPECT_EQ(MacHex(key, data),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa key, 0xdd data.
TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(MacHex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key larger than block size (must be hashed first).
TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes data = ToBytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(MacHex(key, data),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, IncrementalMatchesOneShot) {
  const Bytes key = ToBytes("secret key");
  const Bytes data = ToBytes("chunked message body for the mac");
  HmacSha256 mac(key);
  mac.Update(ByteView(data.data(), 5));
  mac.Update(ByteView(data.data() + 5, data.size() - 5));
  EXPECT_EQ(mac.Finalize(), HmacSha256::Mac(key, data));
}

TEST(HmacTest, DifferentKeysDifferentTags) {
  const Bytes data = ToBytes("same message");
  EXPECT_NE(HmacSha256::Mac(ToBytes("key1"), data),
            HmacSha256::Mac(ToBytes("key2"), data));
}

TEST(DrbgTest, DeterministicPerSeed) {
  HmacDrbg a(ToBytes("seed"));
  HmacDrbg b(ToBytes("seed"));
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(DrbgTest, DifferentSeedsDiverge) {
  HmacDrbg a(ToBytes("seed-a"));
  HmacDrbg b(ToBytes("seed-b"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, OutputAdvances) {
  HmacDrbg drbg(ToBytes("seed"));
  const Bytes first = drbg.Generate(32);
  const Bytes second = drbg.Generate(32);
  EXPECT_NE(first, second);
}

TEST(DrbgTest, ReseedChangesStream) {
  HmacDrbg a(ToBytes("seed"));
  HmacDrbg b(ToBytes("seed"));
  (void)a.Generate(16);
  (void)b.Generate(16);
  b.Reseed(ToBytes("extra entropy"));
  EXPECT_NE(a.Generate(32), b.Generate(32));
}

TEST(DrbgTest, SplitRequestsMatchSingleRequest) {
  // Generating 48 bytes in one call vs 16+32 must differ is NOT required by
  // SP 800-90A (each Generate call finishes with a state update); pin the
  // actual behaviour: calls are state-separated.
  HmacDrbg a(ToBytes("seed"));
  HmacDrbg b(ToBytes("seed"));
  const Bytes one = a.Generate(48);
  Bytes split = b.Generate(16);
  const Bytes tail = b.Generate(32);
  split.insert(split.end(), tail.begin(), tail.end());
  EXPECT_EQ(ByteView(one.data(), 16).size(), 16u);
  EXPECT_EQ(Bytes(one.begin(), one.begin() + 16),
            Bytes(split.begin(), split.begin() + 16));
  EXPECT_NE(one, split);  // state update between calls separates the tails
}

TEST(DrbgTest, NextU64Deterministic) {
  HmacDrbg a(ToBytes("x"));
  HmacDrbg b(ToBytes("x"));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(DrbgTest, ByteDistributionRoughlyUniform) {
  HmacDrbg drbg(ToBytes("distribution"));
  const Bytes sample = drbg.Generate(65536);
  size_t counts[256] = {};
  for (uint8_t byte : sample) ++counts[byte];
  // Expected 256 per bucket; allow a generous +/- 50% band.
  for (int v = 0; v < 256; ++v) {
    EXPECT_GT(counts[v], 128u) << "value " << v;
    EXPECT_LT(counts[v], 384u) << "value " << v;
  }
}

}  // namespace
}  // namespace engarde::crypto
