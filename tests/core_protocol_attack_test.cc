// Adversarial protocol tests: an active network attacker (or the cloud
// provider itself, per the threat model) manipulating the wire between the
// client and the enclave, plus multi-tenant isolation checks.
#include <gtest/gtest.h>

#include "client/client.h"
#include "core/engarde.h"
#include "core/policy_stackprot.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 768;

class ProtocolAttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("atk-device"), kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    workload::ProgramSpec spec;
    spec.seed = 123;
    spec.target_instructions = 2000;
    auto program = workload::BuildProgram(spec);
    ASSERT_TRUE(program.ok());
    image_ = new Bytes(program->image);
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete image_;
    image_ = nullptr;
  }

  static EngardeOptions Options() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  static sgx::QuotingEnclave* qe_;
  static Bytes* image_;
};

sgx::QuotingEnclave* ProtocolAttackTest::qe_ = nullptr;
Bytes* ProtocolAttackTest::image_ = nullptr;

TEST_F(ProtocolAttackTest, MitmKeySubstitutionDetected) {
  // The attacker intercepts the hello, keeps the genuine quote, but swaps in
  // their own RSA public key hoping the client wraps the AES key for them.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 512});
  sgx::HostOs host(&device);
  auto enclave =
      EngardeEnclave::Create(&host, *qe_, PolicySet{}, Options());
  ASSERT_TRUE(enclave.ok());

  crypto::DuplexPipe upstream;    // enclave <-> attacker
  crypto::DuplexPipe downstream;  // attacker <-> client
  ASSERT_TRUE(enclave->SendHello(upstream.EndA()).ok());

  // Attacker reads the two hello frames...
  auto attacker_end = upstream.EndB();
  auto quote_frame = ReadFrame(attacker_end);
  auto key_frame = ReadFrame(attacker_end);
  ASSERT_TRUE(quote_frame.ok() && key_frame.ok());

  // ...and forwards the quote unchanged but substitutes their own key.
  crypto::HmacDrbg attacker_rng(ToBytes("attacker"));
  auto attacker_key = crypto::RsaGenerateKey(kRsaBits, attacker_rng);
  ASSERT_TRUE(attacker_key.ok());
  auto a_end = downstream.EndA();
  ASSERT_TRUE(WriteFrame(a_end, ByteView(quote_frame->data(),
                                         quote_frame->size()))
                  .ok());
  const Bytes evil_key = attacker_key->public_key.Serialize();
  ASSERT_TRUE(
      WriteFrame(a_end, ByteView(evil_key.data(), evil_key.size())).ok());

  client::ClientOptions client_options;
  client_options.attestation_key = qe_->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, *image_);
  const Status status = client.SendProgram(downstream.EndB());
  ASSERT_EQ(status.code(), StatusCode::kIntegrityError);
  EXPECT_NE(status.message().find("bound"), std::string::npos);
  // Nothing confidential left the client.
  EXPECT_EQ(downstream.EndA().Available(), 0u);
}

TEST_F(ProtocolAttackTest, ReplayedQuoteFromOtherEnclaveDetected) {
  // The attacker replays a *genuine* quote of enclave A while fronting for
  // enclave B (whose key they relay). Keys are bound per-quote, so the
  // binding check fails.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 1024});
  sgx::HostOs host(&device);
  EngardeOptions options_a = Options();
  options_a.enclave_entropy = {1};
  EngardeOptions options_b = Options();
  options_b.enclave_entropy = {2};
  // Different entropy -> different ephemeral RSA keys, same measurement.
  auto enclave_a = EngardeEnclave::Create(&host, *qe_, PolicySet{}, options_a);
  auto enclave_b = EngardeEnclave::Create(&host, *qe_, PolicySet{}, options_b);
  ASSERT_TRUE(enclave_a.ok() && enclave_b.ok());

  crypto::DuplexPipe wire;
  // Frankenstein hello: A's quote, B's public key.
  const Bytes quote_wire = enclave_a->quote().Serialize();
  const Bytes key_wire = enclave_b->public_key().Serialize();
  auto end = wire.EndA();
  ASSERT_TRUE(WriteFrame(end, ByteView(quote_wire.data(), quote_wire.size())).ok());
  ASSERT_TRUE(WriteFrame(end, ByteView(key_wire.data(), key_wire.size())).ok());

  client::ClientOptions client_options;
  client_options.attestation_key = qe_->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, *image_);
  EXPECT_EQ(client.SendProgram(wire.EndB()).code(),
            StatusCode::kIntegrityError);
}

TEST_F(ProtocolAttackTest, CorruptedBlockAbortsProvisioningHard) {
  // Bit flips inside an encrypted block are a channel-integrity failure —
  // a hard protocol error, NOT a policy verdict (the enclave cannot know
  // what the client actually sent).
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 512});
  sgx::HostOs host(&device);
  auto enclave = EngardeEnclave::Create(&host, *qe_, PolicySet{}, Options());
  ASSERT_TRUE(enclave.ok());

  crypto::DuplexPipe pipe;
  ASSERT_TRUE(enclave->SendHello(pipe.EndA()).ok());
  client::ClientOptions client_options;
  client_options.attestation_key = qe_->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, *image_);
  ASSERT_TRUE(client.SendProgram(pipe.EndB()).ok());

  // Corrupt one byte somewhere in the middle of the queued ciphertext: pull
  // everything off the wire, flip, re-inject.
  auto b_end = pipe.EndB();
  const size_t queued = pipe.EndA().Available();
  ASSERT_GT(queued, 1000u);
  auto raw = pipe.EndA().Read(queued);
  ASSERT_TRUE(raw.ok());
  (*raw)[queued / 2] ^= 0x01;
  b_end.Write(ByteView(raw->data(), raw->size()));

  auto outcome = enclave->RunProvisioning(pipe.EndA());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kIntegrityError);
}

TEST_F(ProtocolAttackTest, MultiTenantIsolation) {
  // Two tenants on one machine: each provisions its own enclave; neither
  // can read the other's plaintext, and the device keeps their pages apart.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 2048});
  sgx::HostOs host(&device);

  auto run_tenant = [&](uint64_t seed, Bytes entropy)
      -> Result<std::pair<uint64_t, uint64_t>> {  // (enclave id, rax)
    workload::ProgramSpec spec;
    spec.seed = seed;
    spec.target_instructions = 2000;
    ASSIGN_OR_RETURN(auto program, workload::BuildProgram(spec));
    EngardeOptions options = Options();
    options.enclave_entropy = std::move(entropy);
    ASSIGN_OR_RETURN(auto enclave, EngardeEnclave::Create(
                                       &host, *qe_, PolicySet{}, options));
    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave.SendHello(pipe.EndA()));
    client::ClientOptions client_options;
    client_options.attestation_key = qe_->attestation_public_key();
    client_options.skip_measurement_check = true;
    client::Client client(client_options, program.image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome,
                     enclave.RunProvisioning(pipe.EndA()));
    if (!outcome.verdict.compliant) return InternalError("rejected");
    ASSIGN_OR_RETURN(const uint64_t rax, enclave.ExecuteClientProgram());
    return std::make_pair(enclave.enclave_id(), rax);
  };

  auto tenant1 = run_tenant(501, {0xaa});
  auto tenant2 = run_tenant(502, {0xbb});
  ASSERT_TRUE(tenant1.ok()) << tenant1.status().ToString();
  ASSERT_TRUE(tenant2.ok()) << tenant2.status().ToString();
  EXPECT_NE(tenant1->first, tenant2->first);

  // Cross-enclave access: tenant 2's enclave id cannot read tenant 1's
  // pages through any API surface — addresses resolve per-enclave.
  Bytes buf(16);
  const Status cross = device.EnclaveRead(
      tenant2->first, 0x10000000 + 42 * sgx::kPageSize,
      MutableByteView(buf.data(), buf.size()));
  // Either the page simply is not mapped in tenant 2's enclave, or it is
  // tenant 2's OWN page — never tenant 1's content. Verify by checking the
  // outsider view of tenant 1's pages stays ciphertext.
  (void)cross;
  auto observed = device.ReadAsOutsider(tenant1->first, 0x10000000);
  ASSERT_TRUE(observed.ok());
  Bytes plain(16);
  ASSERT_TRUE(device
                  .EnclaveRead(tenant1->first, 0x10000000,
                               MutableByteView(plain.data(), plain.size()))
                  .ok());
  EXPECT_NE(Bytes(observed->begin(), observed->begin() + 16), plain);
}

}  // namespace
}  // namespace engarde::core
