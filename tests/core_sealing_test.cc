// Tests for EGETKEY-based sealing and the sealed-program fast-reload path.
#include "core/sealing.h"

#include <gtest/gtest.h>

#include "client/client.h"
#include "core/engarde.h"
#include "core/policy_stackprot.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

crypto::Aes256Key TestKey(uint8_t fill) {
  crypto::Aes256Key key;
  key.fill(fill);
  return key;
}

TEST(SealingTest, SealUnsealRoundTrip) {
  const Bytes secret = ToBytes("the client's confidential executable bytes");
  const SealedBlob blob = Seal(TestKey(1), 7, {1, 2, 3}, secret);
  EXPECT_NE(blob.ciphertext, secret);  // actually encrypted
  auto opened = Unseal(TestKey(1), blob);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, secret);
}

TEST(SealingTest, WrongKeyRejected) {
  const SealedBlob blob = Seal(TestKey(1), 0, {}, ToBytes("data"));
  EXPECT_EQ(Unseal(TestKey(2), blob).status().code(),
            StatusCode::kIntegrityError);
}

TEST(SealingTest, TamperDetected) {
  const Bytes secret(1000, 0x5a);
  SealedBlob blob = Seal(TestKey(3), 0, {9}, secret);
  // Flip one ciphertext byte.
  SealedBlob corrupted = blob;
  corrupted.ciphertext[500] ^= 1;
  EXPECT_FALSE(Unseal(TestKey(3), corrupted).ok());
  // Flip the key id (MAC covers it).
  corrupted = blob;
  corrupted.key_id ^= 1;
  EXPECT_FALSE(Unseal(TestKey(3), corrupted).ok());
  // Flip the nonce.
  corrupted = blob;
  corrupted.nonce[0] ^= 1;
  EXPECT_FALSE(Unseal(TestKey(3), corrupted).ok());
}

TEST(SealingTest, SerializationRoundTrip) {
  const SealedBlob blob = Seal(TestKey(4), 42, {7, 7, 7}, ToBytes("payload"));
  const Bytes wire = blob.Serialize();
  auto parsed = SealedBlob::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->key_id, 42u);
  EXPECT_EQ(parsed->ciphertext, blob.ciphertext);
  auto opened = Unseal(TestKey(4), *parsed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(ToString(ByteView(opened->data(), opened->size())), "payload");
}

TEST(SealingTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SealedBlob::Deserialize(ToBytes("nonsense")).ok());
  Bytes wire = Seal(TestKey(5), 0, {}, ToBytes("x")).Serialize();
  wire.pop_back();
  EXPECT_FALSE(SealedBlob::Deserialize(wire).ok());
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_FALSE(SealedBlob::Deserialize(wire).ok());
}

// ---- EGETKEY semantics ------------------------------------------------------

TEST(EgetkeyTest, SameMeasurementSameKey) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 128});
  sgx::HostOs host(&device);
  sgx::EnclaveLayout layout;
  layout.bootstrap_pages = 1;
  layout.heap_pages = 2;
  layout.load_pages = 2;
  layout.stack_pages = 1;
  auto e1 = host.BuildEnclave(layout, ToBytes("SAME-BOOTSTRAP"));
  auto e2 = host.BuildEnclave(layout, ToBytes("SAME-BOOTSTRAP"));
  auto e3 = host.BuildEnclave(layout, ToBytes("DIFF-BOOTSTRAP"));
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  auto k1 = device.EGetkey(*e1, 0);
  auto k2 = device.EGetkey(*e2, 0);
  auto k3 = device.EGetkey(*e3, 0);
  ASSERT_TRUE(k1.ok() && k2.ok() && k3.ok());
  EXPECT_EQ(*k1, *k2);  // identical code -> identical sealing key
  EXPECT_NE(*k1, *k3);  // different code -> different key
  // Key-id separation.
  auto k1b = device.EGetkey(*e1, 1);
  ASSERT_TRUE(k1b.ok());
  EXPECT_NE(*k1, *k1b);
}

TEST(EgetkeyTest, DifferentDevicesDifferentKeys) {
  auto key_on = [](Bytes seed) {
    sgx::SgxDevice device(
        sgx::SgxDevice::Options{.epc_pages = 64, .device_seed = seed});
    auto eid = device.ECreate(0x10000000, 4 * sgx::kPageSize);
    EXPECT_TRUE(eid.ok());
    EXPECT_TRUE(device.EInit(*eid).ok());
    auto key = device.EGetkey(*eid, 0);
    EXPECT_TRUE(key.ok());
    return *key;
  };
  EXPECT_NE(key_on({1, 2, 3}), key_on({4, 5, 6}));
}

TEST(EgetkeyTest, RequiresInit) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 64});
  auto eid = device.ECreate(0x10000000, 4 * sgx::kPageSize);
  ASSERT_TRUE(eid.ok());
  EXPECT_FALSE(device.EGetkey(*eid, 0).ok());
}

// ---- Sealed program fast reload ------------------------------------------------

class SealedReloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("seal-device"), 768);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }

  static EngardeOptions Options() {
    EngardeOptions options;
    options.rsa_bits = 768;
    options.layout.heap_pages = 256;
    options.layout.load_pages = 64;
    return options;
  }

  static PolicySet Policies() {
    PolicySet policies;
    policies.push_back(std::make_unique<StackProtectionPolicy>());
    return policies;
  }

  // First boot: full protocol; returns the sealed blob and the program's rax.
  Result<std::pair<Bytes, uint64_t>> FirstBoot(sgx::HostOs& host,
                                               const Bytes& image) {
    ASSIGN_OR_RETURN(auto enclave, EngardeEnclave::Create(&host, *qe_,
                                                          Policies(),
                                                          Options()));
    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave.SendHello(pipe.EndA()));
    client::ClientOptions client_options;
    client_options.attestation_key = qe_->attestation_public_key();
    client_options.skip_measurement_check = true;
    client::Client client(client_options, image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome,
                     enclave.RunProvisioning(pipe.EndA()));
    if (!outcome.verdict.compliant) {
      return InternalError("rejected: " + outcome.verdict.reason);
    }
    ASSIGN_OR_RETURN(const Bytes sealed, enclave.SealApprovedProgram());
    ASSIGN_OR_RETURN(const uint64_t rax, enclave.ExecuteClientProgram());
    return std::make_pair(sealed, rax);
  }

  static sgx::QuotingEnclave* qe_;
};

sgx::QuotingEnclave* SealedReloadTest::qe_ = nullptr;

TEST_F(SealedReloadTest, RestartRestoresAndRunsIdentically) {
  workload::ProgramSpec spec;
  spec.seed = 31;
  spec.target_instructions = 2500;
  spec.stack_protection = true;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  // "Machine 1": full provisioning, seal, run.
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 1024});
  sgx::HostOs host(&device);
  auto boot1 = FirstBoot(host, program->image);
  ASSERT_TRUE(boot1.ok()) << boot1.status().ToString();

  // "After restart": same device (the sealing key is device-bound), fresh
  // EnGarde enclave with the same policies -> same MRENCLAVE -> restore.
  auto enclave2 =
      EngardeEnclave::Create(&host, *qe_, Policies(), Options());
  ASSERT_TRUE(enclave2.ok());
  ASSERT_TRUE(enclave2->RestoreFromSealed(boot1->first).ok());
  auto rax2 = enclave2->ExecuteClientProgram();
  ASSERT_TRUE(rax2.ok()) << rax2.status().ToString();
  EXPECT_EQ(*rax2, boot1->second);  // identical behaviour after reload

  // W^X and the lock hold on the restored enclave too.
  ASSERT_NE(enclave2->load_result(), nullptr);
  const uint64_t code_page = enclave2->load_result()->executable_pages[0];
  EXPECT_EQ(device.EnclaveWrite(enclave2->enclave_id(), code_page,
                                ToBytes("x"))
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(host.IsLocked(enclave2->enclave_id()));
}

TEST_F(SealedReloadTest, DifferentPolicySetCannotUnseal) {
  workload::ProgramSpec spec;
  spec.seed = 32;
  spec.target_instructions = 2500;
  spec.stack_protection = true;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 1024});
  sgx::HostOs host(&device);
  auto boot1 = FirstBoot(host, program->image);
  ASSERT_TRUE(boot1.ok()) << boot1.status().ToString();

  // A malicious provider rebuilds EnGarde WITHOUT the agreed policies and
  // tries to shortcut-load the cached program into it: different bootstrap
  // -> different MRENCLAVE -> different EGETKEY -> MAC failure.
  auto weak = EngardeEnclave::Create(&host, *qe_, PolicySet{}, Options());
  ASSERT_TRUE(weak.ok());
  EXPECT_EQ(weak->RestoreFromSealed(boot1->first).code(),
            StatusCode::kIntegrityError);
}

TEST_F(SealedReloadTest, TamperedBlobRejected) {
  workload::ProgramSpec spec;
  spec.seed = 33;
  spec.target_instructions = 2500;
  spec.stack_protection = true;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 1024});
  sgx::HostOs host(&device);
  auto boot1 = FirstBoot(host, program->image);
  ASSERT_TRUE(boot1.ok());

  Bytes tampered = boot1->first;
  tampered[tampered.size() / 2] ^= 0x40;
  auto enclave2 = EngardeEnclave::Create(&host, *qe_, Policies(), Options());
  ASSERT_TRUE(enclave2.ok());
  EXPECT_FALSE(enclave2->RestoreFromSealed(tampered).ok());
}

TEST_F(SealedReloadTest, SealRequiresApprovedProgram) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = 1024});
  sgx::HostOs host(&device);
  auto enclave = EngardeEnclave::Create(&host, *qe_, Policies(), Options());
  ASSERT_TRUE(enclave.ok());
  EXPECT_EQ(enclave->SealApprovedProgram().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace engarde::core
