#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "common/hex.h"

namespace engarde::crypto {
namespace {

std::string HashHex(ByteView data) {
  return HexEncode(DigestView(Sha256::Hash(data)));
}

// NIST / FIPS 180-4 reference vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const Bytes msg = ToBytes("abc");
  EXPECT_EQ(HashHex(msg),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const Bytes msg =
      ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(HashHex(msg),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Bytes msg(1000000, 'a');
  EXPECT_EQ(HashHex(msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  // Feed the same message in irregular chunk sizes; digest must not change.
  const Bytes msg = ToBytes(std::string(300, 'x') + std::string(41, 'y'));
  const Sha256Digest oneshot = Sha256::Hash(msg);

  for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 128u}) {
    Sha256 h;
    for (size_t i = 0; i < msg.size(); i += chunk) {
      const size_t take = std::min(chunk, msg.size() - i);
      h.Update(ByteView(msg.data() + i, take));
    }
    EXPECT_EQ(h.Finalize(), oneshot) << "chunk=" << chunk;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update(ToBytes("garbage"));
  h.Reset();
  h.Update(ToBytes("abc"));
  EXPECT_EQ(HexEncode(DigestView(h.Finalize())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Boundary lengths around the 64-byte block and 56-byte padding threshold.
class Sha256PaddingBoundary : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha256PaddingBoundary, MatchesIncrementalByteAtATime) {
  const size_t len = GetParam();
  Bytes msg(len);
  for (size_t i = 0; i < len; ++i) msg[i] = static_cast<uint8_t>(i * 31 + 7);

  const Sha256Digest oneshot = Sha256::Hash(msg);
  Sha256 h;
  for (uint8_t b : msg) h.Update(ByteView(&b, 1));
  EXPECT_EQ(h.Finalize(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256PaddingBoundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 127, 128, 129, 1000));

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Hash(ToBytes("a")), Sha256::Hash(ToBytes("b")));
  // One-bit flip anywhere changes the digest.
  Bytes msg(64, 0);
  const Sha256Digest base = Sha256::Hash(msg);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] ^= 1;
    EXPECT_NE(Sha256::Hash(msg), base) << "flip at " << i;
    msg[i] ^= 1;
  }
}

}  // namespace
}  // namespace engarde::crypto
