#include "sgx/attestation.h"

#include <gtest/gtest.h>

#include "sgx/hostos.h"

namespace engarde::sgx {
namespace {

class AttestationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = QuotingEnclave::Provision(ToBytes("test-device"), 768);
    ASSERT_TRUE(qe.ok());
    qe_ = new QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }
  static const QuotingEnclave& qe() { return *qe_; }

  // Builds a tiny enclave and returns (device is a member so it outlives it).
  Result<uint64_t> BuildEnclave(ByteView bootstrap) {
    EnclaveLayout layout;
    layout.bootstrap_pages = 1;
    layout.heap_pages = 1;
    layout.load_pages = 1;
    layout.stack_pages = 1;
    return host_.BuildEnclave(layout, bootstrap);
  }

  SgxDevice device_{SgxDevice::Options{.epc_pages = 64}};
  HostOs host_{&device_};

 private:
  static QuotingEnclave* qe_;
};

QuotingEnclave* AttestationTest::qe_ = nullptr;

TEST_F(AttestationTest, QuoteRoundTrip) {
  auto eid = BuildEnclave(ToBytes("ENGARDE-BOOTSTRAP"));
  ASSERT_TRUE(eid.ok()) << eid.status().ToString();

  std::array<uint8_t, 64> report_data{};
  report_data[0] = 0x99;
  auto report = device_.EReport(*eid, report_data);
  ASSERT_TRUE(report.ok());

  auto quote = qe().CreateQuote(*report);
  ASSERT_TRUE(quote.ok());
  EXPECT_TRUE(VerifyQuote(*quote, qe().attestation_public_key()).ok());

  // And against the expected measurement.
  auto m = device_.Measurement(*eid);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(VerifyQuote(*quote, qe().attestation_public_key(), *m).ok());
}

TEST_F(AttestationTest, TamperedMeasurementDetected) {
  auto eid = BuildEnclave(ToBytes("ENGARDE-BOOTSTRAP"));
  ASSERT_TRUE(eid.ok());
  auto report = device_.EReport(*eid, {});
  ASSERT_TRUE(report.ok());
  auto quote = qe().CreateQuote(*report);
  ASSERT_TRUE(quote.ok());

  // Flip a bit in the reported measurement: signature check must fail.
  quote->report.mr_enclave[0] ^= 0x01;
  EXPECT_EQ(VerifyQuote(*quote, qe().attestation_public_key()).code(),
            StatusCode::kIntegrityError);
}

TEST_F(AttestationTest, TamperedReportDataDetected) {
  auto eid = BuildEnclave(ToBytes("ENGARDE-BOOTSTRAP"));
  ASSERT_TRUE(eid.ok());
  std::array<uint8_t, 64> data{};
  data[5] = 0xaa;
  auto report = device_.EReport(*eid, data);
  ASSERT_TRUE(report.ok());
  auto quote = qe().CreateQuote(*report);
  ASSERT_TRUE(quote.ok());

  quote->report.report_data[5] = 0xbb;  // MITM swaps the bound key hash
  EXPECT_FALSE(VerifyQuote(*quote, qe().attestation_public_key()).ok());
}

TEST_F(AttestationTest, WrongBootstrapMeasurementRejected) {
  // An enclave running *different* bootstrap code produces a different
  // MRENCLAVE; the client comparing against the published EnGarde
  // measurement must reject it.
  auto good = BuildEnclave(ToBytes("ENGARDE-BOOTSTRAP"));
  ASSERT_TRUE(good.ok());
  auto expected = device_.Measurement(*good);
  ASSERT_TRUE(expected.ok());

  auto evil = BuildEnclave(ToBytes("EVIL-BOOTSTRAP!!!"));
  ASSERT_TRUE(evil.ok());
  auto report = device_.EReport(*evil, {});
  ASSERT_TRUE(report.ok());
  auto quote = qe().CreateQuote(*report);
  ASSERT_TRUE(quote.ok());

  EXPECT_TRUE(VerifyQuote(*quote, qe().attestation_public_key()).ok());
  EXPECT_EQ(
      VerifyQuote(*quote, qe().attestation_public_key(), *expected).code(),
      StatusCode::kIntegrityError);
}

TEST_F(AttestationTest, ForgedQuoteWithoutDeviceKeyRejected) {
  auto eid = BuildEnclave(ToBytes("ENGARDE-BOOTSTRAP"));
  ASSERT_TRUE(eid.ok());
  auto report = device_.EReport(*eid, {});
  ASSERT_TRUE(report.ok());

  // An attacker with their own key pair signs the report.
  auto attacker = QuotingEnclave::Provision(ToBytes("attacker"), 768);
  ASSERT_TRUE(attacker.ok());
  auto forged = attacker->CreateQuote(*report);
  ASSERT_TRUE(forged.ok());
  // The client verifies against the *genuine* vendor key: rejected.
  EXPECT_FALSE(VerifyQuote(*forged, qe().attestation_public_key()).ok());
}

TEST_F(AttestationTest, QuoteSerializationRoundTrip) {
  auto eid = BuildEnclave(ToBytes("ENGARDE-BOOTSTRAP"));
  ASSERT_TRUE(eid.ok());
  auto report = device_.EReport(*eid, BindPublicKey(qe().attestation_public_key()));
  ASSERT_TRUE(report.ok());
  auto quote = qe().CreateQuote(*report);
  ASSERT_TRUE(quote.ok());

  const Bytes wire = quote->Serialize();
  auto parsed = Quote::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->report.mr_enclave, quote->report.mr_enclave);
  EXPECT_EQ(parsed->report.report_data, quote->report.report_data);
  EXPECT_EQ(parsed->signature, quote->signature);
  EXPECT_TRUE(VerifyQuote(*parsed, qe().attestation_public_key()).ok());
}

TEST_F(AttestationTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Quote::Deserialize(ToBytes("junk")).ok());
  auto eid = BuildEnclave(ToBytes("B"));
  ASSERT_TRUE(eid.ok());
  auto report = device_.EReport(*eid, {});
  ASSERT_TRUE(report.ok());
  auto quote = qe().CreateQuote(*report);
  ASSERT_TRUE(quote.ok());
  Bytes wire = quote->Serialize();
  wire.push_back(0);  // trailing byte
  EXPECT_FALSE(Quote::Deserialize(wire).ok());
}

TEST_F(AttestationTest, ReportRequiresInitializedEnclave) {
  auto eid = device_.ECreate(0x10000000, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  EXPECT_FALSE(device_.EReport(*eid, {}).ok());
}

TEST(BindPublicKeyTest, DistinctKeysDistinctBindings) {
  crypto::HmacDrbg d1(ToBytes("k1")), d2(ToBytes("k2"));
  auto k1 = crypto::RsaGenerateKey(512, d1);
  auto k2 = crypto::RsaGenerateKey(512, d2);
  ASSERT_TRUE(k1.ok() && k2.ok());
  EXPECT_NE(BindPublicKey(k1->public_key), BindPublicKey(k2->public_key));
  EXPECT_EQ(BindPublicKey(k1->public_key), BindPublicKey(k1->public_key));
}

}  // namespace
}  // namespace engarde::sgx
