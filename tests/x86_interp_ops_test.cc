// Additional interpreter semantics: each arithmetic/logic/conversion op
// checked against hand-computed results, plus flag behaviour across the
// condition-code matrix.
#include <gtest/gtest.h>

#include <cstring>

#include "x86/encoder.h"
#include "x86/interp.h"

namespace engarde::x86 {
namespace {

class OpsMemory : public MemoryIface {
 public:
  static constexpr uint64_t kCodeBase = 0x1000;
  static constexpr uint64_t kStackTop = 0x20000;
  static constexpr size_t kSize = 0x30000;

  explicit OpsMemory(const Bytes& code) : mem_(kSize, 0) {
    std::memcpy(mem_.data() + kCodeBase, code.data(), code.size());
    code_end_ = kCodeBase + code.size();
  }
  Result<uint64_t> Load(uint64_t addr, uint8_t size) override {
    if (addr + size > mem_.size()) return OutOfRangeError("load");
    uint64_t v = 0;
    for (int i = size; i-- > 0;) v = (v << 8) | mem_[addr + i];
    return v;
  }
  Status Store(uint64_t addr, uint8_t size, uint64_t value) override {
    if (addr + size > mem_.size()) return OutOfRangeError("store");
    for (int i = 0; i < size; ++i) {
      mem_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    }
    return Status::Ok();
  }
  Status Fetch(uint64_t addr, MutableByteView out) override {
    if (addr + out.size() > mem_.size()) return OutOfRangeError("fetch");
    std::memcpy(out.data(), mem_.data() + addr, out.size());
    return Status::Ok();
  }
  bool IsExecutable(uint64_t addr) const override {
    return addr >= kCodeBase && addr < code_end_;
  }

 private:
  Bytes mem_;
  uint64_t code_end_;
};

// Runs a snippet (which must end with Ret) and returns rax.
uint64_t RunSnippet(const std::function<void(Assembler&)>& emit) {
  Assembler as(OpsMemory::kCodeBase);
  emit(as);
  as.Ret();
  OpsMemory mem(as.bytes());
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  EXPECT_TRUE(rax.ok()) << rax.status().ToString();
  return rax.ok() ? *rax : ~0ull;
}

TEST(InterpOps, Imul) {
  EXPECT_EQ(RunSnippet([](Assembler& as) {
              as.MovRegImm32(kRax, 7);
              as.MovRegImm32(kRcx, 6);
              as.ImulRegReg(kRax, kRcx);
            }),
            42u);
}

TEST(InterpOps, ImulNegative) {
  EXPECT_EQ(RunSnippet([](Assembler& as) {
              as.MovRegImm64(kRax, static_cast<uint64_t>(-5));
              as.MovRegImm32(kRcx, 3);
              as.ImulRegReg(kRax, kRcx);
            }),
            static_cast<uint64_t>(-15));
}

TEST(InterpOps, ShrIsLogical) {
  EXPECT_EQ(RunSnippet([](Assembler& as) {
              as.MovRegImm64(kRax, 0x8000000000000000ull);
              as.ShrRegImm8(kRax, 60);
            }),
            8u);
}

TEST(InterpOps, SarRawEncoding) {
  // Drive sar through the decoder directly since the Assembler has no
  // helper: build the code buffer by hand.
  Bytes code = {0x48, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0x80,  // movabs rax, 1<<63
                0x48, 0xc1, 0xf8, 0x3c,                  // sar $60, %rax
                0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, static_cast<uint64_t>(int64_t{1} << 63 >> 60));
}

TEST(InterpOps, NegNotIncDec) {
  // neg: 0 - x; not: ~x; via raw grp3/grp5 encodings.
  const Bytes code = {0x48, 0xc7, 0xc0, 0x05, 0, 0, 0,  // mov $5, %rax
                      0x48, 0xf7, 0xd8,                 // neg %rax  -> -5
                      0x48, 0xf7, 0xd0,                 // not %rax  -> 4
                      0x48, 0xff, 0xc0,                 // inc %rax  -> 5
                      0x48, 0xff, 0xc8,                 // dec %rax  -> 4
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok());
  EXPECT_EQ(*rax, 4u);
}

TEST(InterpOps, CdqeSignExtends) {
  const Bytes code = {0xb8, 0xff, 0xff, 0xff, 0xff,  // mov $0xffffffff,%eax
                      0x48, 0x98,                    // cdqe
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok());
  EXPECT_EQ(*rax, 0xffffffffffffffffull);
}

TEST(InterpOps, CqoFillsRdx) {
  const Bytes code = {0x48, 0xc7, 0xc0, 0xff, 0xff, 0xff, 0xff,  // mov $-1,%rax
                      0x48, 0x99,                                // cqo
                      0x48, 0x89, 0xd0,                          // mov %rdx,%rax
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok());
  EXPECT_EQ(*rax, ~0ull);
}

TEST(InterpOps, XchgSwaps) {
  EXPECT_EQ(RunSnippet([](Assembler& as) {
              as.MovRegImm32(kRax, 1);
              as.MovRegImm32(kRcx, 2);
              // xchg %rcx, %rax: 48 87 c8
              as.MovRegReg(kRdx, kRax);  // rdx = 1
              as.MovRegReg(kRax, kRcx);  // rax = 2 (swap by hand for expected)
            }),
            2u);
  // True xchg through raw encoding:
  const Bytes code = {0x48, 0xc7, 0xc0, 0x01, 0, 0, 0,   // mov $1,%rax
                      0x48, 0xc7, 0xc1, 0x02, 0, 0, 0,   // mov $2,%rcx
                      0x48, 0x87, 0xc8,                  // xchg %rcx,%rax
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok());
  EXPECT_EQ(*rax, 2u);
  EXPECT_EQ(machine.reg(kRcx), 1u);
}

TEST(InterpOps, LeaveRestoresFrame) {
  const Bytes code = {0x55,                            // push %rbp
                      0x48, 0x89, 0xe5,                // mov %rsp,%rbp
                      0x48, 0x81, 0xec, 0x40, 0, 0, 0, // sub $0x40,%rsp
                      0x48, 0xc7, 0xc0, 0x2a, 0, 0, 0, // mov $42,%rax
                      0xc9,                            // leave
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, 42u);
  EXPECT_EQ(machine.reg(kRsp), OpsMemory::kStackTop);  // balanced
}

TEST(InterpOps, SetccWritesByteOnly) {
  const Bytes code = {0x48, 0xc7, 0xc0, 0xff, 0x01, 0, 0,  // mov $0x1ff,%rax
                      0x48, 0x85, 0xc0,                    // test %rax,%rax
                      0x0f, 0x95, 0xc0,                    // setne %al
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok());
  EXPECT_EQ(*rax, 0x101u);  // only AL replaced
}

TEST(InterpOps, UnsignedDivMod) {
  const Bytes code = {0x48, 0xc7, 0xc0, 0x2b, 0, 0, 0,  // mov $43,%rax
                      0x48, 0x31, 0xd2,                 // xor %rdx,%rdx
                      0x48, 0xc7, 0xc1, 0x05, 0, 0, 0,  // mov $5,%rcx
                      0x48, 0xf7, 0xf1,                 // div %rcx
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, 8u);                 // quotient
  EXPECT_EQ(machine.reg(kRdx), 3u);    // remainder
}

TEST(InterpOps, SignedDiv) {
  const Bytes code = {0x48, 0xc7, 0xc0, 0xd5, 0xff, 0xff, 0xff,  // mov $-43,%rax
                      0x48, 0x99,                                // cqo
                      0x48, 0xc7, 0xc1, 0x05, 0, 0, 0,           // mov $5,%rcx
                      0x48, 0xf7, 0xf9,                          // idiv %rcx
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(*rax), -8);  // C truncation semantics
  EXPECT_EQ(static_cast<int64_t>(machine.reg(kRdx)), -3);
}

TEST(InterpOps, DivisionByZeroFaults) {
  const Bytes code = {0x48, 0x31, 0xc9,   // xor %rcx,%rcx
                      0x48, 0x31, 0xd2,   // xor %rdx,%rdx
                      0x48, 0xf7, 0xf1,   // div %rcx
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_FALSE(rax.ok());
  EXPECT_NE(rax.status().message().find("division by zero"),
            std::string::npos);
}

TEST(InterpOps, WideMulFillsRdx) {
  // 2^63 * 2 = 2^64: rax = 0, rdx = 1.
  const Bytes code = {0x48, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0x80,  // movabs $1<<63
                      0x48, 0xc7, 0xc1, 0x02, 0, 0, 0,        // mov $2,%rcx
                      0x48, 0xf7, 0xe1,                       // mul %rcx
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, 0u);
  EXPECT_EQ(machine.reg(kRdx), 1u);
}

TEST(InterpOps, Bswap64) {
  const Bytes code = {0x48, 0xb8, 0xef, 0xcd, 0xab, 0x89,
                      0x67, 0x45, 0x23, 0x01,   // movabs $0x0123456789abcdef
                      0x48, 0x0f, 0xc8,         // bswap %rax
                      0xc3};
  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, 0xefcdab8967452301ull);
}

// Condition-code matrix: for pairs (a, b) check the signed/unsigned branches.
struct CondCase {
  int64_t a, b;
  Cond cond;
  bool taken;
};

class CondMatrix : public ::testing::TestWithParam<CondCase> {};

TEST_P(CondMatrix, JccAfterCmp) {
  const CondCase& c = GetParam();
  Assembler as(OpsMemory::kCodeBase);
  as.MovRegImm64(kRcx, static_cast<uint64_t>(c.a));
  as.MovRegImm64(kRdx, static_cast<uint64_t>(c.b));
  as.CmpRegReg(kRcx, kRdx);  // compare a ? b
  auto taken = as.NewLabel();
  as.JccLabel(c.cond, taken);
  as.MovRegImm32(kRax, 0);
  as.Ret();
  as.Bind(taken);
  as.MovRegImm32(kRax, 1);
  as.Ret();
  Bytes code = as.TakeBytes();

  OpsMemory mem(code);
  MachineConfig config;
  config.stack_top = OpsMemory::kStackTop;
  Machine machine(&mem, config);
  auto rax = machine.Run(OpsMemory::kCodeBase);
  ASSERT_TRUE(rax.ok()) << rax.status().ToString();
  EXPECT_EQ(*rax, c.taken ? 1u : 0u)
      << c.a << " vs " << c.b << " cond " << static_cast<int>(c.cond);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CondMatrix,
    ::testing::Values(
        CondCase{5, 5, kCondE, true}, CondCase{5, 6, kCondE, false},
        CondCase{5, 6, kCondNe, true}, CondCase{5, 5, kCondNe, false},
        CondCase{-1, 1, kCondL, true},   // signed: -1 < 1
        CondCase{-1, 1, kCondB, false},  // unsigned: 0xff..ff > 1
        CondCase{1, -1, kCondG, true}, CondCase{1, -1, kCondA, false},
        CondCase{3, 7, kCondLe, true}, CondCase{7, 7, kCondLe, true},
        CondCase{8, 7, kCondLe, false}, CondCase{7, 7, kCondGe, true},
        CondCase{2, 9, kCondAe, false}, CondCase{9, 2, kCondAe, true},
        CondCase{2, 9, kCondBe, true}, CondCase{-5, -3, kCondL, true},
        CondCase{-3, -5, kCondG, true}, CondCase{0, 0, kCondS, false}));

}  // namespace
}  // namespace engarde::x86
