#include "sgx/device.h"

#include <gtest/gtest.h>

namespace engarde::sgx {
namespace {

constexpr uint64_t kBase = 0x10000000;

SgxDevice::Options SmallOptions(int version = 2) {
  SgxDevice::Options options;
  options.epc_pages = 64;
  options.sgx_version = version;
  return options;
}

Bytes PageOf(uint8_t fill) { return Bytes(kPageSize, fill); }

TEST(SgxDeviceTest, ECreateAllocatesSecs) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 16 * kPageSize);
  ASSERT_TRUE(eid.ok());
  EXPECT_EQ(device.epc().pages_in_use(), 1u);  // the SECS page
  EXPECT_FALSE(device.IsInitialized(*eid));
}

TEST(SgxDeviceTest, ECreateRejectsUnalignedRange) {
  SgxDevice device(SmallOptions());
  EXPECT_FALSE(device.ECreate(kBase + 1, kPageSize).ok());
  EXPECT_FALSE(device.ECreate(kBase, kPageSize + 7).ok());
  EXPECT_FALSE(device.ECreate(kBase, 0).ok());
}

TEST(SgxDeviceTest, EAddPlacesContent) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 16 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, PageOf(0xab), PagePerms::RW()).ok());
  EXPECT_TRUE(device.HasPage(*eid, kBase));
  EXPECT_EQ(device.PageCount(*eid), 1u);

  Bytes readback(16);
  ASSERT_TRUE(device.EnclaveRead(*eid, kBase, MutableByteView(readback.data(),
                                                              readback.size()))
                  .ok());
  EXPECT_EQ(readback, Bytes(16, 0xab));
}

TEST(SgxDeviceTest, EAddRejections) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  // Unaligned.
  EXPECT_FALSE(device.EAdd(*eid, kBase + 12, {}, PagePerms::RW()).ok());
  // Outside range.
  EXPECT_FALSE(
      device.EAdd(*eid, kBase + 64 * kPageSize, {}, PagePerms::RW()).ok());
  // Duplicate.
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  EXPECT_FALSE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  // After EINIT.
  ASSERT_TRUE(device.EInit(*eid).ok());
  EXPECT_FALSE(
      device.EAdd(*eid, kBase + kPageSize, {}, PagePerms::RW()).ok());
}

TEST(SgxDeviceTest, MeasurementIsDeterministic) {
  auto build = [](uint8_t fill) {
    SgxDevice device(SmallOptions());
    auto eid = device.ECreate(kBase, 4 * kPageSize);
    EXPECT_TRUE(eid.ok());
    EXPECT_TRUE(device.EAdd(*eid, kBase, PageOf(fill), PagePerms::RX()).ok());
    EXPECT_TRUE(device.ExtendPage(*eid, kBase).ok());
    EXPECT_TRUE(device.EInit(*eid).ok());
    auto m = device.Measurement(*eid);
    EXPECT_TRUE(m.ok());
    return *m;
  };
  EXPECT_EQ(build(0x11), build(0x11));   // same build -> same MRENCLAVE
  EXPECT_NE(build(0x11), build(0x12));   // different content -> different
}

TEST(SgxDeviceTest, MeasurementSensitiveToPagePosition) {
  auto build = [](uint64_t linear) {
    SgxDevice device(SmallOptions());
    auto eid = device.ECreate(kBase, 8 * kPageSize);
    EXPECT_TRUE(eid.ok());
    EXPECT_TRUE(device.EAdd(*eid, linear, PageOf(0x5a), PagePerms::RX()).ok());
    EXPECT_TRUE(device.ExtendPage(*eid, linear).ok());
    EXPECT_TRUE(device.EInit(*eid).ok());
    return *device.Measurement(*eid);
  };
  EXPECT_NE(build(kBase), build(kBase + kPageSize));
}

TEST(SgxDeviceTest, MeasurementSensitiveToPerms) {
  auto build = [](PagePerms perms) {
    SgxDevice device(SmallOptions());
    auto eid = device.ECreate(kBase, 8 * kPageSize);
    EXPECT_TRUE(eid.ok());
    EXPECT_TRUE(device.EAdd(*eid, kBase, PageOf(0x5a), perms).ok());
    EXPECT_TRUE(device.EInit(*eid).ok());
    return *device.Measurement(*eid);
  };
  EXPECT_NE(build(PagePerms::RX()), build(PagePerms::RW()));
}

TEST(SgxDeviceTest, UnmeasuredContentDoesNotAffectMrenclave) {
  auto build = [](uint8_t heap_fill) {
    SgxDevice device(SmallOptions());
    auto eid = device.ECreate(kBase, 8 * kPageSize);
    EXPECT_TRUE(eid.ok());
    EXPECT_TRUE(device.EAdd(*eid, kBase, PageOf(0x5a), PagePerms::RX()).ok());
    EXPECT_TRUE(device.ExtendPage(*eid, kBase).ok());
    // Heap page EADDed but not EEXTENDed: perms/offset are measured,
    // content is not.
    EXPECT_TRUE(device.EAdd(*eid, kBase + kPageSize, PageOf(heap_fill),
                            PagePerms::RW())
                    .ok());
    EXPECT_TRUE(device.EInit(*eid).ok());
    return *device.Measurement(*eid);
  };
  EXPECT_EQ(build(0x00), build(0xff));
}

TEST(SgxDeviceTest, EnterRequiresInit) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  EXPECT_FALSE(device.EEnter(*eid).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  EXPECT_TRUE(device.EEnter(*eid).ok());
  EXPECT_TRUE(device.EExit(*eid).ok());
  EXPECT_FALSE(device.EExit(*eid).ok());  // unbalanced
}

TEST(SgxDeviceTest, PermissionsEnforcedOnAccess) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, PageOf(1), PagePerms::RX()).ok());
  ASSERT_TRUE(
      device.EAdd(*eid, kBase + kPageSize, PageOf(2), PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());

  Bytes buf(8);
  // RX page: readable, not writable.
  EXPECT_TRUE(
      device.EnclaveRead(*eid, kBase, MutableByteView(buf.data(), 8)).ok());
  EXPECT_EQ(
      device.EnclaveWrite(*eid, kBase, ToBytes("x")).code(),
      StatusCode::kPermissionDenied);
  // RW page: both.
  EXPECT_TRUE(device.EnclaveWrite(*eid, kBase + kPageSize, ToBytes("x")).ok());
}

TEST(SgxDeviceTest, CrossPageReadWrite) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase + kPageSize, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());

  const Bytes data = ToBytes("spans-two-pages!");
  const uint64_t addr = kBase + kPageSize - 8;
  ASSERT_TRUE(device.EnclaveWrite(*eid, addr, data).ok());
  Bytes readback(data.size());
  ASSERT_TRUE(device.EnclaveRead(*eid, addr,
                                 MutableByteView(readback.data(),
                                                 readback.size()))
                  .ok());
  EXPECT_EQ(readback, data);
}

TEST(SgxDeviceTest, AccessToUnmappedPageFails) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  Bytes buf(4);
  EXPECT_FALSE(
      device.EnclaveRead(*eid, kBase, MutableByteView(buf.data(), 4)).ok());
}

TEST(SgxDeviceTest, OutsiderSeesOnlyCiphertext) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  const Bytes secret = PageOf(0x42);
  ASSERT_TRUE(device.EAdd(*eid, kBase, secret, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());

  auto observed = device.ReadAsOutsider(*eid, kBase);
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(observed->size(), kPageSize);
  EXPECT_NE(*observed, secret);
  // And it is not a trivial transform: at least half the bytes differ.
  size_t differing = 0;
  for (size_t i = 0; i < kPageSize; ++i) {
    if ((*observed)[i] != secret[i]) ++differing;
  }
  EXPECT_GT(differing, kPageSize / 2);
}

TEST(SgxDeviceTest, EpcExhaustion) {
  SgxDevice::Options options;
  options.epc_pages = 4;
  SgxDevice device(options);
  auto eid = device.ECreate(kBase, 16 * kPageSize);  // SECS takes 1 of 4
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase + kPageSize, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(
      device.EAdd(*eid, kBase + 2 * kPageSize, {}, PagePerms::RW()).ok());
  EXPECT_EQ(
      device.EAdd(*eid, kBase + 3 * kPageSize, {}, PagePerms::RW()).code(),
      StatusCode::kResourceExhausted);
}

TEST(SgxDeviceTest, ERemoveFreesEpc) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 4 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  const size_t used = device.epc().pages_in_use();
  ASSERT_TRUE(device.ERemove(*eid, kBase).ok());
  EXPECT_EQ(device.epc().pages_in_use(), used - 1);
  EXPECT_FALSE(device.HasPage(*eid, kBase));
}

TEST(SgxDeviceTest, DestroyEnclaveReleasesEverything) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        device.EAdd(*eid, kBase + i * kPageSize, {}, PagePerms::RW()).ok());
  }
  ASSERT_TRUE(device.DestroyEnclave(*eid).ok());
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
  EXPECT_FALSE(device.HasPage(*eid, kBase));
}

// ---- SGX2 dynamic memory -----------------------------------------------------

TEST(Sgx2Test, AugAcceptLifecycle) {
  SgxDevice device(SmallOptions(2));
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  // EAUG post-init; page unusable until EACCEPT.
  ASSERT_TRUE(device.EAug(*eid, kBase).ok());
  EXPECT_FALSE(device.EnclaveWrite(*eid, kBase, ToBytes("x")).ok());
  ASSERT_TRUE(device.EAccept(*eid, kBase).ok());
  EXPECT_TRUE(device.EnclaveWrite(*eid, kBase, ToBytes("x")).ok());
}

TEST(Sgx2Test, AugBeforeInitRejected) {
  SgxDevice device(SmallOptions(2));
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  EXPECT_FALSE(device.EAug(*eid, kBase).ok());
}

TEST(Sgx2Test, ModprRestrictsAndRequiresAccept) {
  SgxDevice device(SmallOptions(2));
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());

  ASSERT_TRUE(device.EModpr(*eid, kBase, PagePerms::R()).ok());
  // Pending until the enclave EACCEPTs.
  EXPECT_FALSE(device.EnclaveWrite(*eid, kBase, ToBytes("x")).ok());
  ASSERT_TRUE(device.EAccept(*eid, kBase).ok());
  auto perms = device.EpcmPerms(*eid, kBase);
  ASSERT_TRUE(perms.ok());
  EXPECT_EQ(*perms, PagePerms::R());
  EXPECT_EQ(device.EnclaveWrite(*eid, kBase, ToBytes("x")).code(),
            StatusCode::kPermissionDenied);
}

TEST(Sgx2Test, ModprCannotExtend) {
  SgxDevice device(SmallOptions(2));
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::R()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  EXPECT_FALSE(device.EModpr(*eid, kBase, PagePerms::RWX()).ok());
}

TEST(Sgx2Test, ModpeExtends) {
  SgxDevice device(SmallOptions(2));
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::R()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  ASSERT_TRUE(device.EModpe(*eid, kBase, PagePerms::RW()).ok());
  EXPECT_TRUE(device.EnclaveWrite(*eid, kBase, ToBytes("x")).ok());
}

TEST(Sgx1Test, DynamicInstructionsFaultOnVersion1) {
  // The paper's central hardware argument: version-1 silicon cannot change
  // EPC page permissions or grow enclaves, so EnGarde needs SGX2.
  SgxDevice device(SmallOptions(1));
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  EXPECT_EQ(device.EAug(*eid, kBase + kPageSize).code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(device.EModpr(*eid, kBase, PagePerms::R()).code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(device.EModpe(*eid, kBase, PagePerms::RWX()).code(),
            StatusCode::kUnimplemented);
}

// ---- EWB / ELDU ------------------------------------------------------------

TEST(PagingTest, EvictAndReloadRoundTrips) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, PageOf(0x77), PagePerms::RW()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());

  const size_t used_before = device.epc().pages_in_use();
  ASSERT_TRUE(device.Ewb(*eid, kBase).ok());
  EXPECT_EQ(device.epc().pages_in_use(), used_before - 1);

  // Evicted page is inaccessible until reloaded.
  Bytes buf(8);
  EXPECT_FALSE(
      device.EnclaveRead(*eid, kBase, MutableByteView(buf.data(), 8)).ok());

  ASSERT_TRUE(device.Eldu(*eid, kBase).ok());
  ASSERT_TRUE(
      device.EnclaveRead(*eid, kBase, MutableByteView(buf.data(), 8)).ok());
  EXPECT_EQ(buf, Bytes(8, 0x77));
}

TEST(PagingTest, ReloadRestoresPermissions) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RX()).ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  ASSERT_TRUE(device.Ewb(*eid, kBase).ok());
  ASSERT_TRUE(device.Eldu(*eid, kBase).ok());
  auto perms = device.EpcmPerms(*eid, kBase);
  ASSERT_TRUE(perms.ok());
  EXPECT_EQ(*perms, PagePerms::RX());
}

TEST(PagingTest, ElduWithoutEwbFails) {
  SgxDevice device(SmallOptions());
  auto eid = device.ECreate(kBase, 8 * kPageSize);
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EInit(*eid).ok());
  EXPECT_FALSE(device.Eldu(*eid, kBase).ok());
}

// ---- Cost accounting --------------------------------------------------------

TEST(CostModelTest, SgxInstructionsCharged) {
  CycleAccountant accountant;
  SgxDevice device(SmallOptions(), &accountant);
  auto eid = device.ECreate(kBase, 4 * kPageSize);  // 1 SGX insn
  ASSERT_TRUE(eid.ok());
  ASSERT_TRUE(device.EAdd(*eid, kBase, {}, PagePerms::RX()).ok());  // 1
  ASSERT_TRUE(device.ExtendPage(*eid, kBase).ok());                 // 16
  ASSERT_TRUE(device.EInit(*eid).ok());                             // 1
  EXPECT_EQ(accountant.total_sgx_instructions(), 19u);
}

TEST(CostModelTest, PhaseAttribution) {
  CycleAccountant accountant;
  accountant.BeginPhase(Phase::kDisassembly);
  accountant.CountSgxInstruction();
  accountant.CountSgxInstruction();
  accountant.EndPhase();
  accountant.BeginPhase(Phase::kPolicyCheck);
  accountant.CountTrampoline();  // 2 instructions
  accountant.EndPhase();

  EXPECT_EQ(accountant.phase_cost(Phase::kDisassembly).sgx_instructions, 2u);
  EXPECT_EQ(accountant.phase_cost(Phase::kPolicyCheck).sgx_instructions, 2u);
  EXPECT_EQ(accountant.total_trampolines(), 1u);
  // Cycles include the 10K-per-instruction charge.
  EXPECT_GE(accountant.phase_cost(Phase::kDisassembly).Cycles(), 20000u);
}

TEST(CostModelTest, ResetClears) {
  CycleAccountant accountant;
  accountant.CountSgxInstruction();
  accountant.Reset();
  EXPECT_EQ(accountant.total_sgx_instructions(), 0u);
  EXPECT_EQ(accountant.phase_cost(Phase::kIdle).sgx_instructions, 0u);
}

}  // namespace
}  // namespace engarde::sgx
