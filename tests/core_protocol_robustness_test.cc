// Wire-format and session-ordering robustness: the protocol structs must
// round-trip exactly, reject every truncated/oversized/trailing-byte
// variant with an error (never a crash or a silent mis-parse), both verdict
// wire versions must stay parseable, and a ProvisioningSession pumped with
// out-of-order or replayed records must fail with the precise protocol
// error the old blocking loop produced.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "client/client.h"
#include "core/engarde.h"
#include "core/protocol.h"
#include "core/session.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 768;

// ---- Manifest wire format --------------------------------------------------

TEST(ManifestWireTest, RoundTrip) {
  Manifest manifest;
  manifest.file_size = 123456;
  manifest.code_pages = {0, 1, 7, 42, 4096};
  const Bytes wire = manifest.Serialize();
  auto parsed = Manifest::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->file_size, manifest.file_size);
  EXPECT_EQ(parsed->code_pages, manifest.code_pages);
}

TEST(ManifestWireTest, EmptyCodePagesRoundTrip) {
  Manifest manifest;
  manifest.file_size = 1;
  const Bytes wire = manifest.Serialize();
  auto parsed = Manifest::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->code_pages.empty());
}

TEST(ManifestWireTest, EveryTruncationFails) {
  Manifest manifest;
  manifest.file_size = 8192;
  manifest.code_pages = {1, 2, 3};
  const Bytes wire = manifest.Serialize();
  for (size_t len = 0; len < wire.size(); ++len) {
    auto parsed = Manifest::Deserialize(ByteView(wire.data(), len));
    EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kProtocolError);
    }
  }
}

TEST(ManifestWireTest, TrailingBytesFail) {
  Manifest manifest;
  manifest.file_size = 4096;
  manifest.code_pages = {1};
  Bytes wire = manifest.Serialize();
  wire.push_back(0x00);
  auto parsed = Manifest::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("trailing"), std::string::npos);
}

TEST(ManifestWireTest, LyingPageCountFails) {
  // Claimed count larger than the actual payload: must error, not read OOB.
  Bytes wire;
  AppendLe64(wire, 4096);
  AppendLe32(wire, 1000000);  // claims a million pages, sends none
  auto parsed = Manifest::Deserialize(ByteView(wire.data(), wire.size()));
  EXPECT_FALSE(parsed.ok());
}

// ---- Verdict wire format (both versions) -----------------------------------

Verdict SampleRejection() {
  Verdict verdict;
  verdict.compliant = false;
  verdict.reason = "stack-protection: POLICY_VIOLATION: no prologue";
  Rejection rejection;
  rejection.stage = "PolicyCheck";
  rejection.rule = "stack-protection";
  rejection.vaddr = 0x10000123;
  rejection.detail = "POLICY_VIOLATION: no prologue";
  verdict.rejection = rejection;
  return verdict;
}

TEST(VerdictWireTest, V2RoundTripWithRejection) {
  const Verdict verdict = SampleRejection();
  const Bytes wire = verdict.Serialize();
  EXPECT_EQ(wire[0], Verdict::kWireVersion);
  auto parsed = Verdict::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->compliant);
  EXPECT_EQ(parsed->reason, verdict.reason);
  ASSERT_TRUE(parsed->rejection.has_value());
  EXPECT_EQ(parsed->rejection->stage, "PolicyCheck");
  EXPECT_EQ(parsed->rejection->rule, "stack-protection");
  EXPECT_EQ(parsed->rejection->vaddr, 0x10000123u);
  EXPECT_EQ(parsed->rejection->detail, "POLICY_VIOLATION: no prologue");
}

TEST(VerdictWireTest, V2RoundTripCompliant) {
  Verdict verdict;
  verdict.compliant = true;
  const Bytes wire = verdict.Serialize();
  auto parsed = Verdict::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->compliant);
  EXPECT_TRUE(parsed->reason.empty());
  EXPECT_FALSE(parsed->rejection.has_value());
}

TEST(VerdictWireTest, LegacyV1StillParses) {
  // Frames produced before the versioned format (raw flag || reason) must
  // keep parsing: old enclaves talking to new clients.
  Verdict verdict;
  verdict.compliant = false;
  verdict.reason = "legacy rejection reason";
  const Bytes wire = verdict.SerializeLegacy();
  EXPECT_LE(wire[0], 1);  // no version byte
  auto parsed = Verdict::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->compliant);
  EXPECT_EQ(parsed->reason, verdict.reason);
  EXPECT_FALSE(parsed->rejection.has_value());

  Verdict ok_verdict;
  ok_verdict.compliant = true;
  const Bytes ok_wire = ok_verdict.SerializeLegacy();
  auto ok_parsed = Verdict::Deserialize(ByteView(ok_wire.data(),
                                                 ok_wire.size()));
  ASSERT_TRUE(ok_parsed.ok());
  EXPECT_TRUE(ok_parsed->compliant);
}

TEST(VerdictWireTest, EveryTruncationFailsBothVersions) {
  for (const Bytes& wire :
       {SampleRejection().Serialize(), SampleRejection().SerializeLegacy()}) {
    for (size_t len = 0; len < wire.size(); ++len) {
      auto parsed = Verdict::Deserialize(ByteView(wire.data(), len));
      EXPECT_FALSE(parsed.ok()) << "prefix length " << len << " of "
                                << wire.size();
    }
    Bytes trailing = wire;
    trailing.push_back(0x00);
    EXPECT_FALSE(
        Verdict::Deserialize(ByteView(trailing.data(), trailing.size())).ok());
  }
}

TEST(VerdictWireTest, UnknownVersionFails) {
  Bytes wire = {0x7f, 0x01};
  auto parsed = Verdict::Deserialize(ByteView(wire.data(), wire.size()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
}

// ---- Frame layer -----------------------------------------------------------

TEST(FrameTest, TryReadFrameRejectsOversizedHeader) {
  crypto::DuplexPipe pipe;
  auto writer = pipe.EndA();
  Bytes header;
  AppendLe32(header, (64u << 20) + 1);
  writer.Write(ByteView(header.data(), header.size()));
  auto reader = pipe.EndB();
  auto frame = TryReadFrame(reader);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("oversized"), std::string::npos);
}

TEST(FrameTest, TryReadFrameWaitsForWholeFrame) {
  crypto::DuplexPipe pipe;
  auto writer = pipe.EndA();
  auto reader = pipe.EndB();
  Bytes header;
  AppendLe32(header, 8);
  writer.Write(ByteView(header.data(), header.size()));
  const Bytes half = {1, 2, 3, 4};
  writer.Write(ByteView(half.data(), half.size()));
  auto frame = TryReadFrame(reader);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame->has_value());  // 4 of 8 payload bytes: not yet
  writer.Write(ByteView(half.data(), half.size()));
  frame = TryReadFrame(reader);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->size(), 8u);
}

TEST(FrameTest, ParseMessageRejectsEmptyRecord) {
  EXPECT_FALSE(ParseMessage(Bytes{}).ok());
}

// ---- Out-of-order session pumping ------------------------------------------

// Minimal hand-rolled client side: performs the key exchange like the real
// client but then lets a test send arbitrary records in arbitrary order.
class RawClient {
 public:
  RawClient() : drbg_(ToBytes("raw-client")) {}

  Status Handshake(crypto::DuplexPipe::Endpoint endpoint) {
    ASSIGN_OR_RETURN(const Bytes quote_wire, ReadFrame(endpoint));
    (void)quote_wire;  // ordering tests do not verify attestation
    ASSIGN_OR_RETURN(const Bytes key_wire, ReadFrame(endpoint));
    ASSIGN_OR_RETURN(const crypto::RsaPublicKey enclave_key,
                     crypto::RsaPublicKey::Deserialize(
                         ByteView(key_wire.data(), key_wire.size())));
    const Bytes master_key = drbg_.Generate(32);
    ASSIGN_OR_RETURN(
        const Bytes wrapped,
        crypto::RsaEncrypt(enclave_key,
                           ByteView(master_key.data(), master_key.size()),
                           drbg_));
    RETURN_IF_ERROR(
        WriteFrame(endpoint, ByteView(wrapped.data(), wrapped.size())));
    const crypto::SessionKeys keys = crypto::SessionKeys::Derive(
        ByteView(master_key.data(), master_key.size()));
    channel_.emplace(endpoint, keys, /*is_enclave_side=*/false);
    return Status::Ok();
  }

  Status Send(MessageType type, ByteView payload) {
    return SendMessage(*channel_, type, payload);
  }

 private:
  crypto::HmacDrbg drbg_;
  std::optional<crypto::SecureChannel> channel_;
};

class SessionOrderingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe =
        sgx::QuotingEnclave::Provision(ToBytes("order-device"), kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    workload::ProgramSpec spec;
    spec.seed = 77;
    spec.target_instructions = 2000;
    auto program = workload::BuildProgram(spec);
    ASSERT_TRUE(program.ok());
    image_ = new Bytes(program->image);
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete image_;
    image_ = nullptr;
  }

  void SetUp() override {
    device_.emplace(sgx::SgxDevice::Options{.epc_pages = 512});
    host_.emplace(&*device_);
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    auto enclave =
        EngardeEnclave::Create(&*host_, *qe_, PolicySet{}, options);
    ASSERT_TRUE(enclave.ok());
    enclave_.emplace(std::move(enclave).value());
    ASSERT_TRUE(enclave_->SendHello(pipe_.EndA()).ok());
    session_.emplace(&*enclave_, pipe_.EndA());
    ASSERT_TRUE(client_.Handshake(pipe_.EndB()).ok());
    // Drain the wrapped key; the session is now waiting for the manifest.
    ASSERT_TRUE(session_->Pump().ok());
    ASSERT_EQ(session_->state(), ProvisioningSession::State::kManifest);
  }

  std::optional<sgx::SgxDevice> device_;
  std::optional<sgx::HostOs> host_;
  std::optional<EngardeEnclave> enclave_;
  crypto::DuplexPipe pipe_;
  std::optional<ProvisioningSession> session_;
  RawClient client_;

  static sgx::QuotingEnclave* qe_;
  static Bytes* image_;
};

sgx::QuotingEnclave* SessionOrderingTest::qe_ = nullptr;
Bytes* SessionOrderingTest::image_ = nullptr;

TEST_F(SessionOrderingTest, BlockBeforeManifestRejected) {
  const Bytes block(kBlockSize, 0xab);
  ASSERT_TRUE(
      client_.Send(MessageType::kBlock, ByteView(block.data(), block.size()))
          .ok());
  const Status status = session_->Pump();
  ASSERT_EQ(status.code(), StatusCode::kProtocolError);
  EXPECT_NE(status.message().find("expected manifest as the first record"),
            std::string::npos);
}

TEST_F(SessionOrderingTest, UnexpectedRecordTypeDuringTransfer) {
  auto manifest = client::BuildManifest(ByteView(image_->data(),
                                                 image_->size()));
  ASSERT_TRUE(manifest.ok());
  const Bytes manifest_wire = manifest->Serialize();
  ASSERT_TRUE(client_
                  .Send(MessageType::kManifest,
                        ByteView(manifest_wire.data(), manifest_wire.size()))
                  .ok());
  // A verdict record from the *client* mid-transfer is nonsense.
  ASSERT_TRUE(client_.Send(MessageType::kVerdict, {}).ok());
  const Status status = session_->Pump();
  ASSERT_EQ(status.code(), StatusCode::kProtocolError);
  EXPECT_NE(status.message().find("unexpected record type"),
            std::string::npos);
}

TEST_F(SessionOrderingTest, PrematureDoneRejected) {
  auto manifest = client::BuildManifest(ByteView(image_->data(),
                                                 image_->size()));
  ASSERT_TRUE(manifest.ok());
  const Bytes manifest_wire = manifest->Serialize();
  ASSERT_TRUE(client_
                  .Send(MessageType::kManifest,
                        ByteView(manifest_wire.data(), manifest_wire.size()))
                  .ok());
  ASSERT_TRUE(client_.Send(MessageType::kDone, {}).ok());
  const Status status = session_->Pump();
  ASSERT_EQ(status.code(), StatusCode::kProtocolError);
  EXPECT_NE(status.message().find("fewer bytes"), std::string::npos);
}

TEST_F(SessionOrderingTest, OverflowingBlocksRejected) {
  Manifest manifest;
  manifest.file_size = 16;  // claims 16 bytes, then sends a whole page
  const Bytes manifest_wire = manifest.Serialize();
  ASSERT_TRUE(client_
                  .Send(MessageType::kManifest,
                        ByteView(manifest_wire.data(), manifest_wire.size()))
                  .ok());
  const Bytes block(kBlockSize, 0xcd);
  ASSERT_TRUE(
      client_.Send(MessageType::kBlock, ByteView(block.data(), block.size()))
          .ok());
  const Status status = session_->Pump();
  ASSERT_EQ(status.code(), StatusCode::kProtocolError);
  EXPECT_NE(status.message().find("more bytes"), std::string::npos);
}

TEST_F(SessionOrderingTest, OversizedManifestRejected) {
  Manifest manifest;
  manifest.file_size = 1ull << 32;  // larger than any staging heap
  const Bytes manifest_wire = manifest.Serialize();
  ASSERT_TRUE(client_
                  .Send(MessageType::kManifest,
                        ByteView(manifest_wire.data(), manifest_wire.size()))
                  .ok());
  const Status status = session_->Pump();
  ASSERT_EQ(status.code(), StatusCode::kProtocolError);
  EXPECT_NE(status.message().find("staging area"), std::string::npos);
}

TEST_F(SessionOrderingTest, RecordAfterVerdictIsReplay) {
  // Full well-formed exchange followed by one extra record: the session must
  // reach its verdict, then flag the straggler instead of processing it.
  auto manifest = client::BuildManifest(ByteView(image_->data(),
                                                 image_->size()));
  ASSERT_TRUE(manifest.ok());
  const Bytes manifest_wire = manifest->Serialize();
  ASSERT_TRUE(client_
                  .Send(MessageType::kManifest,
                        ByteView(manifest_wire.data(), manifest_wire.size()))
                  .ok());
  for (size_t offset = 0; offset < image_->size(); offset += kBlockSize) {
    const size_t take = std::min(kBlockSize, image_->size() - offset);
    ASSERT_TRUE(client_
                    .Send(MessageType::kBlock,
                          ByteView(image_->data() + offset, take))
                    .ok());
  }
  ASSERT_TRUE(client_.Send(MessageType::kDone, {}).ok());
  ASSERT_TRUE(client_.Send(MessageType::kDone, {}).ok());  // the replay
  const Status status = session_->Pump();
  ASSERT_EQ(status.code(), StatusCode::kProtocolError);
  EXPECT_NE(status.message().find("replay"), std::string::npos);
}

TEST_F(SessionOrderingTest, IncrementalPumpingAdvancesStateMachine) {
  // Records delivered one at a time with a pump between each: the session
  // must make exactly the progress the input allows and never block.
  auto manifest = client::BuildManifest(ByteView(image_->data(),
                                                 image_->size()));
  ASSERT_TRUE(manifest.ok());
  const Bytes manifest_wire = manifest->Serialize();
  ASSERT_TRUE(client_
                  .Send(MessageType::kManifest,
                        ByteView(manifest_wire.data(), manifest_wire.size()))
                  .ok());
  ASSERT_TRUE(session_->Pump().ok());
  EXPECT_EQ(session_->state(), ProvisioningSession::State::kBlocks);
  EXPECT_EQ(session_->blocks_received(), 0u);

  // An outcome is not available before the verdict.
  EXPECT_EQ(session_->TakeOutcome().status().code(),
            StatusCode::kFailedPrecondition);

  size_t sent = 0;
  for (size_t offset = 0; offset < image_->size(); offset += kBlockSize) {
    const size_t take = std::min(kBlockSize, image_->size() - offset);
    ASSERT_TRUE(client_
                    .Send(MessageType::kBlock,
                          ByteView(image_->data() + offset, take))
                    .ok());
    ASSERT_TRUE(session_->Pump().ok());
    ++sent;
    EXPECT_EQ(session_->blocks_received(), sent);
    EXPECT_EQ(session_->state(), ProvisioningSession::State::kBlocks);
  }
  // A dry pump mid-transfer is a no-op, not an error.
  ASSERT_TRUE(session_->Pump().ok());
  EXPECT_EQ(session_->state(), ProvisioningSession::State::kBlocks);

  ASSERT_TRUE(client_.Send(MessageType::kDone, {}).ok());
  ASSERT_TRUE(session_->Pump().ok());
  EXPECT_TRUE(session_->done());

  auto outcome = session_->TakeOutcome();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->verdict.compliant) << outcome->verdict.reason;
  EXPECT_EQ(outcome->stats.blocks_received, sent);
  // Single use: the outcome moves out exactly once.
  EXPECT_EQ(session_->TakeOutcome().status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace engarde::core
