// Staged/streaming equivalence for the inspection engine: provisioning any
// program with streaming inspection on (speculative per-block decode
// overlapped with upload, core/streaming.h) must produce bit-for-bit the
// verdict, stage reports and per-phase SGX-instruction attribution of the
// staged run — at every block size (the client controls how the file is
// chunked on the wire) and every inspection thread count. The overlap
// telemetry itself is scheduling-dependent and is only sanity-checked, never
// equality-gated. Torn uploads (mid-block EOF, stalled inbound) through a
// front end must fail their connection cleanly while speculative decodes are
// still in flight — the TSan CI job runs this file to pin that teardown.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/engarde.h"
#include "core/frontend.h"
#include "core/policy_liblink.h"
#include "elf/builder.h"
#include "net/transport.h"
#include "workload/catalog.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kTestRsaBits = 768;  // small keys keep the suite fast
constexpr double kCatalogScale = 0.2;

// Everything a provisioning run produces that must be invariant under the
// streaming mode, the wire block size and the thread count.
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t insn_buffer_pages = 0;
  size_t relocations_applied = 0;
  // StageReports flattened to their deterministic columns (wall_ns is
  // wall-clock and thus excluded, exactly as in EXPERIMENTS.md).
  std::string stages;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
  // Telemetry (reported, never gated).
  uint64_t streaming_text_bytes = 0;
  uint64_t streaming_bytes_before_done = 0;
  uint64_t streaming_spliced_sections = 0;
  uint64_t streaming_fallback_sections = 0;
};

void ExpectSameSnapshot(const Snapshot& staged, const Snapshot& streaming,
                        const std::string& label) {
  EXPECT_EQ(staged.compliant, streaming.compliant) << label;
  EXPECT_EQ(staged.reason, streaming.reason) << label;
  EXPECT_EQ(staged.instruction_count, streaming.instruction_count) << label;
  EXPECT_EQ(staged.insn_buffer_pages, streaming.insn_buffer_pages) << label;
  EXPECT_EQ(staged.relocations_applied, streaming.relocations_applied)
      << label;
  EXPECT_EQ(staged.stages, streaming.stages) << label;
  EXPECT_EQ(staged.disassembly_sgx, streaming.disassembly_sgx) << label;
  EXPECT_EQ(staged.policy_sgx, streaming.policy_sgx) << label;
  EXPECT_EQ(staged.loading_sgx, streaming.loading_sgx) << label;
  EXPECT_EQ(staged.channel_sgx, streaming.channel_sgx) << label;
  EXPECT_EQ(staged.total_sgx, streaming.total_sgx) << label;
  EXPECT_EQ(staged.trampolines, streaming.trampolines) << label;
}

struct RunConfig {
  bool streaming = false;
  size_t block_size = kBlockSize;
  size_t threads = 1;
};

class StreamingInspectTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("streaming-device"),
                                             kTestRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }
  static const sgx::QuotingEnclave& qe() { return *qe_; }

  static Result<Snapshot> Provision(const workload::BuiltProgram& program,
                                    PolicySet policies,
                                    const RunConfig& config) {
    sgx::CycleAccountant accountant;
    sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
    sgx::HostOs host(&device);

    EngardeOptions options;
    options.rsa_bits = kTestRsaBits;
    options.inspection_threads = config.threads;
    options.streaming_inspection = config.streaming;
    auto enclave = EngardeEnclave::Create(&host, qe(), std::move(policies),
                                          options);
    RETURN_IF_ERROR(enclave.status());

    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave->SendHello(pipe.EndA()));

    client::ClientOptions client_options;
    client_options.attestation_key = qe().attestation_public_key();
    client_options.skip_measurement_check = true;  // inspection path only
    client_options.block_size = config.block_size;
    client::Client client(client_options, program.image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));

    accountant.Reset();
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome,
                     enclave->RunProvisioning(pipe.EndA()));

    Snapshot snap;
    snap.compliant = outcome.verdict.compliant;
    snap.reason = outcome.verdict.reason;
    snap.instruction_count = outcome.stats.instruction_count;
    snap.insn_buffer_pages = outcome.stats.insn_buffer_pages;
    snap.relocations_applied = outcome.stats.relocations_applied;
    for (const StageReport& report : outcome.stage_reports) {
      snap.stages += std::string(StageName(report.stage)) + ":" +
                     std::string(StageOutcomeName(report.outcome)) + ":" +
                     std::to_string(report.sgx_instructions) + ";";
    }
    snap.disassembly_sgx =
        accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
    snap.policy_sgx =
        accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
    snap.loading_sgx =
        accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
    snap.channel_sgx =
        accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
    snap.total_sgx = accountant.total_sgx_instructions();
    snap.trampolines = accountant.total_trampolines();
    snap.streaming_text_bytes = outcome.stats.streaming_text_bytes;
    snap.streaming_bytes_before_done =
        outcome.stats.streaming_bytes_before_done;
    snap.streaming_spliced_sections =
        outcome.stats.streaming_spliced_sections;
    snap.streaming_fallback_sections =
        outcome.stats.streaming_fallback_sections;
    return snap;
  }

  // For each block size: provisions a staged reference (streaming off — the
  // channel phase's SGX cost scales with the record count, so the reference
  // must see the same wire chunking; thread invariance of the staged
  // pipeline is core_parallel_inspect_test's job) and asserts every
  // streaming run at that block size × threads {1, 2, 8} matches it.
  static Snapshot ExpectStreamingInvariant(
      const workload::BuiltProgram& program,
      const std::function<PolicySet()>& make_policies,
      const std::vector<size_t>& block_sizes, const std::string& label) {
    Snapshot first{};
    bool have_first = false;
    for (const size_t block_size : block_sizes) {
      RunConfig staged_config;
      staged_config.block_size = block_size;
      auto staged = Provision(program, make_policies(), staged_config);
      EXPECT_TRUE(staged.ok())
          << label << " staged @ block " << block_size << ": "
          << staged.status().ToString();
      if (!staged.ok()) continue;
      if (!have_first) {
        first = *staged;
        have_first = true;
      }
      for (const size_t threads : {1u, 2u, 8u}) {
        RunConfig config;
        config.streaming = true;
        config.block_size = block_size;
        config.threads = threads;
        auto streaming = Provision(program, make_policies(), config);
        const std::string variant = label + " @ block " +
                                    std::to_string(block_size) + " x " +
                                    std::to_string(threads) + " threads";
        EXPECT_TRUE(streaming.ok())
            << variant << ": " << streaming.status().ToString();
        if (!streaming.ok()) continue;
        ExpectSameSnapshot(*staged, *streaming, variant);
        // Overlap telemetry must be internally consistent whenever the
        // speculation engaged (it cannot decode more than it planned).
        EXPECT_LE(streaming->streaming_bytes_before_done,
                  streaming->streaming_text_bytes)
            << variant;
      }
    }
    return first;
  }

 private:
  static sgx::QuotingEnclave* qe_;
};

sgx::QuotingEnclave* StreamingInspectTest::qe_ = nullptr;

PolicySet LiblinkPolicy(const workload::SynthLibcOptions& libc) {
  PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  EXPECT_TRUE(db.ok());
  policies.push_back(std::make_unique<LibraryLinkingPolicy>(
      "synth-musl v" + libc.version, std::move(db).value()));
  return policies;
}

// ---- Equivalence ----------------------------------------------------------

TEST_F(StreamingInspectTest, FullCatalogStagedStreamingInvariant) {
  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program = workload::BuildBenchmarkScaled(
        entry, workload::BuildFlavor::kPlain, kCatalogScale);
    ASSERT_TRUE(program.ok()) << entry.name << ": "
                              << program.status().ToString();
    const Snapshot staged = ExpectStreamingInvariant(
        *program, [&] { return LiblinkPolicy(program->libc_options); },
        {4096, 1 << 20}, entry.name);
    EXPECT_TRUE(staged.compliant) << entry.name << ": " << staged.reason;
    EXPECT_GT(staged.instruction_count, 0u) << entry.name;
  }
}

TEST_F(StreamingInspectTest, OneByteBlocksStillBitIdentical) {
  // The degenerate wire: one encrypted record per byte. The inspector sees
  // every possible partial-staging state — the header alone, a torn phdr
  // table, chunks filling one byte at a time. (Full catalog at 1-byte blocks
  // would mean hundreds of thousands of AES-GCM records, so this runs one
  // small program; the chunk/plan machinery is size-oblivious.)
  workload::ProgramSpec spec;
  spec.name = "one-byte-blocks";
  spec.seed = 17;
  spec.target_instructions = 1200;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  const Snapshot staged = ExpectStreamingInvariant(
      *program, [&] { return LiblinkPolicy(program->libc_options); }, {1},
      "one-byte-blocks");
  EXPECT_TRUE(staged.compliant) << staged.reason;
}

TEST_F(StreamingInspectTest, RejectionReasonStreamingInvariant) {
  // Client links the vulnerable libc; the policy pins the fixed version.
  // The streaming run must report the exact staged rejection.
  workload::ProgramSpec spec;
  spec.name = "wrong-libc-streaming";
  spec.seed = 3;
  spec.target_instructions = 6000;
  spec.libc.version = "1.0.4";
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  workload::SynthLibcOptions pinned = program->libc_options;
  pinned.version = "1.0.5";
  const Snapshot staged = ExpectStreamingInvariant(
      *program, [&] { return LiblinkPolicy(pinned); }, {4096, 1 << 20},
      "wrong-libc-streaming");
  EXPECT_FALSE(staged.compliant);
  EXPECT_NE(staged.reason.find("library-linking"), std::string::npos)
      << staged.reason;
}

TEST_F(StreamingInspectTest, UndecodableTextFallsBackToStagedError) {
  // Junk text decodes unclean in every speculative chunk, so every section
  // falls back to the staged decode — which must then surface the staged
  // error verbatim.
  workload::BuiltProgram garbage;
  garbage.name = "garbage-streaming";
  elf::ElfBuilder builder;
  Bytes junk = {0x0f, 0x10, 0x00, 0x90};  // SSE movups: unsupported
  junk.resize(64, 0x90);
  const uint64_t tv = builder.AddTextSection(".text", junk);
  builder.AddSymbol("main", tv, 4, elf::kSttFunc);
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());
  garbage.image = *image;

  const Snapshot staged = ExpectStreamingInvariant(
      garbage, [] { return PolicySet{}; }, {1, 4096}, "garbage-streaming");
  EXPECT_FALSE(staged.compliant);
  EXPECT_NE(staged.reason.find("UNIMPLEMENTED"), std::string::npos)
      << staged.reason;
}

TEST_F(StreamingInspectTest, InlineModeOverlapsEverythingBeforeDone) {
  // With one inspection thread the speculative decode runs inline on the
  // producer: every planned chunk completes the moment its bytes land, so
  // by DONE the whole text is decoded and every section splices.
  auto program = workload::BuildBenchmarkScaled(
      workload::PaperBenchmarks().front(), workload::BuildFlavor::kPlain,
      kCatalogScale);
  ASSERT_TRUE(program.ok());
  RunConfig config;
  config.streaming = true;
  config.block_size = 4096;
  config.threads = 1;
  auto snap =
      Provision(*program, LiblinkPolicy(program->libc_options), config);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap->compliant) << snap->reason;
  EXPECT_GT(snap->streaming_text_bytes, 0u);
  EXPECT_EQ(snap->streaming_bytes_before_done, snap->streaming_text_bytes);
  EXPECT_GT(snap->streaming_spliced_sections, 0u);
  EXPECT_EQ(snap->streaming_fallback_sections, 0u);
}

// ---- Torn uploads through the front end -----------------------------------
// The async-barrier pump: a reactor sweep must neither block on an
// in-flight speculative decode nor misread "decode still running" as a
// stalled peer — and tearing the connection down mid-decode must be safe
// (the TSan job runs these).

PolicySet NoPolicies() { return {}; }

TEST_F(StreamingInspectTest, MidUploadEofFailsConnectionCleanly) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options.rsa_bits = kTestRsaBits;
  options.inspection_threads = 8;  // decode truly concurrent with the sweep
  ProvisioningFrontend frontend(&host, &qe(), NoPolicies, options);

  auto program = workload::BuildBenchmarkScaled(
      workload::PaperBenchmarks().front(), workload::BuildFlavor::kPlain,
      kCatalogScale);
  ASSERT_TRUE(program.ok());

  auto pipe = std::make_unique<crypto::DuplexPipe>();
  net::FaultPlan plan;
  // EOF deep inside the block stream: past the manifest and the first
  // blocks, so speculative decodes are already dispatched when the wire
  // dies mid-record.
  plan.close_inbound_after = 3000;
  auto accepted =
      frontend.Accept(std::make_unique<net::FaultInjectingTransport>(
          std::make_unique<net::PipeTransport>(pipe->EndA()), plan));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  const uint64_t id = *accepted;

  client::ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program->image);
  auto admission = client.AwaitAdmission(pipe->EndB());
  ASSERT_TRUE(admission.ok());
  ASSERT_FALSE(admission->has_value());
  ASSERT_TRUE(client.SendProgram(pipe->EndB()).ok());

  // DrainAll keeps sweeping while the session waits out its in-flight
  // decodes, then fails the connection on the truncated exchange and reaps
  // the slot once the tail is flushed.
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.state(id), ConnectionState::kReaped);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.connection_count(), 0u);
  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.done, 0u);
  EXPECT_EQ(metrics.reaped, 1u);
}

TEST_F(StreamingInspectTest, FrontendVerdictMatchesStagedAndRecordsOverlap) {
  // The same program through a streaming front end and a staged direct
  // drive: identical verdict, and the front end's metrics carry the
  // overlap telemetry for the verdicted session.
  auto program = workload::BuildBenchmarkScaled(
      workload::PaperBenchmarks().front(), workload::BuildFlavor::kPlain,
      kCatalogScale);
  ASSERT_TRUE(program.ok());

  RunConfig staged_config;  // streaming off
  auto staged = Provision(*program, LiblinkPolicy(program->libc_options),
                          staged_config);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();

  sgx::SgxDevice device(sgx::SgxDevice::Options{});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options.rsa_bits = kTestRsaBits;
  options.inspection_threads = 2;
  const auto libc = program->libc_options;
  ProvisioningFrontend frontend(&host, &qe(), [libc] {
    return LiblinkPolicy(libc);
  }, options);

  auto pipe = std::make_unique<crypto::DuplexPipe>();
  auto accepted = frontend.Accept(
      std::make_unique<net::PipeTransport>(pipe->EndA()));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  const uint64_t id = *accepted;

  client::ClientOptions client_options;
  client_options.attestation_key = qe().attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program->image);
  auto admission = client.AwaitAdmission(pipe->EndB());
  ASSERT_TRUE(admission.ok());
  ASSERT_FALSE(admission->has_value());
  ASSERT_TRUE(client.SendProgram(pipe->EndB()).ok());
  ASSERT_TRUE(frontend.DrainAll().ok());

  ASSERT_EQ(frontend.state(id), ConnectionState::kDone);
  auto outcome = frontend.TakeOutcome(id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->verdict.compliant, staged->compliant);
  EXPECT_EQ(outcome->verdict.reason, staged->reason);
  EXPECT_EQ(outcome->stats.instruction_count, staged->instruction_count);

  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.decode_overlap_count, 1u);
  EXPECT_EQ(metrics.decode_early_bytes_total,
            outcome->stats.streaming_bytes_before_done);
  EXPECT_LE(metrics.decode_overlap_max_permille, 1000u);
}

}  // namespace
}  // namespace engarde::core
