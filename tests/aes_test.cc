#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "common/hex.h"

namespace engarde::crypto {
namespace {

Aes256Key KeyFromHex(const std::string& hex) {
  auto bytes = HexDecode(hex);
  EXPECT_TRUE(bytes.ok());
  Aes256Key key{};
  std::copy(bytes->begin(), bytes->end(), key.begin());
  return key;
}

// FIPS-197 Appendix C.3: AES-256 single-block vector.
TEST(Aes256Test, Fips197AppendixC3) {
  const Aes256Key key = KeyFromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto pt = HexDecode("00112233445566778899aabbccddeeff");
  ASSERT_TRUE(pt.ok());

  Aes256 cipher(key);
  uint8_t ct[16];
  cipher.EncryptBlock(pt->data(), ct);
  EXPECT_EQ(HexEncode(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");

  uint8_t back[16];
  cipher.DecryptBlock(ct, back);
  EXPECT_EQ(HexEncode(ByteView(back, 16)), "00112233445566778899aabbccddeeff");
}

// SP 800-38A F.5.5: CTR-AES256.Encrypt (block 1).
// The SP's counter block is f0f1...ff; our CTR layout is nonce(12)||ctr(4),
// so nonce = f0..fb and the first counter value is 0xfcfdfeff.
TEST(AesCtrTest, Sp80038aCtrAes256FirstBlock) {
  const Aes256Key key = KeyFromHex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  std::array<uint8_t, 12> nonce{};
  for (int i = 0; i < 12; ++i) nonce[i] = static_cast<uint8_t>(0xf0 + i);

  // Stream offset such that the counter equals 0xfcfdfeff for the first block.
  const uint64_t offset = 0xfcfdfeffull * 16;
  AesCtr ctr(key, nonce);
  auto pt = HexDecode("6bc1bee22e409f96e93d7e117393172a");
  ASSERT_TRUE(pt.ok());
  const Bytes ct = ctr.Crypt(offset, ByteView(pt->data(), pt->size()));
  EXPECT_EQ(HexEncode(ByteView(ct.data(), ct.size())),
            "601ec313775789a5b7a7f504bbf3d228");
}

TEST(AesCtrTest, EncryptDecryptRoundTrip) {
  const Aes256Key key = KeyFromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const std::array<uint8_t, 12> nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};

  AesCtr enc(key, nonce);
  AesCtr dec(key, nonce);
  const Bytes msg = ToBytes("the quick brown fox jumps over the lazy dog");
  const Bytes ct = enc.Crypt(0, ByteView(msg.data(), msg.size()));
  EXPECT_NE(ct, msg);
  EXPECT_EQ(dec.Crypt(0, ByteView(ct.data(), ct.size())), msg);
}

TEST(AesCtrTest, SeekableKeystream) {
  const Aes256Key key = KeyFromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const std::array<uint8_t, 12> nonce{};

  // Encrypt 100 bytes in one go, then decrypt a middle slice by offset.
  AesCtr ctr(key, nonce);
  Bytes msg(100);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);
  const Bytes ct = ctr.Crypt(0, ByteView(msg.data(), msg.size()));

  AesCtr ctr2(key, nonce);
  const Bytes slice =
      ctr2.Crypt(37, ByteView(ct.data() + 37, 25));
  EXPECT_EQ(slice, Bytes(msg.begin() + 37, msg.begin() + 62));
}

TEST(AesCtrTest, DistinctNoncesDistinctStreams) {
  const Aes256Key key{};
  const std::array<uint8_t, 12> n1 = {1};
  const std::array<uint8_t, 12> n2 = {2};
  AesCtr a(key, n1), b(key, n2);
  const Bytes zeros(64, 0);
  EXPECT_NE(a.Crypt(0, ByteView(zeros.data(), zeros.size())),
            b.Crypt(0, ByteView(zeros.data(), zeros.size())));
}

TEST(AesCtrTest, EmptyInputIsNoop) {
  const Aes256Key key{};
  const std::array<uint8_t, 12> nonce{};
  AesCtr ctr(key, nonce);
  EXPECT_TRUE(ctr.Crypt(0, ByteView{}).empty());
}

// Round-trip over many lengths, including non-block-aligned and offset ones.
class AesCtrLengthSweep
    : public ::testing::TestWithParam<std::pair<size_t, uint64_t>> {};

TEST_P(AesCtrLengthSweep, RoundTrips) {
  const auto [len, offset] = GetParam();
  const Aes256Key key = KeyFromHex(
      "2b7e151628aed2a6abf7158809cf4f3c2b7e151628aed2a6abf7158809cf4f3c");
  const std::array<uint8_t, 12> nonce = {9, 9, 9};
  Bytes msg(len);
  for (size_t i = 0; i < len; ++i) msg[i] = static_cast<uint8_t>(i * 17 + 3);

  AesCtr ctr(key, nonce);
  Bytes ct = ctr.Crypt(offset, ByteView(msg.data(), msg.size()));
  AesCtr ctr2(key, nonce);
  EXPECT_EQ(ctr2.Crypt(offset, ByteView(ct.data(), ct.size())), msg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AesCtrLengthSweep,
    ::testing::Values(std::pair<size_t, uint64_t>{1, 0},
                      std::pair<size_t, uint64_t>{15, 0},
                      std::pair<size_t, uint64_t>{16, 0},
                      std::pair<size_t, uint64_t>{17, 0},
                      std::pair<size_t, uint64_t>{4096, 0},
                      std::pair<size_t, uint64_t>{100, 1},
                      std::pair<size_t, uint64_t>{100, 15},
                      std::pair<size_t, uint64_t>{100, 16},
                      std::pair<size_t, uint64_t>{333, 12345}));

// Property: decrypt(encrypt(x)) == x for every byte value pattern.
TEST(Aes256Test, AllByteValuesRoundTripThroughBlock) {
  const Aes256Key key = KeyFromHex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Aes256 cipher(key);
  for (int fill = 0; fill < 256; fill += 5) {
    uint8_t pt[16], ct[16], back[16];
    std::fill(pt, pt + 16, static_cast<uint8_t>(fill));
    cipher.EncryptBlock(pt, ct);
    cipher.DecryptBlock(ct, back);
    EXPECT_TRUE(std::equal(pt, pt + 16, back)) << "fill=" << fill;
  }
}

}  // namespace
}  // namespace engarde::crypto
