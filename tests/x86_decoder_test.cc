#include "x86/decoder.h"

#include <gtest/gtest.h>

#include "common/hex.h"
#include "x86/encoder.h"

namespace engarde::x86 {
namespace {

Insn DecodeHex(const std::string& hex, uint64_t vaddr = 0x1000) {
  auto bytes = HexDecode(hex);
  EXPECT_TRUE(bytes.ok()) << hex;
  auto insn = DecodeOne(ByteView(bytes->data(), bytes->size()), 0, vaddr);
  EXPECT_TRUE(insn.ok()) << hex << " -> " << insn.status().ToString();
  return insn.ok() ? *insn : Insn{};
}

// ---- The exact byte sequences from the paper's policy listings ------------

TEST(DecoderTest, MovFsCanaryLoad) {
  // 19311: mov %fs:0x28, %rax
  const Insn insn = DecodeHex("64488b042528000000");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(insn.length, 9);
  EXPECT_EQ(insn.op_size, 8);
  ASSERT_EQ(insn.dst.kind, OperandKind::kReg);
  EXPECT_EQ(insn.dst.reg, kRax);
  ASSERT_EQ(insn.src.kind, OperandKind::kMem);
  EXPECT_EQ(insn.src.mem.segment, Segment::kFs);
  EXPECT_TRUE(insn.src.mem.IsAbsolute());
  EXPECT_EQ(insn.src.mem.disp, 0x28);
}

TEST(DecoderTest, MovCanaryToStack) {
  // 1931a: mov %rax, (%rsp)
  const Insn insn = DecodeHex("48890424");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
  ASSERT_EQ(insn.dst.kind, OperandKind::kMem);
  EXPECT_TRUE(insn.dst.IsMemWithBase(kRsp));
  EXPECT_EQ(insn.dst.mem.disp, 0);
  ASSERT_EQ(insn.src.kind, OperandKind::kReg);
  EXPECT_EQ(insn.src.reg, kRax);
}

TEST(DecoderTest, CmpStackAgainstCanary) {
  // 19407: cmp (%rsp), %rax
  const Insn insn = DecodeHex("483b0424");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kCmp);
  ASSERT_EQ(insn.dst.kind, OperandKind::kReg);
  EXPECT_EQ(insn.dst.reg, kRax);
  EXPECT_TRUE(insn.src.IsMemWithBase(kRsp));
}

TEST(DecoderTest, JneRel8) {
  // 1940b: jne 1941f  (jne rel8, from next insn at 0x1002: rel = 0x12)
  const Insn insn = DecodeHex("7512", 0x1000);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kJcc);
  EXPECT_EQ(insn.cond, kCondNe);
  EXPECT_EQ(insn.BranchTarget(), 0x1014u);
}

TEST(DecoderTest, CallRel32) {
  // callq __stack_chk_fail
  const Insn insn = DecodeHex("e8fb040000", 0x2000);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kCall);
  EXPECT_EQ(insn.length, 5);
  EXPECT_EQ(insn.BranchTarget(), 0x2000u + 5 + 0x4fb);
}

TEST(DecoderTest, LeaRipRelative) {
  // 1b459: lea 0x85c70(%rip), %rax
  const Insn insn = DecodeHex("488d05705c0800", 0x1b459);
  EXPECT_EQ(insn.mnemonic, Mnemonic::kLea);
  EXPECT_EQ(insn.length, 7);
  ASSERT_EQ(insn.dst.kind, OperandKind::kReg);
  EXPECT_EQ(insn.dst.reg, kRax);
  ASSERT_EQ(insn.src.kind, OperandKind::kRipRel);
  EXPECT_EQ(insn.src.mem.disp, 0x85c70);
}

TEST(DecoderTest, SubEaxEcx) {
  // 1b460: sub %eax, %ecx (32-bit)
  const Insn insn = DecodeHex("29c1");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kSub);
  EXPECT_EQ(insn.op_size, 4);
  EXPECT_TRUE(insn.dst.IsReg(kRcx));
  EXPECT_TRUE(insn.src.IsReg(kRax));
}

TEST(DecoderTest, AndRcxImm) {
  // 1b462: and $0x1ff8, %rcx
  const Insn insn = DecodeHex("4881e1f81f0000");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kAnd);
  EXPECT_EQ(insn.op_size, 8);
  EXPECT_TRUE(insn.dst.IsReg(kRcx));
  ASSERT_EQ(insn.src.kind, OperandKind::kImm);
  EXPECT_EQ(insn.src.imm, 0x1ff8);
}

TEST(DecoderTest, AddRaxRcx) {
  // 1b469: add %rax, %rcx
  const Insn insn = DecodeHex("4801c1");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kAdd);
  EXPECT_TRUE(insn.dst.IsReg(kRcx));
  EXPECT_TRUE(insn.src.IsReg(kRax));
}

TEST(DecoderTest, CallIndirectRcx) {
  // 1b475: callq *%rcx
  const Insn insn = DecodeHex("ffd1");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kCallIndirect);
  ASSERT_EQ(insn.src.kind, OperandKind::kReg);
  EXPECT_EQ(insn.src.reg, kRcx);
  EXPECT_TRUE(insn.IsIndirectBranch());
}

TEST(DecoderTest, JumpTableEntry) {
  // a19d0: jmpq <target> ; nopl (%rax)
  auto bytes = HexDecode("e9bbf6ffff0f1f00");
  ASSERT_TRUE(bytes.ok());
  auto insns = DecodeAll(ByteView(bytes->data(), bytes->size()), 0xa19d0);
  ASSERT_TRUE(insns.ok());
  ASSERT_EQ(insns->size(), 2u);
  EXPECT_EQ((*insns)[0].mnemonic, Mnemonic::kJmp);
  EXPECT_EQ((*insns)[0].length, 5);
  EXPECT_EQ((*insns)[1].mnemonic, Mnemonic::kNop);
  EXPECT_EQ((*insns)[1].length, 3);
}

// ---- General decode coverage ------------------------------------------------

TEST(DecoderTest, PushPopAllRegisters) {
  for (int r = 0; r < 16; ++r) {
    Assembler as(0);
    as.Push(static_cast<Reg>(r));
    as.Pop(static_cast<Reg>(r));
    auto insns = DecodeAll(ByteView(as.bytes().data(), as.bytes().size()), 0);
    ASSERT_TRUE(insns.ok()) << "reg " << r;
    ASSERT_EQ(insns->size(), 2u);
    EXPECT_EQ((*insns)[0].mnemonic, Mnemonic::kPush);
    EXPECT_EQ((*insns)[0].dst.reg, r);
    EXPECT_EQ((*insns)[1].mnemonic, Mnemonic::kPop);
    EXPECT_EQ((*insns)[1].dst.reg, r);
    // push/pop default to 64-bit without REX.W.
    EXPECT_EQ((*insns)[0].op_size, 8);
  }
}

TEST(DecoderTest, MovImm64) {
  const Insn insn = DecodeHex("48b8efcdab8967452301");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(insn.length, 10);
  EXPECT_EQ(insn.op_size, 8);
  EXPECT_TRUE(insn.dst.IsReg(kRax));
  EXPECT_EQ(static_cast<uint64_t>(insn.src.imm), 0x0123456789abcdefull);
}

TEST(DecoderTest, MovImm32ZeroExtends) {
  const Insn insn = DecodeHex("b878563412");  // mov $0x12345678, %eax
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(insn.op_size, 4);
  EXPECT_EQ(insn.src.imm, 0x12345678);
}

TEST(DecoderTest, Grp1SignExtendedImm8) {
  const Insn insn = DecodeHex("4883c0f8");  // add $-8, %rax
  EXPECT_EQ(insn.mnemonic, Mnemonic::kAdd);
  EXPECT_EQ(insn.src.imm, -8);
}

TEST(DecoderTest, MemOperandWithDisp8AndDisp32) {
  const Insn d8 = DecodeHex("488b4510");  // mov 0x10(%rbp), %rax
  EXPECT_TRUE(d8.src.IsMemWithBase(kRbp));
  EXPECT_EQ(d8.src.mem.disp, 0x10);
  EXPECT_EQ(d8.disp_len, 1);

  const Insn d32 = DecodeHex("488b8000010000");  // mov 0x100(%rax), %rax
  EXPECT_TRUE(d32.src.IsMemWithBase(kRax));
  EXPECT_EQ(d32.src.mem.disp, 0x100);
  EXPECT_EQ(d32.disp_len, 4);
}

TEST(DecoderTest, SibWithIndexAndScale) {
  const Insn insn = DecodeHex("488b04c8");  // mov (%rax,%rcx,8), %rax
  ASSERT_EQ(insn.src.kind, OperandKind::kMem);
  EXPECT_EQ(insn.src.mem.base, kRax);
  EXPECT_EQ(insn.src.mem.index, kRcx);
  EXPECT_EQ(insn.src.mem.scale, 8);
}

TEST(DecoderTest, ExtendedRegisters) {
  const Insn insn = DecodeHex("4d89c8");  // mov %r9, %r8
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
  EXPECT_TRUE(insn.dst.IsReg(kR8));
  EXPECT_TRUE(insn.src.IsReg(kR9));
}

TEST(DecoderTest, JccRel32AllConditions) {
  for (int cc = 0; cc < 16; ++cc) {
    Bytes code = {0x0f, static_cast<uint8_t>(0x80 | cc), 0x10, 0, 0, 0};
    auto insn = DecodeOne(ByteView(code.data(), code.size()), 0, 0x400000);
    ASSERT_TRUE(insn.ok()) << cc;
    EXPECT_EQ(insn->mnemonic, Mnemonic::kJcc);
    EXPECT_EQ(insn->cond, cc);
    EXPECT_EQ(insn->BranchTarget(), 0x400016u);
  }
}

TEST(DecoderTest, SetccAndCmovcc) {
  const Insn setne = DecodeHex("0f95c0");  // setne %al
  EXPECT_EQ(setne.mnemonic, Mnemonic::kSetcc);
  EXPECT_EQ(setne.cond, kCondNe);
  EXPECT_EQ(setne.op_size, 1);

  const Insn cmove = DecodeHex("480f44c1");  // cmove %rcx, %rax
  EXPECT_EQ(cmove.mnemonic, Mnemonic::kCmov);
  EXPECT_EQ(cmove.cond, kCondE);
  EXPECT_TRUE(cmove.dst.IsReg(kRax));
}

TEST(DecoderTest, SystemInstructions) {
  EXPECT_EQ(DecodeHex("0f05").mnemonic, Mnemonic::kSyscall);
  EXPECT_EQ(DecodeHex("cc").mnemonic, Mnemonic::kInt3);
  EXPECT_EQ(DecodeHex("cd80").mnemonic, Mnemonic::kInt);
  EXPECT_EQ(DecodeHex("f4").mnemonic, Mnemonic::kHlt);
  EXPECT_EQ(DecodeHex("0fa2").mnemonic, Mnemonic::kCpuid);
  EXPECT_EQ(DecodeHex("0f31").mnemonic, Mnemonic::kRdtsc);
  EXPECT_EQ(DecodeHex("0f0b").mnemonic, Mnemonic::kUd2);
}

TEST(DecoderTest, Endbr64) {
  const Insn insn = DecodeHex("f30f1efa");
  EXPECT_EQ(insn.mnemonic, Mnemonic::kEndbr64);
  EXPECT_EQ(insn.length, 4);
}

TEST(DecoderTest, MultiByteNops) {
  for (size_t n = 1; n <= 9; ++n) {
    Assembler as(0);
    as.NopBytes(n);
    ASSERT_EQ(as.bytes().size(), n);
    auto insn = DecodeOne(ByteView(as.bytes().data(), n), 0, 0);
    ASSERT_TRUE(insn.ok()) << "nop size " << n << ": " << insn.status().ToString();
    EXPECT_EQ(insn->mnemonic, Mnemonic::kNop) << n;
    EXPECT_EQ(insn->length, n) << n;
  }
}

TEST(DecoderTest, RetForms) {
  EXPECT_EQ(DecodeHex("c3").mnemonic, Mnemonic::kRet);
  const Insn retn = DecodeHex("c20800");  // ret $8
  EXPECT_EQ(retn.mnemonic, Mnemonic::kRet);
  EXPECT_EQ(retn.length, 3);
}

TEST(DecoderTest, ByteStructureMetadata) {
  // 64 48 8b 04 25 28 00 00 00: seg prefix + REX + opcode + modrm + sib + disp32
  const Insn insn = DecodeHex("64488b042528000000");
  EXPECT_EQ(insn.prefix_len, 2);  // 0x64 + REX
  EXPECT_EQ(insn.opcode_len, 1);
  EXPECT_EQ(insn.modrm_len, 1);
  EXPECT_EQ(insn.sib_len, 1);
  EXPECT_EQ(insn.disp_len, 4);
  EXPECT_EQ(insn.imm_len, 0);
  EXPECT_EQ(insn.prefix_len + insn.opcode_len + insn.modrm_len + insn.sib_len +
                insn.disp_len + insn.imm_len,
            insn.length);
}

// ---- Rejection behaviour -----------------------------------------------------

TEST(DecoderTest, RejectsTruncatedInstruction) {
  auto bytes = HexDecode("4881");  // and/cmp/... missing modrm+imm
  ASSERT_TRUE(bytes.ok());
  EXPECT_FALSE(DecodeOne(ByteView(bytes->data(), bytes->size()), 0, 0).ok());
}

TEST(DecoderTest, RejectsUnsupportedOpcodes) {
  // SSE (0F 10 = movups) must be UNIMPLEMENTED, not misdecoded.
  auto bytes = HexDecode("0f1000");
  ASSERT_TRUE(bytes.ok());
  auto r = DecodeOne(ByteView(bytes->data(), bytes->size()), 0, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(DecoderTest, RejectsThreeByteMaps) {
  auto bytes = HexDecode("0f3800c0");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(DecodeOne(ByteView(bytes->data(), bytes->size()), 0, 0)
                .status()
                .code(),
            StatusCode::kUnimplemented);
}

TEST(DecoderTest, RejectsPrefixFlood) {
  Bytes code(8, 0x66);
  code.push_back(0x90);
  EXPECT_FALSE(DecodeOne(ByteView(code.data(), code.size()), 0, 0).ok());
}

TEST(DecoderTest, NeverCrashesOnArbitraryBytes) {
  // Exhaustive two-byte prefix sweep: decode must always terminate with
  // either a valid instruction or a clean error.
  Bytes code(kMaxInsnLength, 0);
  for (int b0 = 0; b0 < 256; ++b0) {
    for (int b1 = 0; b1 < 256; b1 += 7) {
      code[0] = static_cast<uint8_t>(b0);
      code[1] = static_cast<uint8_t>(b1);
      (void)DecodeOne(ByteView(code.data(), code.size()), 0, 0);
    }
  }
  SUCCEED();
}

// ---- Encoder/decoder round-trip properties ----------------------------------

struct RoundTripCase {
  const char* name;
  void (*emit)(Assembler&);
  Mnemonic expect;
};

void EmitMovRegReg(Assembler& a) { a.MovRegReg(kRbx, kR12); }
void EmitMovLoad(Assembler& a) { a.MovLoad(kRdx, kRbp, -24); }
void EmitMovStore(Assembler& a) { a.MovStore(kRsp, 8, kRdi); }
void EmitAdd(Assembler& a) { a.AddRegReg(kR9, kRsi); }
void EmitSub32(Assembler& a) { a.SubRegReg32(kRcx, kRax); }
void EmitAndImm(Assembler& a) { a.AndRegImm32(kRcx, 0x1ff8); }
void EmitXor(Assembler& a) { a.XorRegReg(kR15, kR15); }
void EmitCmpMem(Assembler& a) { a.CmpRegMem(kRax, kRsp, 0); }
void EmitLea(Assembler& a) { a.LeaRipRel(kR11, 0x1234); }
void EmitImul(Assembler& a) { a.ImulRegReg(kRax, kRdx); }
void EmitShl(Assembler& a) { a.ShlRegImm8(kRdi, 3); }
void EmitCallInd(Assembler& a) { a.CallIndirectReg(kR10); }
void EmitJmpInd(Assembler& a) { a.JmpIndirectReg(kRax); }
void EmitFsLoad(Assembler& a) { a.MovRegFsDisp(kRcx, 0x28); }
void EmitMovImm64(Assembler& a) { a.MovRegImm64(kR14, 0xdeadbeefcafebabe); }
void EmitTest(Assembler& a) { a.TestRegReg(kRax, kRax); }
void EmitCmpImm(Assembler& a) { a.CmpRegImm32(kRbx, 100); }

class EncoderRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(EncoderRoundTrip, DecodesToSameMnemonic) {
  const RoundTripCase& c = GetParam();
  Assembler as(0x400000);
  c.emit(as);
  auto insns = DecodeAll(ByteView(as.bytes().data(), as.bytes().size()),
                         0x400000);
  ASSERT_TRUE(insns.ok()) << c.name << ": " << insns.status().ToString();
  ASSERT_EQ(insns->size(), 1u) << c.name;
  EXPECT_EQ((*insns)[0].mnemonic, c.expect) << c.name;
  EXPECT_EQ((*insns)[0].length, as.bytes().size()) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EncoderRoundTrip,
    ::testing::Values(
        RoundTripCase{"mov_rr", EmitMovRegReg, Mnemonic::kMov},
        RoundTripCase{"mov_load", EmitMovLoad, Mnemonic::kMov},
        RoundTripCase{"mov_store", EmitMovStore, Mnemonic::kMov},
        RoundTripCase{"add", EmitAdd, Mnemonic::kAdd},
        RoundTripCase{"sub32", EmitSub32, Mnemonic::kSub},
        RoundTripCase{"and_imm", EmitAndImm, Mnemonic::kAnd},
        RoundTripCase{"xor", EmitXor, Mnemonic::kXor},
        RoundTripCase{"cmp_mem", EmitCmpMem, Mnemonic::kCmp},
        RoundTripCase{"lea", EmitLea, Mnemonic::kLea},
        RoundTripCase{"imul", EmitImul, Mnemonic::kImul},
        RoundTripCase{"shl", EmitShl, Mnemonic::kShl},
        RoundTripCase{"call_ind", EmitCallInd, Mnemonic::kCallIndirect},
        RoundTripCase{"jmp_ind", EmitJmpInd, Mnemonic::kJmpIndirect},
        RoundTripCase{"fs_load", EmitFsLoad, Mnemonic::kMov},
        RoundTripCase{"mov_imm64", EmitMovImm64, Mnemonic::kMov},
        RoundTripCase{"test", EmitTest, Mnemonic::kTest},
        RoundTripCase{"cmp_imm", EmitCmpImm, Mnemonic::kCmp}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

TEST(EncoderTest, BranchTargetsResolve) {
  Assembler as(0x1000);
  as.CallAbs(0x2000);          // at 0x1000
  as.JmpAbs(0x1000);           // at 0x1005
  as.JccAbs(kCondNe, 0x1800);  // at 0x100a
  auto insns = DecodeAll(ByteView(as.bytes().data(), as.bytes().size()), 0x1000);
  ASSERT_TRUE(insns.ok());
  ASSERT_EQ(insns->size(), 3u);
  EXPECT_EQ((*insns)[0].BranchTarget(), 0x2000u);
  EXPECT_EQ((*insns)[1].BranchTarget(), 0x1000u);
  EXPECT_EQ((*insns)[2].BranchTarget(), 0x1800u);
}

TEST(EncoderTest, LabelsFixUpForwardReferences) {
  Assembler as(0x1000);
  auto skip = as.NewLabel();
  as.JccLabel(kCondE, skip);
  as.Nop();
  as.Nop();
  as.Bind(skip);
  as.Ret();
  Bytes code = as.TakeBytes();
  auto insns = DecodeAll(ByteView(code.data(), code.size()), 0x1000);
  ASSERT_TRUE(insns.ok());
  // jcc (6) + nop + nop -> label at 0x1008.
  EXPECT_EQ((*insns)[0].BranchTarget(), 0x1008u);
  EXPECT_EQ((*insns)[3].mnemonic, Mnemonic::kRet);
}

TEST(EncoderTest, LeaRipRelToComputesDisplacement) {
  Assembler as(0x5000);
  as.LeaRipRelTo(kRax, 0x85c70 + 0x5007);  // paper's lea shape
  auto insn = DecodeOne(ByteView(as.bytes().data(), as.bytes().size()), 0, 0x5000);
  ASSERT_TRUE(insn.ok());
  // target = next(0x5007) + disp
  EXPECT_EQ(insn->NextAddr() + static_cast<uint64_t>(insn->src.mem.disp),
            0x85c70u + 0x5007u);
}

TEST(EncoderTest, BundleAlignForPreventsStraddle) {
  Assembler as(0);
  as.NopBytes(30);  // position 30 within the bundle
  as.BundleAlignFor(5);
  EXPECT_EQ(as.size() % 32, 0u);  // padded to the boundary
  as.CallAbs(0x100);
  // Re-check: instruction sits fully inside bundle 2.
  EXPECT_LE(as.size(), 64u);
}

TEST(EncoderTest, RspAndR12MemOperandsUseSib) {
  // rsp and r12 as base registers force a SIB byte; make sure both decode.
  Assembler as(0);
  as.MovStore(kRsp, 0, kRax);
  as.MovStore(kR12, 0, kRax);
  as.MovLoad(kRbx, kRsp, 64);
  as.MovLoad(kRbx, kR12, 64);
  auto insns = DecodeAll(ByteView(as.bytes().data(), as.bytes().size()), 0);
  ASSERT_TRUE(insns.ok()) << insns.status().ToString();
  ASSERT_EQ(insns->size(), 4u);
  EXPECT_TRUE((*insns)[0].dst.IsMemWithBase(kRsp));
  EXPECT_TRUE((*insns)[1].dst.IsMemWithBase(kR12));
  EXPECT_TRUE((*insns)[2].src.IsMemWithBase(kRsp));
  EXPECT_TRUE((*insns)[3].src.IsMemWithBase(kR12));
}

TEST(EncoderTest, RbpAndR13MemOperandsForceDisp) {
  // rbp/r13 with zero displacement still need mod=01 disp8=0.
  Assembler as(0);
  as.MovStore(kRbp, 0, kRax);
  as.MovStore(kR13, 0, kRax);
  auto insns = DecodeAll(ByteView(as.bytes().data(), as.bytes().size()), 0);
  ASSERT_TRUE(insns.ok());
  EXPECT_TRUE((*insns)[0].dst.IsMemWithBase(kRbp));
  EXPECT_EQ((*insns)[0].dst.mem.disp, 0);
  EXPECT_TRUE((*insns)[1].dst.IsMemWithBase(kR13));
}

TEST(InsnTest, ToStringRendersKeyForms) {
  EXPECT_NE(DecodeHex("64488b042528000000").ToString().find("%fs:"),
            std::string::npos);
  EXPECT_NE(DecodeHex("ffd1").ToString().find("callq*"), std::string::npos);
  EXPECT_NE(DecodeHex("7512", 0x1000).ToString().find("jne"),
            std::string::npos);
}

}  // namespace
}  // namespace engarde::x86
