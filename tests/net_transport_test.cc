// Transport layer for the provisioning front end (net/transport.h,
// net/tcp.h): the in-memory pipe adapter, the frame-completeness peeks the
// blocking client library is bridged with, and a real non-blocking TCP
// loopback round trip including half-close EOF surfacing.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/channel.h"
#include "crypto/hmac.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace engarde::net {
namespace {

Bytes Frame(ByteView payload) {
  Bytes framed;
  AppendLe32(framed, static_cast<uint32_t>(payload.size()));
  AppendBytes(framed, payload);
  return framed;
}

TEST(PipeTransportTest, DrainsExactlyWhatThePeerWrote) {
  crypto::DuplexPipe pipe;
  PipeTransport transport(pipe.EndA());
  pipe.EndB().Write(ToBytes("hello"));
  Bytes out;
  auto drained = transport.Drain(out);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, 5u);
  EXPECT_EQ(out, ToBytes("hello"));
  // Nothing further pending.
  auto empty = transport.Drain(out);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(PipeTransportTest, SendReachesThePeerAndCloseSignalsEof) {
  crypto::DuplexPipe pipe;
  PipeTransport transport(pipe.EndA());
  ASSERT_TRUE(transport.Send(ToBytes("verdict")).ok());
  auto flushed = transport.Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_TRUE(*flushed);
  EXPECT_EQ(pipe.EndB().Available(), 7u);

  EXPECT_FALSE(transport.AtEof());
  pipe.EndB().CloseWrite();
  EXPECT_TRUE(transport.AtEof());  // peer gone, nothing pending
  transport.Close();
  EXPECT_TRUE(pipe.EndB().PeerClosed());
  EXPECT_FALSE(pipe.EndB().AtEof());  // "verdict" still queued
  ASSERT_TRUE(pipe.EndB().Read(7).ok());
  EXPECT_TRUE(pipe.EndB().AtEof());
}

TEST(PipeTransportTest, EofHoldsOffWhileBytesArePending) {
  crypto::DuplexPipe pipe;
  PipeTransport transport(pipe.EndA());
  pipe.EndB().Write(ToBytes("tail"));
  pipe.EndB().CloseWrite();
  // "Peer gone" must not eclipse "bytes pending".
  EXPECT_FALSE(transport.AtEof());
  Bytes out;
  ASSERT_TRUE(transport.Drain(out).ok());
  EXPECT_TRUE(transport.AtEof());
}

TEST(FramePeekTest, CountsOnlyFullyQueuedFrames) {
  crypto::DuplexPipe pipe;
  crypto::DuplexPipe::Endpoint reader = pipe.EndB();
  EXPECT_FALSE(HasCompleteFrames(reader, 1));

  const Bytes first = Frame(ToBytes("quote"));
  const Bytes second = Frame(ToBytes("rsa-key"));
  // Split the first frame mid-header, then mid-payload.
  pipe.EndA().Write(ByteView(first.data(), 2));
  EXPECT_FALSE(HasCompleteFrames(reader, 1));
  pipe.EndA().Write(ByteView(first.data() + 2, 4));
  EXPECT_FALSE(HasCompleteFrames(reader, 1));
  pipe.EndA().Write(ByteView(first.data() + 6, first.size() - 6));
  EXPECT_TRUE(HasCompleteFrames(reader, 1));
  EXPECT_FALSE(HasCompleteFrames(reader, 2));

  pipe.EndA().Write(second);
  EXPECT_TRUE(HasCompleteFrames(reader, 2));
  EXPECT_FALSE(HasCompleteFrames(reader, 3));
}

TEST(FramePeekTest, SecureRecordNeedsHeaderBodyAndTag) {
  crypto::DuplexPipe pipe;
  crypto::DuplexPipe::Endpoint reader = pipe.EndB();
  EXPECT_FALSE(HasCompleteSecureRecord(reader));

  // Secure record layout: u32 length || u64 sequence || ciphertext || tag.
  const size_t body = 24;
  Bytes record;
  AppendLe32(record, static_cast<uint32_t>(body));
  AppendLe64(record, 0);
  record.resize(record.size() + body + crypto::HmacSha256::kTagSize - 1, 0xAB);
  pipe.EndA().Write(record);
  EXPECT_FALSE(HasCompleteSecureRecord(reader));  // one tag byte short
  pipe.EndA().Write(Bytes{0xAB});
  EXPECT_TRUE(HasCompleteSecureRecord(reader));
}

TEST(TcpTransportTest, LoopbackRoundTripAndEof) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener->port(), 0);
  EXPECT_GE(listener->descriptor(), 0);

  auto client = TcpTransport::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::unique_ptr<Transport> server;
  for (int i = 0; i < 1000 && server == nullptr; ++i) {
    auto accepted = listener->TryAccept();
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    server = std::move(*accepted);
  }
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->descriptor(), 0);

  ASSERT_TRUE((*client)->Send(ToBytes("ping")).ok());
  Bytes inbound;
  for (int i = 0; i < 1000 && inbound.size() < 4; ++i) {
    ASSERT_TRUE(server->Drain(inbound).ok());
  }
  EXPECT_EQ(inbound, ToBytes("ping"));

  ASSERT_TRUE(server->Send(ToBytes("pong")).ok());
  Bytes reply;
  for (int i = 0; i < 1000 && reply.size() < 4; ++i) {
    ASSERT_TRUE((*client)->Drain(reply).ok());
  }
  EXPECT_EQ(reply, ToBytes("pong"));

  // Closing the client surfaces EOF on the server after the drain runs dry.
  (*client)->Close();
  Bytes residue;
  for (int i = 0; i < 1000 && !server->AtEof(); ++i) {
    ASSERT_TRUE(server->Drain(residue).ok());
  }
  EXPECT_TRUE(server->AtEof());
  EXPECT_TRUE(residue.empty());
}

TEST(TcpTransportTest, ConnectToUnboundPortFails) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener = TcpListener::Bind(0);  // old listener closed by move-assign
  auto client = TcpTransport::Connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

TEST(TcpTransportTest, RejectsMalformedAddress) {
  auto client = TcpTransport::Connect("not-an-address", 1);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace engarde::net
