// EPC oversubscription at the front end: the EpcBudget resident/committed
// split (core/epc_budget.h) and the admission path that hands out more
// virtual EPC than physically exists, leaning on the host OS reclaimer for
// residency. The gates mirror the bench: verdicts and per-phase SGX
// accounting bit-identical to a serial non-oversubscribed run, committed
// pages back to zero after drain, and no device pages retained.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/epc_budget.h"
#include "core/frontend.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "net/transport.h"
#include "workload/program_builder.h"

#if defined(__SANITIZE_THREAD__)
#define ENGARDE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ENGARDE_TSAN 1
#endif
#endif

namespace engarde::core {
namespace {

// ---- EpcBudget unit coverage ------------------------------------------------

TEST(EpcBudgetTest, OversubRatioScalesVirtualCapacity) {
  EpcBudget budget(100, 2.0);
  EXPECT_EQ(budget.physical_pages(), 100u);
  EXPECT_EQ(budget.budget_pages(), 200u);
  EXPECT_DOUBLE_EQ(budget.oversub_ratio(), 2.0);

  EpcBudget fractional(100, 1.5);
  EXPECT_EQ(fractional.budget_pages(), 150u);
}

TEST(EpcBudgetTest, RatiosAtOrBelowOneAndNonFiniteAreClamped) {
  // Under-1 ratios would make admission shed below physical capacity;
  // they clamp to the identity, as do NaN/inf from bad flag parses.
  EXPECT_EQ(EpcBudget(100, 0.5).budget_pages(), 100u);
  EXPECT_EQ(EpcBudget(100, 1.0).budget_pages(), 100u);
  EXPECT_EQ(EpcBudget(100, -3.0).budget_pages(), 100u);
  EXPECT_EQ(EpcBudget(100, std::numeric_limits<double>::quiet_NaN())
                .budget_pages(),
            100u);
  EXPECT_DOUBLE_EQ(EpcBudget(100, 0.5).oversub_ratio(), 1.0);
}

TEST(EpcBudgetTest, SessionQuotaCapsSingleReservations) {
  EpcBudget budget(100, 4.0, /*session_quota_pages=*/30);
  EXPECT_EQ(budget.session_quota_pages(), 30u);
  EXPECT_FALSE(budget.TryReserve(31));
  EXPECT_EQ(budget.committed_pages(), 0u);
  EXPECT_TRUE(budget.TryReserve(30));
  EXPECT_EQ(budget.committed_pages(), 30u);
  budget.Release(30);
}

TEST(EpcBudgetTest, ReserveReleaseAccounting) {
  EpcBudget budget(100, 2.0);
  EXPECT_TRUE(budget.TryReserve(150));
  EXPECT_FALSE(budget.TryReserve(51));  // virtual capacity is 200
  EXPECT_TRUE(budget.TryReserve(50));
  EXPECT_EQ(budget.committed_pages(), 200u);
  EXPECT_EQ(budget.max_committed_pages(), 200u);
  budget.Release(150);
  budget.Release(50);
  EXPECT_EQ(budget.committed_pages(), 0u);
  EXPECT_EQ(budget.max_committed_pages(), 200u);  // high-water sticks
  EXPECT_EQ(budget.underflow_count(), 0u);
}

// Release of more than is committed is a double-release bug. Debug builds
// abort on it loudly; release builds clamp to zero and count it so the
// metrics surface (budget_underflows) can pin it to zero in CI.
#if defined(NDEBUG)
TEST(EpcBudgetTest, UnderflowClampsAndCountsInReleaseBuilds) {
  EpcBudget budget(100);
  ASSERT_TRUE(budget.TryReserve(10));
  budget.Release(20);
  EXPECT_EQ(budget.committed_pages(), 0u);
  EXPECT_EQ(budget.underflow_count(), 1u);
}
#elif !defined(ENGARDE_TSAN)
// EXPECT_DEATH forks; TSan's runtime does not survive that, so the
// death-test variant only runs in plain debug builds.
TEST(EpcBudgetDeathTest, UnderflowAbortsInDebugBuilds) {
  EpcBudget budget(100);
  ASSERT_TRUE(budget.TryReserve(10));
  EXPECT_DEATH(budget.Release(20), "underflow");
}
#endif

// ---- Oversubscribed admission end-to-end ------------------------------------

constexpr size_t kRsaBits = 512;
constexpr size_t kPrograms = 8;

PolicySet MakePolicies() {
  PolicySet policies;
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  return policies;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& q) {
  client::ClientOptions options;
  options.attestation_key = q.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

class FrontendOversubTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe =
        sgx::QuotingEnclave::Provision(ToBytes("oversub-device"), kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    programs_ = new std::vector<workload::BuiltProgram>();
    for (size_t i = 0; i < kPrograms; ++i) {
      workload::ProgramSpec spec;
      spec.name = "oversub-" + std::to_string(i);
      spec.seed = 7300 + i;
      spec.target_instructions = 2500;
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      programs_->push_back(std::move(program).value());
    }
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete programs_;
    programs_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const Bytes& image(size_t client) {
    return (*programs_)[client % kPrograms].image;
  }
  static bool compliant(size_t client) { return (client % kPrograms) % 2 == 0; }

  static EngardeOptions EnclaveOptions() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  static size_t EpcPagesFor(size_t enclaves) {
    return enclaves * (EnclaveOptions().layout.TotalPages() + 1) + 64;
  }

  static sgx::QuotingEnclave* qe_;
  static std::vector<workload::BuiltProgram>* programs_;
};

sgx::QuotingEnclave* FrontendOversubTest::qe_ = nullptr;
std::vector<workload::BuiltProgram>* FrontendOversubTest::programs_ = nullptr;

struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  size_t stage_count = 0;
  uint64_t idle_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

Snapshot Snap(const ProvisionOutcome& outcome,
              const sgx::CycleAccountant& accountant) {
  Snapshot snap;
  snap.compliant = outcome.verdict.compliant;
  snap.reason = outcome.verdict.reason;
  snap.instruction_count = outcome.stats.instruction_count;
  snap.blocks_received = outcome.stats.blocks_received;
  snap.relocations_applied = outcome.stats.relocations_applied;
  snap.stage_count = outcome.stage_reports.size();
  snap.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  snap.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  snap.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  snap.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  snap.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  snap.total_sgx = accountant.total_sgx_instructions();
  snap.trampolines = accountant.total_trampolines();
  return snap;
}

void ExpectSameSnapshot(const Snapshot& serial, const Snapshot& oversub,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, oversub.compliant) << label;
  EXPECT_EQ(serial.reason, oversub.reason) << label;
  EXPECT_EQ(serial.instruction_count, oversub.instruction_count) << label;
  EXPECT_EQ(serial.blocks_received, oversub.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, oversub.relocations_applied) << label;
  EXPECT_EQ(serial.stage_count, oversub.stage_count) << label;
  EXPECT_EQ(serial.idle_sgx, oversub.idle_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, oversub.channel_sgx) << label;
  EXPECT_EQ(serial.disassembly_sgx, oversub.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, oversub.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, oversub.loading_sgx) << label;
  EXPECT_EQ(serial.total_sgx, oversub.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, oversub.trampolines) << label;
}

// Serial reference on ample EPC: the bit-identity target the oversubscribed
// run must hit despite paging.
Result<std::vector<Snapshot>> RunSerial(const sgx::QuotingEnclave& qe,
                                        const std::vector<Bytes>& images,
                                        const EngardeOptions& enclave_options,
                                        size_t epc_pages) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = enclave_options;
  ProvisioningServer server(&host, &qe, MakePolicies, options);

  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    if (index != i) return InternalError("unexpected session index");
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Snapshot> snaps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome, server.Drive(i));
    snaps.push_back(Snap(outcome, server.session_accountant(i)));
  }
  return snaps;
}

struct MemoryClient {
  std::unique_ptr<crypto::DuplexPipe> pipe;  // EndA = frontend, EndB = client
  std::unique_ptr<client::Client> client;
  uint64_t connection = 0;
  bool sent = false;
  std::optional<Verdict> verdict;
};

Result<MemoryClient> ConnectMemoryClient(ProvisioningFrontend& frontend,
                                         const Bytes& image,
                                         client::ClientOptions options) {
  MemoryClient mc;
  mc.pipe = std::make_unique<crypto::DuplexPipe>();
  mc.client = std::make_unique<client::Client>(std::move(options), image);
  ASSIGN_OR_RETURN(
      mc.connection,
      frontend.Accept(std::make_unique<net::PipeTransport>(mc.pipe->EndA())));
  return mc;
}

// Single-threaded sweep loop; queued clients produce their admission
// preamble only once the FIFO admits them, so HasCompleteFrames gates the
// client-side reads exactly as in core_frontend_test.cc.
Status DriveToVerdicts(ProvisioningFrontend& frontend,
                       std::vector<MemoryClient>& clients) {
  for (;;) {
    ASSIGN_OR_RETURN(size_t progress, frontend.PollOnce());
    for (MemoryClient& mc : clients) {
      if (!mc.sent && net::HasCompleteFrames(mc.pipe->EndB(), 3)) {
        ASSIGN_OR_RETURN(const auto retry,
                         mc.client->AwaitAdmission(mc.pipe->EndB()));
        if (retry.has_value()) {
          return InternalError("unexpected RetryAfter under oversubscription");
        }
        RETURN_IF_ERROR(mc.client->SendProgram(mc.pipe->EndB()));
        mc.sent = true;
        ++progress;
      }
      if (mc.sent && !mc.verdict.has_value() &&
          net::HasCompleteSecureRecord(mc.pipe->EndB())) {
        ASSIGN_OR_RETURN(Verdict verdict, mc.client->AwaitVerdict());
        mc.verdict.emplace(std::move(verdict));
        ++progress;
      }
    }
    bool all_done = true;
    for (const MemoryClient& mc : clients) {
      all_done = all_done && mc.verdict.has_value();
    }
    if (all_done) return Status::Ok();
    if (progress == 0) {
      return InternalError("frontend made no progress before all verdicts");
    }
  }
}

TEST_F(FrontendOversubTest, OversubscribedRunBitIdenticalToSerial) {
  // Physical EPC holds two enclaves; ratio 2.0 doubles the admission
  // capacity, so all four clients either admit immediately or wait briefly
  // in the FIFO while demand reclaim pages cold enclaves out — none is
  // shed, and the verdict/accounting stream matches the serial reference on
  // ample EPC bit for bit.
  constexpr size_t kClients = 4;
  std::vector<Bytes> images;
  for (size_t i = 0; i < kClients; ++i) images.push_back(image(i));

  auto serial =
      RunSerial(qe(), images, EnclaveOptions(), EpcPagesFor(kClients));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  const size_t physical_pages = EpcPagesFor(2);
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = physical_pages});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.epc_oversub = 2.0;
  options.admission_queue_capacity = kClients;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);
  const uint64_t per_enclave = EnclaveOptions().layout.TotalPages();
  // The virtual budget covers all four enclaves even though the device
  // cannot hold them resident at once.
  ASSERT_GE(frontend.budget_pages(), kClients * per_enclave);

  std::vector<MemoryClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    auto mc = ConnectMemoryClient(frontend, images[i], ClientOptionsFor(qe()));
    ASSERT_TRUE(mc.ok()) << mc.status().ToString();
    ASSERT_NE(frontend.state(mc->connection), ConnectionState::kShed) << i;
    clients.push_back(std::move(mc).value());
  }
  const Status driven = DriveToVerdicts(frontend, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  ASSERT_EQ(frontend.done_count(), kClients);
  EXPECT_EQ(frontend.shed_count(), 0u);

  for (size_t i = 0; i < kClients; ++i) {
    auto outcome = frontend.TakeOutcome(clients[i].connection);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(clients[i].verdict.has_value());
    EXPECT_EQ(clients[i].verdict->compliant, compliant(i)) << i;
    ExpectSameSnapshot((*serial)[i],
                       Snap(*outcome, frontend.accountant(clients[i].connection)),
                       "client " + std::to_string(i));
  }

  // Oversubscription actually engaged: committed exceeded physical EPC at
  // some point, the host OS paged to cover it, and everything drained clean.
  EXPECT_GT(frontend.max_committed_pages(), physical_pages);
  EXPECT_LE(frontend.max_committed_pages(), frontend.budget_pages());
  EXPECT_GT(host.epc_faults_handled() + host.pages_evicted() +
                host.pages_reclaimed(),
            0u);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.budget().underflow_count(), 0u);
  ASSERT_TRUE(frontend.DrainAll().ok());
  EXPECT_EQ(frontend.connection_count(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.ReclaimablePageCount(), 0u);
  EXPECT_EQ(device.FreeEpcPages(), physical_pages);

  const FrontendMetrics metrics = frontend.metrics();
  EXPECT_EQ(metrics.physical_budget_pages * 2, metrics.budget_pages);
  EXPECT_EQ(metrics.epc_capacity_pages, physical_pages);
  EXPECT_LE(metrics.epc_resident_peak, physical_pages);
  EXPECT_EQ(metrics.budget_underflows, 0u);
}

TEST_F(FrontendOversubTest, RatioOneKeepsShedOnFullSemantics) {
  // The identity ratio is the pre-oversubscription front end: budget for
  // one enclave, no queue, so the second arrival sheds with RetryAfter.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(1)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.epc_oversub = 1.0;
  options.admission_queue_capacity = 0;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto first = ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(frontend.state(first->connection), ConnectionState::kActive);
  auto second = ConnectMemoryClient(frontend, image(1), ClientOptionsFor(qe()));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(frontend.state(second->connection), ConnectionState::kShed);
  EXPECT_EQ(frontend.shed_count(), 1u);
}

TEST_F(FrontendOversubTest, SessionQuotaRejectsOversizeEnclave) {
  // A per-session quota smaller than the enclave layout makes every
  // admission fail its reservation: with no queue the arrival sheds, and
  // nothing is ever built or committed.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendOptions options;
  options.enclave_options = EnclaveOptions();
  options.epc_oversub = 2.0;
  options.session_quota_pages = 16;  // far below the ~200-page layout
  options.admission_queue_capacity = 0;
  ProvisioningFrontend frontend(&host, &qe(), MakePolicies, options);

  auto mc = ConnectMemoryClient(frontend, image(0), ClientOptionsFor(qe()));
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_EQ(frontend.state(mc->connection), ConnectionState::kShed);
  EXPECT_EQ(frontend.committed_pages(), 0u);
  EXPECT_EQ(frontend.max_committed_pages(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
}

}  // namespace
}  // namespace engarde::core
