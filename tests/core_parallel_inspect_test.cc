// Parallel/serial equivalence for the inspection engine: provisioning any
// program at inspection_threads ∈ {1, 2, 8} must produce bit-for-bit
// identical verdicts, statistics, rejection reasons and per-phase
// SGX-instruction attribution. (The native-time component of a phase's cycle
// cost is wall-clock and thus never run-to-run reproducible — the
// deterministic sgx_instructions column is the equivalence target, as in
// EXPERIMENTS.md.)
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/engarde.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "elf/builder.h"
#include "workload/catalog.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kTestRsaBits = 768;  // small keys keep the suite fast
// Tests run the full catalog at a fraction of the paper's instruction
// counts; the sharded pipeline is exercised identically at any scale. (Much
// below this the smallest benchmarks are too small for the synthetic layout
// to converge.)
constexpr double kCatalogScale = 0.2;

// Everything a provisioning run produces that must be invariant under the
// thread count.
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t insn_buffer_pages = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

void ExpectSameSnapshot(const Snapshot& serial, const Snapshot& parallel,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, parallel.compliant) << label;
  EXPECT_EQ(serial.reason, parallel.reason) << label;
  EXPECT_EQ(serial.instruction_count, parallel.instruction_count) << label;
  EXPECT_EQ(serial.insn_buffer_pages, parallel.insn_buffer_pages) << label;
  EXPECT_EQ(serial.blocks_received, parallel.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, parallel.relocations_applied) << label;
  EXPECT_EQ(serial.disassembly_sgx, parallel.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, parallel.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, parallel.loading_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, parallel.channel_sgx) << label;
  EXPECT_EQ(serial.total_sgx, parallel.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, parallel.trampolines) << label;
}

class ParallelInspectTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("parallel-device"),
                                             kTestRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
  }
  static const sgx::QuotingEnclave& qe() { return *qe_; }

  // Provisions `program` under `policies` with `threads` inspection threads
  // on a fresh device and returns the invariant snapshot.
  static Result<Snapshot> Provision(const workload::BuiltProgram& program,
                                    PolicySet policies, size_t threads) {
    sgx::CycleAccountant accountant;
    sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
    sgx::HostOs host(&device);

    EngardeOptions options;
    options.rsa_bits = kTestRsaBits;
    options.inspection_threads = threads;
    auto enclave = EngardeEnclave::Create(&host, qe(), std::move(policies),
                                          options);
    RETURN_IF_ERROR(enclave.status());

    crypto::DuplexPipe pipe;
    RETURN_IF_ERROR(enclave->SendHello(pipe.EndA()));

    client::ClientOptions client_options;
    client_options.attestation_key = qe().attestation_public_key();
    client_options.skip_measurement_check = true;  // inspection path only
    client::Client client(client_options, program.image);
    RETURN_IF_ERROR(client.SendProgram(pipe.EndB()));

    accountant.Reset();
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome,
                     enclave->RunProvisioning(pipe.EndA()));

    Snapshot snap;
    snap.compliant = outcome.verdict.compliant;
    snap.reason = outcome.verdict.reason;
    snap.instruction_count = outcome.stats.instruction_count;
    snap.insn_buffer_pages = outcome.stats.insn_buffer_pages;
    snap.blocks_received = outcome.stats.blocks_received;
    snap.relocations_applied = outcome.stats.relocations_applied;
    snap.disassembly_sgx =
        accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
    snap.policy_sgx =
        accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
    snap.loading_sgx =
        accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
    snap.channel_sgx =
        accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
    snap.total_sgx = accountant.total_sgx_instructions();
    snap.trampolines = accountant.total_trampolines();
    return snap;
  }

  // Runs Provision at threads {1, 2, 8} and asserts all three snapshots
  // agree; returns the serial one for additional assertions.
  static Snapshot ExpectThreadInvariant(
      const workload::BuiltProgram& program,
      const std::function<PolicySet()>& make_policies,
      const std::string& label) {
    auto serial = Provision(program, make_policies(), 1);
    EXPECT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
    if (!serial.ok()) return Snapshot{};
    for (const size_t threads : {2u, 8u}) {
      auto parallel = Provision(program, make_policies(), threads);
      EXPECT_TRUE(parallel.ok()) << label << " @ " << threads << " threads: "
                                 << parallel.status().ToString();
      if (!parallel.ok()) continue;
      ExpectSameSnapshot(*serial, *parallel,
                         label + " @ " + std::to_string(threads) +
                             " threads");
    }
    return *serial;
  }

 private:
  static sgx::QuotingEnclave* qe_;
};

sgx::QuotingEnclave* ParallelInspectTest::qe_ = nullptr;

PolicySet LiblinkPolicy(const workload::SynthLibcOptions& libc,
                        LibraryLinkingPolicy::Options options = {}) {
  PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  EXPECT_TRUE(db.ok());
  policies.push_back(std::make_unique<LibraryLinkingPolicy>(
      "synth-musl v" + libc.version, std::move(db).value(), options));
  return policies;
}

TEST_F(ParallelInspectTest, FullCatalogThreadInvariant) {
  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program = workload::BuildBenchmarkScaled(
        entry, workload::BuildFlavor::kPlain, kCatalogScale);
    ASSERT_TRUE(program.ok()) << entry.name << ": "
                              << program.status().ToString();
    const Snapshot serial = ExpectThreadInvariant(
        *program,
        [&] { return LiblinkPolicy(program->libc_options); }, entry.name);
    EXPECT_TRUE(serial.compliant) << entry.name << ": " << serial.reason;
    EXPECT_GT(serial.instruction_count, 0u) << entry.name;
  }
}

TEST_F(ParallelInspectTest, MultiplePoliciesRunConcurrently) {
  workload::ProgramSpec spec;
  spec.name = "multi-policy";
  spec.seed = 11;
  spec.target_instructions = 6000;
  spec.stack_protection = true;
  spec.ifcc = true;
  spec.indirect_call_sites = 3;
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  const auto make_policies = [&] {
    PolicySet policies = LiblinkPolicy(program->libc_options);
    policies.push_back(std::make_unique<StackProtectionPolicy>());
    policies.push_back(std::make_unique<IndirectCallPolicy>());
    return policies;
  };
  const Snapshot serial =
      ExpectThreadInvariant(*program, make_policies, "multi-policy");
  EXPECT_TRUE(serial.compliant) << serial.reason;
}

TEST_F(ParallelInspectTest, PolicyRejectionReasonThreadInvariant) {
  // Client links the vulnerable libc; the policy set pins the fixed version.
  // Every thread count must report the same first violation.
  workload::ProgramSpec spec;
  spec.name = "wrong-libc";
  spec.seed = 3;
  spec.target_instructions = 6000;
  spec.libc.version = "1.0.4";
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());

  workload::SynthLibcOptions pinned = program->libc_options;
  pinned.version = "1.0.5";
  const Snapshot serial = ExpectThreadInvariant(
      *program, [&] { return LiblinkPolicy(pinned); }, "wrong-libc");
  EXPECT_FALSE(serial.compliant);
  EXPECT_NE(serial.reason.find("library-linking"), std::string::npos)
      << serial.reason;
}

TEST_F(ParallelInspectTest, DisassemblyRejectionThreadInvariant) {
  // A minimal valid ELF whose text is undecodable junk: the sharded decoder
  // must fall back to the serial scan and report the serial error.
  workload::BuiltProgram garbage;
  garbage.name = "garbage";
  elf::ElfBuilder builder;
  Bytes junk = {0x0f, 0x10, 0x00, 0x90};  // SSE movups: unsupported
  junk.resize(64, 0x90);
  const uint64_t tv = builder.AddTextSection(".text", junk);
  builder.AddSymbol("main", tv, 4, elf::kSttFunc);
  auto image = builder.Build();
  ASSERT_TRUE(image.ok());
  garbage.image = *image;

  const Snapshot serial = ExpectThreadInvariant(
      garbage, [] { return PolicySet{}; }, "garbage");
  EXPECT_FALSE(serial.compliant);
  EXPECT_NE(serial.reason.find("UNIMPLEMENTED"), std::string::npos)
      << serial.reason;
}

TEST_F(ParallelInspectTest, DigestCacheAndMemoizationVerdictInvariant) {
  // The digest cache and the memoized fast path must not change the verdict
  // — at any thread count (both keep per-shard state, so shard boundaries
  // cannot change what is checked).
  auto program = workload::BuildBenchmarkScaled(
      workload::PaperBenchmarks().front(), workload::BuildFlavor::kPlain,
      kCatalogScale);
  ASSERT_TRUE(program.ok());

  const Snapshot baseline = ExpectThreadInvariant(
      *program, [&] { return LiblinkPolicy(program->libc_options); },
      "plain");
  ASSERT_TRUE(baseline.compliant) << baseline.reason;

  LibraryLinkingPolicy::Options cached;
  cached.cache_function_digests = true;
  const Snapshot with_cache = ExpectThreadInvariant(
      *program,
      [&] { return LiblinkPolicy(program->libc_options, cached); },
      "digest-cache");
  EXPECT_TRUE(with_cache.compliant) << with_cache.reason;
  EXPECT_EQ(with_cache.instruction_count, baseline.instruction_count);

  LibraryLinkingPolicy::Options memoized;
  memoized.memoize_functions = true;
  const Snapshot with_memo = ExpectThreadInvariant(
      *program,
      [&] { return LiblinkPolicy(program->libc_options, memoized); },
      "memoize");
  EXPECT_TRUE(with_memo.compliant) << with_memo.reason;
  EXPECT_EQ(with_memo.instruction_count, baseline.instruction_count);
}

TEST_F(ParallelInspectTest, DigestCacheRejectionInvariant) {
  // The cache must also reproduce the exact rejection on a violating input.
  workload::ProgramSpec spec;
  spec.name = "wrong-libc-cached";
  spec.seed = 5;
  spec.target_instructions = 5000;
  spec.libc.version = "1.0.4";
  auto program = workload::BuildProgram(spec);
  ASSERT_TRUE(program.ok());
  workload::SynthLibcOptions pinned = program->libc_options;
  pinned.version = "1.0.5";

  const Snapshot plain = ExpectThreadInvariant(
      *program, [&] { return LiblinkPolicy(pinned); }, "reject-plain");
  LibraryLinkingPolicy::Options cached;
  cached.cache_function_digests = true;
  const Snapshot with_cache = ExpectThreadInvariant(
      *program, [&] { return LiblinkPolicy(pinned, cached); },
      "reject-cached");
  EXPECT_FALSE(plain.compliant);
  EXPECT_EQ(plain.compliant, with_cache.compliant);
  EXPECT_EQ(plain.reason, with_cache.reason);
}

}  // namespace
}  // namespace engarde::core
