// The sharded front end (core/frontend_group.h): N reactors over one host
// OS, one EPC budget, one warm pool. The acceptance gates:
//
//  * a two-reactor run of a mixed client population is bit-for-bit identical
//    — verdicts, statistics, per-phase SGX attribution — to serially
//    Drive()-ing the same exchanges (sharding moves work between threads,
//    never between accounting buckets);
//  * the reactors can never JOINTLY overdraw the shared EPC budget, and each
//    reactor admits its own queue strictly FIFO;
//  * PoolRefill::kBackground measurably beats kOnAdmission on warm hit-rate
//    under burst load;
//  * the threaded mode serves and sheds real TCP clients, and — via
//    HostOs::DestroyEnclave — leaves zero residue in the kernel-side maps
//    after the churn.
#include "core/frontend_group.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "workload/program_builder.h"

namespace engarde::core {
namespace {

constexpr size_t kRsaBits = 512;
constexpr size_t kPrograms = 8;

PolicySet MakePolicies() {
  PolicySet policies;
  policies.push_back(std::make_unique<StackProtectionPolicy>());
  return policies;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& q) {
  client::ClientOptions options;
  options.attestation_key = q.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

class FrontendGroupTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("frontend-group-device"),
                                             kRsaBits);
    ASSERT_TRUE(qe.ok());
    qe_ = new sgx::QuotingEnclave(std::move(qe).value());
    programs_ = new std::vector<workload::BuiltProgram>();
    for (size_t i = 0; i < kPrograms; ++i) {
      workload::ProgramSpec spec;
      spec.name = "group-" + std::to_string(i);
      spec.seed = 9300 + i;
      spec.target_instructions = 2500;
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      programs_->push_back(std::move(program).value());
    }
  }
  static void TearDownTestSuite() {
    delete qe_;
    qe_ = nullptr;
    delete programs_;
    programs_ = nullptr;
  }

  static const sgx::QuotingEnclave& qe() { return *qe_; }
  static const Bytes& image(size_t client) {
    return (*programs_)[client % kPrograms].image;
  }
  static bool compliant(size_t client) { return (client % kPrograms) % 2 == 0; }

  static EngardeOptions EnclaveOptions() {
    EngardeOptions options;
    options.rsa_bits = kRsaBits;
    options.layout.heap_pages = 128;
    options.layout.load_pages = 32;
    return options;
  }

  static size_t EpcPagesFor(size_t enclaves) {
    return enclaves * (EnclaveOptions().layout.TotalPages() + 1) + 64;
  }

  static sgx::QuotingEnclave* qe_;
  static std::vector<workload::BuiltProgram>* programs_;
};

sgx::QuotingEnclave* FrontendGroupTest::qe_ = nullptr;
std::vector<workload::BuiltProgram>* FrontendGroupTest::programs_ = nullptr;

// Same invariants as core_frontend_test.cc's serial-vs-reactor gate.
struct Snapshot {
  bool compliant = false;
  std::string reason;
  size_t instruction_count = 0;
  size_t blocks_received = 0;
  size_t relocations_applied = 0;
  size_t stage_count = 0;
  uint64_t idle_sgx = 0;
  uint64_t channel_sgx = 0;
  uint64_t disassembly_sgx = 0;
  uint64_t policy_sgx = 0;
  uint64_t loading_sgx = 0;
  uint64_t total_sgx = 0;
  uint64_t trampolines = 0;
};

Snapshot Snap(const ProvisionOutcome& outcome,
              const sgx::CycleAccountant& accountant) {
  Snapshot snap;
  snap.compliant = outcome.verdict.compliant;
  snap.reason = outcome.verdict.reason;
  snap.instruction_count = outcome.stats.instruction_count;
  snap.blocks_received = outcome.stats.blocks_received;
  snap.relocations_applied = outcome.stats.relocations_applied;
  snap.stage_count = outcome.stage_reports.size();
  snap.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  snap.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  snap.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  snap.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  snap.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  snap.total_sgx = accountant.total_sgx_instructions();
  snap.trampolines = accountant.total_trampolines();
  return snap;
}

void ExpectSameSnapshot(const Snapshot& serial, const Snapshot& sharded,
                        const std::string& label) {
  EXPECT_EQ(serial.compliant, sharded.compliant) << label;
  EXPECT_EQ(serial.reason, sharded.reason) << label;
  EXPECT_EQ(serial.instruction_count, sharded.instruction_count) << label;
  EXPECT_EQ(serial.blocks_received, sharded.blocks_received) << label;
  EXPECT_EQ(serial.relocations_applied, sharded.relocations_applied) << label;
  EXPECT_EQ(serial.stage_count, sharded.stage_count) << label;
  EXPECT_EQ(serial.idle_sgx, sharded.idle_sgx) << label;
  EXPECT_EQ(serial.channel_sgx, sharded.channel_sgx) << label;
  EXPECT_EQ(serial.disassembly_sgx, sharded.disassembly_sgx) << label;
  EXPECT_EQ(serial.policy_sgx, sharded.policy_sgx) << label;
  EXPECT_EQ(serial.loading_sgx, sharded.loading_sgx) << label;
  EXPECT_EQ(serial.total_sgx, sharded.total_sgx) << label;
  EXPECT_EQ(serial.trampolines, sharded.trampolines) << label;
}

Result<std::vector<Snapshot>> RunSerial(const sgx::QuotingEnclave& qe,
                                        const std::vector<Bytes>& images,
                                        const EngardeOptions& enclave_options,
                                        size_t epc_pages) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);
  ProvisioningServer::Options options;
  options.enclave_options = enclave_options;
  ProvisioningServer server(&host, &qe, MakePolicies, options);

  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    if (index != i) return InternalError("unexpected session index");
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Snapshot> snaps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const ProvisionOutcome outcome, server.Drive(i));
    snaps.push_back(Snap(outcome, server.session_accountant(i)));
  }
  return snaps;
}

// One in-memory client dispatched into the group. DuplexPipe is not
// thread-safe, so these run only in the group's deterministic mode.
struct MemoryClient {
  std::unique_ptr<crypto::DuplexPipe> pipe;  // EndA = frontend, EndB = client
  std::unique_ptr<client::Client> client;
  size_t reactor = 0;
  bool sent = false;
  std::optional<Verdict> verdict;
};

MemoryClient DispatchMemoryClient(FrontendGroup& group,
                                  const sgx::QuotingEnclave& /*qe*/,
                                  const Bytes& image,
                                  client::ClientOptions options) {
  MemoryClient mc;
  mc.pipe = std::make_unique<crypto::DuplexPipe>();
  mc.client = std::make_unique<client::Client>(std::move(options), image);
  mc.reactor =
      group.Dispatch(std::make_unique<net::PipeTransport>(mc.pipe->EndA()));
  return mc;
}

// Deterministic orchestration: crank the whole group, let any client whose
// admission preamble is fully queued respond.
Status DriveToVerdicts(FrontendGroup& group,
                       std::vector<MemoryClient>& clients) {
  for (;;) {
    ASSIGN_OR_RETURN(size_t progress, group.PollOnce());
    for (MemoryClient& mc : clients) {
      if (!mc.sent && net::HasCompleteFrames(mc.pipe->EndB(), 3)) {
        ASSIGN_OR_RETURN(const auto retry,
                         mc.client->AwaitAdmission(mc.pipe->EndB()));
        if (retry.has_value()) {
          return InternalError("unexpected RetryAfter in admission test");
        }
        RETURN_IF_ERROR(mc.client->SendProgram(mc.pipe->EndB()));
        mc.sent = true;
        ++progress;
      }
      if (mc.sent && !mc.verdict.has_value() &&
          net::HasCompleteSecureRecord(mc.pipe->EndB())) {
        ASSIGN_OR_RETURN(Verdict verdict, mc.client->AwaitVerdict());
        mc.verdict.emplace(std::move(verdict));
        ++progress;
      }
    }
    bool all_done = true;
    for (const MemoryClient& mc : clients) {
      all_done = all_done && mc.verdict.has_value();
    }
    if (all_done) return Status::Ok();
    if (progress == 0) {
      return InternalError("group made no progress before all verdicts");
    }
  }
}

// ---- The acceptance gate ---------------------------------------------------

TEST_F(FrontendGroupTest, TwoReactorsBitIdenticalToSerialDrive) {
  constexpr size_t kClients = 16;
  constexpr size_t kReactors = 2;
  std::vector<Bytes> images;
  for (size_t i = 0; i < kClients; ++i) images.push_back(image(i));
  const size_t epc_pages = EpcPagesFor(kClients);

  auto serial = RunSerial(qe(), images, EnclaveOptions(), epc_pages);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = epc_pages});
  sgx::HostOs host(&device);
  FrontendGroupOptions options;
  options.frontend.enclave_options = EnclaveOptions();
  options.reactors = kReactors;
  FrontendGroup group(&host, &qe(), MakePolicies, options);
  ASSERT_EQ(group.reactor_count(), kReactors);

  std::vector<MemoryClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(
        DispatchMemoryClient(group, qe(), images[i], ClientOptionsFor(qe())));
    // Round-robin routing is deterministic: client i lands on reactor i % N
    // as that shard's (i / N)-th connection.
    ASSERT_EQ(clients.back().reactor, i % kReactors) << i;
  }
  const Status driven = DriveToVerdicts(group, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  ASSERT_EQ(group.done_count(), kClients);
  EXPECT_EQ(group.reactor(0).connection_count(), kClients / kReactors);
  EXPECT_EQ(group.reactor(1).connection_count(), kClients / kReactors);

  for (size_t i = 0; i < kClients; ++i) {
    const size_t reactor = i % kReactors;
    const uint64_t connection = i / kReactors;
    auto outcome = group.reactor(reactor).TakeOutcome(connection);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->verdict.compliant, compliant(i)) << i;
    ASSERT_TRUE(clients[i].verdict.has_value());
    EXPECT_EQ(clients[i].verdict->compliant, compliant(i)) << i;
    ExpectSameSnapshot(
        (*serial)[i],
        Snap(*outcome, group.reactor(reactor).accountant(connection)),
        "client " + std::to_string(i));
  }
  EXPECT_LE(group.budget().max_committed_pages(), group.budget().budget_pages());
  EXPECT_EQ(group.budget().committed_pages(), 0u);
  // Every verdicted enclave was destroyed through the host OS: no residue in
  // the kernel-side maps or the device.
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
  EXPECT_EQ(host.PageTableEntryCount(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
}

// ---- Shared budget ---------------------------------------------------------

TEST_F(FrontendGroupTest, ReactorsNeverJointlyExceedSharedBudgetAndAdmitFifo) {
  // Budget holds two enclaves; six arrivals split over two reactors. The
  // shards must coordinate through the one EpcBudget: at most two enclaves
  // alive at any sweep, everyone else queued, each shard admitting FIFO.
  constexpr size_t kClients = 6;
  constexpr size_t kReactors = 2;
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendGroupOptions options;
  options.frontend.enclave_options = EnclaveOptions();
  options.frontend.admission_queue_capacity = kClients;
  options.reactors = kReactors;
  FrontendGroup group(&host, &qe(), MakePolicies, options);
  const uint64_t per_enclave = EnclaveOptions().layout.TotalPages();
  ASSERT_GE(group.budget().budget_pages(), 2 * per_enclave);
  ASSERT_LT(group.budget().budget_pages(), 3 * per_enclave);

  std::vector<MemoryClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(
        DispatchMemoryClient(group, qe(), image(i), ClientOptionsFor(qe())));
  }
  // One sweep, deterministic shard order: shard 0 accepts its three
  // dispatches first and its first two admissions drain the whole budget, so
  // everyone else — including all of shard 1 — parks in FIFO queues. This is
  // exactly the coordination under test: shard 1 sees "no budget" because a
  // SIBLING spent it.
  auto first_sweep = group.PollOnce();
  ASSERT_TRUE(first_sweep.ok()) << first_sweep.status().ToString();
  EXPECT_EQ(group.reactor(0).state(0), ConnectionState::kActive);
  EXPECT_EQ(group.reactor(0).state(1), ConnectionState::kActive);
  EXPECT_EQ(group.reactor(0).state(2), ConnectionState::kQueued);
  for (uint64_t c = 0; c < kClients / kReactors; ++c) {
    EXPECT_EQ(group.reactor(1).state(c), ConnectionState::kQueued) << c;
  }
  EXPECT_EQ(group.reactor(0).queued_count(), 1u);
  EXPECT_EQ(group.reactor(1).queued_count(), 3u);

  const Status driven = DriveToVerdicts(group, clients);
  ASSERT_TRUE(driven.ok()) << driven.ToString();
  EXPECT_EQ(group.done_count(), kClients);
  EXPECT_EQ(group.shed_count(), 0u);
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i].verdict.has_value()) << i;
    EXPECT_EQ(clients[i].verdict->compliant, compliant(i)) << i;
  }
  // The joint invariant: across every interleaving of two reactors, the
  // shared budget's high-water mark never exceeded two enclaves' pages.
  EXPECT_LE(group.budget().max_committed_pages(), 2 * per_enclave);
  EXPECT_EQ(group.budget().committed_pages(), 0u);
}

// ---- Background refill -----------------------------------------------------

// Drives `count` clients to verdicts and returns the pool handouts total.
Result<size_t> RunBurstWaves(FrontendGroup& group,
                             const sgx::QuotingEnclave& qe, const Bytes& img,
                             size_t waves, size_t per_wave) {
  for (size_t wave = 0; wave < waves; ++wave) {
    std::vector<MemoryClient> clients;
    for (size_t i = 0; i < per_wave; ++i) {
      clients.push_back(
          DispatchMemoryClient(group, qe, img, ClientOptionsFor(qe)));
    }
    RETURN_IF_ERROR(DriveToVerdicts(group, clients));
    // Let kBackground finish restocking between waves (kOnAdmission: no-op).
    RETURN_IF_ERROR(group.DrainAll());
  }
  return group.pool().total_handouts();
}

TEST_F(FrontendGroupTest, BackgroundRefillBeatsOnAdmissionWarmHitRate) {
  // Two waves of two clients against a two-entry pool. kOnAdmission spends
  // the prefill on wave one and goes cold for wave two; kBackground restocks
  // between waves and stays warm throughout.
  constexpr size_t kWaves = 2;
  constexpr size_t kPerWave = 2;
  auto run = [&](PoolRefill refill) -> Result<size_t> {
    sgx::SgxDevice device(
        sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(4)});
    sgx::HostOs host(&device);
    FrontendGroupOptions options;
    options.frontend.enclave_options = EnclaveOptions();
    options.reactors = 2;
    options.pool_refill = refill;
    options.pool_target = kPerWave;
    FrontendGroup group(&host, &qe(), MakePolicies, options);
    RETURN_IF_ERROR(group.PrefillPool(kPerWave));
    return RunBurstWaves(group, qe(), image(0), kWaves, kPerWave);
  };

  auto on_admission = run(PoolRefill::kOnAdmission);
  ASSERT_TRUE(on_admission.ok()) << on_admission.status().ToString();
  auto background = run(PoolRefill::kBackground);
  ASSERT_TRUE(background.ok()) << background.status().ToString();

  // kOnAdmission: only the prefill serves warm. kBackground: every wave does.
  EXPECT_EQ(*on_admission, kPerWave);
  EXPECT_EQ(*background, kWaves * kPerWave);
  EXPECT_GT(*background, *on_admission);
}

// ---- Threaded mode over real TCP -------------------------------------------

// Client-side shuttle between the socket and the blocking client library —
// the same bridge tools/engarde-serve --selftest uses.
Result<size_t> Shuttle(net::Transport& socket, crypto::DuplexPipe& pipe) {
  size_t moved = 0;
  Bytes inbound;
  ASSIGN_OR_RETURN(const size_t drained, socket.Drain(inbound));
  crypto::DuplexPipe::Endpoint bridge = pipe.EndA();
  if (drained > 0) {
    bridge.Write(ByteView(inbound));
    moved += drained;
  }
  const size_t pending = bridge.Available();
  if (pending > 0) {
    ASSIGN_OR_RETURN(const Bytes outbound, bridge.Read(pending));
    RETURN_IF_ERROR(socket.Send(ByteView(outbound)));
    moved += pending;
  }
  RETURN_IF_ERROR(socket.Flush().status());
  return moved;
}

template <typename Ready>
Status PumpUntil(net::Transport& socket, crypto::DuplexPipe& pipe,
                 Ready ready) {
  while (!ready()) {
    ASSIGN_OR_RETURN(const size_t moved, Shuttle(socket, pipe));
    if (moved == 0) {
      if (socket.AtEof() && pipe.EndB().Available() == 0) {
        return ProtocolError("server closed before the exchange completed");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return Status::Ok();
}

// One full TCP provisioning, honoring RetryAfter sheds with reconnects.
// Returns the number of sheds absorbed along the way.
Result<size_t> RunTcpClient(uint16_t port, const client::ClientOptions& options,
                            const Bytes& executable, bool expect_compliant) {
  for (size_t attempt = 0; attempt < 500; ++attempt) {
    ASSIGN_OR_RETURN(std::unique_ptr<net::TcpTransport> socket,
                     net::TcpTransport::Connect("127.0.0.1", port));
    crypto::DuplexPipe pipe;
    crypto::DuplexPipe::Endpoint client_end = pipe.EndB();
    client::Client client(options, executable);

    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 1);
    }));
    ASSIGN_OR_RETURN(const std::optional<RetryAfter> retry,
                     client.AwaitAdmission(client_end));
    if (retry.has_value()) {
      if (retry->epc_budget_pages == 0) {
        return InternalError("RetryAfter carried no budget telemetry");
      }
      socket->Close();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry->retry_after_ms));
      continue;
    }
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 2);
    }));
    RETURN_IF_ERROR(client.SendProgram(client_end));
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteSecureRecord(client_end);
    }));
    ASSIGN_OR_RETURN(const Verdict verdict, client.AwaitVerdict());
    if (verdict.compliant != expect_compliant) {
      return InternalError("wrong verdict over TCP");
    }
    return attempt;  // = sheds absorbed before admission
  }
  return ResourceExhaustedError("still shed after 500 admission attempts");
}

TEST_F(FrontendGroupTest, ThreadedTcpReactorsShedServeAndReclaimEverything) {
  // Two reactor threads race one loopback listener; the EPC holds two
  // enclaves and there is no queue, so a six-client stampede MUST shed —
  // and every shed client's reconnect loop must still land a verdict.
  constexpr size_t kClients = 6;
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2)});
  sgx::HostOs host(&device);
  FrontendGroupOptions options;
  options.frontend.enclave_options = EnclaveOptions();
  options.frontend.admission_queue_capacity = 0;
  options.frontend.retry_after_ms = 2;
  options.reactors = 2;
  FrontendGroup group(&host, &qe(), MakePolicies, options);

  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = listener->port();
  group.AttachListener(&*listener);
  ASSERT_TRUE(group.Start().ok());

  std::atomic<size_t> verdicts{0};
  std::atomic<size_t> sheds_absorbed{0};
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto sheds = RunTcpClient(port, ClientOptionsFor(qe()), image(i),
                                compliant(i));
      if (sheds.ok()) {
        verdicts.fetch_add(1);
        sheds_absorbed.fetch_add(*sheds);
      } else {
        failures[i] = sheds.status().ToString();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  const Status stopped = group.Stop();
  EXPECT_TRUE(stopped.ok()) << stopped.ToString();

  for (size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(failures[i].empty()) << "client " << i << ": " << failures[i];
  }
  EXPECT_EQ(verdicts.load(), kClients);
  EXPECT_EQ(group.done_count(), kClients);
  // With budget 2 and six concurrent arrivals, shedding is guaranteed, and
  // every shed round-tripped a RetryAfter over a real socket.
  EXPECT_GT(group.shed_count(), 0u);
  EXPECT_EQ(group.shed_count(), sheds_absorbed.load());

  // The joint no-eviction guarantee held across the real-thread race…
  EXPECT_LE(group.budget().max_committed_pages(),
            group.budget().budget_pages());
  EXPECT_EQ(group.budget().committed_pages(), 0u);
  // …and the lifecycle owner reclaimed every enclave on both sides of the
  // kernel boundary.
  EXPECT_EQ(host.TrackedEnclaveCount(), 0u);
  EXPECT_EQ(host.PageTableEntryCount(), 0u);
  EXPECT_EQ(host.LockRecordCount(), 0u);
  EXPECT_EQ(device.EnclaveCount(), 0u);
  EXPECT_EQ(device.epc().pages_in_use(), 0u);
}

}  // namespace
}  // namespace engarde::core
