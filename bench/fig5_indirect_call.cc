// Reproduces Figure 5: "Performance of EnGarde to check the Indirect
// Function-Call policy" — benchmarks rebuilt with the LLVM IFCC patch
// (jump tables + masking guards), EnGarde verifying every indirect call
// site and jump-table entry.
#include "bench/harness.h"

int main() {
  using namespace engarde;
  using namespace engarde::bench;

  PrintFigureHeader("Figure 5", "indirect function-call checks (IFCC)");

  double pd_ratio_sum = 0;
  int rows = 0;
  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program =
        workload::BuildBenchmark(entry, workload::BuildFlavor::kIfcc);
    if (!program.ok()) {
      std::printf("%-11s BUILD FAILED: %s\n", entry.name,
                  program.status().ToString().c_str());
      return 1;
    }
    auto measured = MeasureProvisioning(*program, workload::BuildFlavor::kIfcc);
    if (!measured.ok() || !measured->compliant) {
      std::printf("%-11s FAILED: %s\n", entry.name,
                  measured.ok() ? "unexpected rejection"
                                : measured.status().ToString().c_str());
      return 1;
    }
    PrintFigureRow(entry.name, *measured,
                   {entry.fig5_disasm_cycles, entry.fig5_policy_cycles,
                    entry.fig5_load_cycles});
    pd_ratio_sum += static_cast<double>(measured->policy_check) /
                    static_cast<double>(measured->disassembly);
    ++rows;
  }

  std::printf(
      "\nShape check: IFCC checking is by far the cheapest policy — a single "
      "linear scan for indirect calls plus a\nstructural check of the small "
      "jump table. Paper P/D ranges 0.025-0.065; ours averages P/D = %.3f. "
      "The per-phase\nordering (disassembly >> policy >> load) inverts "
      "Figure 3's, exactly as in the paper.\n",
      pd_ratio_sum / rows);
  return 0;
}
