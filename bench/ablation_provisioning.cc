// Ablation: end-to-end provisioning cost breakdown (channel+decrypt,
// disassembly, policy checking, loading) for the largest benchmark (Nginx),
// swept across policy configurations — including all three policies stacked,
// which the paper's per-figure tables never show together. Also reports the
// one-time nature of the cost: a second execution of the enclave incurs zero
// EnGarde work ("EnGarde only operates during enclave provisioning").
#include "bench/harness.h"

using namespace engarde;
using namespace engarde::bench;

namespace {

enum class Config { kSingle, kAll, kLiblinkMemoized };

// All three policies at once (the "full SLA" configuration).
core::PolicySet AllPolicies(const workload::SynthLibcOptions& libc) {
  core::PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  if (db.ok()) {
    policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
        "synth-musl v" + libc.version, std::move(db).value()));
  }
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  policies.push_back(std::make_unique<core::IndirectCallPolicy>());
  return policies;
}

// The library-linking policy with per-function memoization — the obvious
// optimisation over the paper's rehash-per-call-site algorithm.
core::PolicySet MemoizedLiblink(const workload::SynthLibcOptions& libc) {
  core::PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  if (db.ok()) {
    policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
        "synth-musl v" + libc.version, std::move(db).value(),
        core::LibraryLinkingPolicy::Options{.memoize_functions = true}));
  }
  return policies;
}

int RunConfig(const char* label, workload::BuildFlavor flavor, Config config) {
  const auto& nginx = workload::PaperBenchmarks()[0];
  auto program = workload::BuildBenchmark(nginx, flavor);
  if (!program.ok()) {
    std::printf("%s: build failed: %s\n", label,
                program.status().ToString().c_str());
    return 1;
  }

  sgx::CycleAccountant accountant;
  sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("ablate"), 1024);
  if (!quoting.ok()) return 1;

  core::EngardeOptions options;
  options.rsa_bits = 1024;
  core::PolicySet policies;
  switch (config) {
    case Config::kSingle:
      policies = PolicyFor(flavor, program->libc_options);
      break;
    case Config::kAll:
      policies = AllPolicies(program->libc_options);
      break;
    case Config::kLiblinkMemoized:
      policies = MemoizedLiblink(program->libc_options);
      break;
  }
  auto enclave = core::EngardeEnclave::Create(&host, *quoting,
                                              std::move(policies), options);
  if (!enclave.ok()) return 1;

  crypto::DuplexPipe pipe;
  if (!enclave->SendHello(pipe.EndA()).ok()) return 1;
  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client cl(client_options, program->image);
  if (!cl.SendProgram(pipe.EndB()).ok()) return 1;

  accountant.Reset();
  auto outcome = enclave->RunProvisioning(pipe.EndA());
  if (!outcome.ok() || !outcome->verdict.compliant) {
    std::printf("%s: provisioning failed\n", label);
    return 1;
  }

  const auto& channel = accountant.phase_cost(sgx::Phase::kChannel);
  const auto& disasm = accountant.phase_cost(sgx::Phase::kDisassembly);
  const auto& policy = accountant.phase_cost(sgx::Phase::kPolicyCheck);
  const auto& loading = accountant.phase_cost(sgx::Phase::kLoading);
  const uint64_t total =
      channel.Cycles() + disasm.Cycles() + policy.Cycles() + loading.Cycles();

  std::printf("%-28s %9zu | %13llu %13llu %13llu %13llu | %13llu | %6zu %5zu\n",
              label, outcome->stats.instruction_count,
              static_cast<unsigned long long>(channel.Cycles()),
              static_cast<unsigned long long>(disasm.Cycles()),
              static_cast<unsigned long long>(policy.Cycles()),
              static_cast<unsigned long long>(loading.Cycles()),
              static_cast<unsigned long long>(total),
              outcome->stats.blocks_received,
              static_cast<size_t>(accountant.total_trampolines()));

  // Runtime-overhead claim: execute the provisioned program twice and show
  // EnGarde adds no per-run cost (only EENTER/EEXIT, as for any enclave).
  if (config == Config::kAll) {
    accountant.Reset();
    auto rax = enclave->ExecuteClientProgram();
    const uint64_t sgx_per_run = accountant.total_sgx_instructions();
    if (rax.ok()) {
      std::printf(
          "\nRuntime overhead check: executing the provisioned enclave used "
          "%llu SGX instructions\n(exactly the EENTER/EEXIT pair any enclave "
          "needs) and zero EnGarde phases — \"except for a small\nincrease in "
          "enclave-provisioning time, EnGarde does not impose any runtime "
          "performance penalty\".\n",
          static_cast<unsigned long long>(sgx_per_run));
    }
  }
  return 0;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — end-to-end provisioning cost breakdown (Nginx-scale, "
      "262K instructions)\nCycles per phase under the paper's cost model; "
      "'channel' covers receive+decrypt of all blocks.\n\n");
  std::printf("%-28s %9s | %13s %13s %13s %13s | %13s | %6s %5s\n",
              "Configuration", "#Inst", "channel", "disassembly", "policy",
              "loading", "total", "blocks", "tramp");
  std::printf("%s\n", std::string(140, '-').c_str());

  if (RunConfig("library-linking only", workload::BuildFlavor::kPlain,
                Config::kSingle))
    return 1;
  if (RunConfig("liblink memoized (ablation)", workload::BuildFlavor::kPlain,
                Config::kLiblinkMemoized))
    return 1;
  if (RunConfig("stack-protection only",
                workload::BuildFlavor::kStackProtector, Config::kSingle))
    return 1;
  if (RunConfig("ifcc only", workload::BuildFlavor::kIfcc, Config::kSingle))
    return 1;
  if (RunConfig("all three policies",
                workload::BuildFlavor::kStackProtector, Config::kAll))
    return 1;
  return 0;
}
