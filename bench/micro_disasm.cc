// Microbenchmarks for the NaCl-style disassembler and the paper's
// instruction-buffer design: decode throughput, validator cost, and the
// ablation behind the paper's malloc-trampoline optimisation ("allocating a
// memory page at a time instead of just a memory region for an instruction")
// — per-instruction allocation would cost ~50x more trampoline exits.
#include <benchmark/benchmark.h>

#include "workload/program_builder.h"
#include "x86/decoder.h"
#include "x86/insn_buffer.h"
#include "x86/validator.h"

namespace {

using namespace engarde;

const workload::BuiltProgram& TestProgram() {
  static const workload::BuiltProgram* program = [] {
    workload::ProgramSpec spec;
    spec.seed = 2718;
    spec.target_instructions = 25000;
    auto built = workload::BuildProgram(spec);
    return built.ok() ? new workload::BuiltProgram(std::move(built).value())
                      : nullptr;
  }();
  return *program;
}

struct TextRegion {
  Bytes bytes;
  uint64_t vaddr;
};

TextRegion TestText() {
  auto elf = elf::ElfFile::Parse(ByteView(TestProgram().image.data(),
                                          TestProgram().image.size()));
  const elf::Shdr* text = elf->SectionByName(".text");
  auto content = elf->SectionContent(*text);
  return {Bytes(content->begin(), content->end()), text->addr};
}

void BM_DecodeThroughput(benchmark::State& state) {
  const TextRegion text = TestText();
  size_t insns = 0;
  for (auto _ : state) {
    auto decoded =
        x86::DecodeAll(ByteView(text.bytes.data(), text.bytes.size()),
                       text.vaddr);
    benchmark::DoNotOptimize(decoded);
    insns = decoded->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(insns));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.bytes.size()));
}
BENCHMARK(BM_DecodeThroughput);

void BM_DecodeSingleInstruction(benchmark::State& state) {
  // The paper's canonical 9-byte canary load: mov %fs:0x28, %rax.
  const Bytes code = {0x64, 0x48, 0x8b, 0x04, 0x25, 0x28, 0x00, 0x00, 0x00};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        x86::DecodeOne(ByteView(code.data(), code.size()), 0, 0x1000));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodeSingleInstruction);

void BM_NaClValidation(benchmark::State& state) {
  const TextRegion text = TestText();
  auto decoded = x86::DecodeAll(
      ByteView(text.bytes.data(), text.bytes.size()), text.vaddr);
  x86::InsnBuffer insns;
  for (const auto& insn : *decoded) insns.Append(insn);

  auto elf = elf::ElfFile::Parse(ByteView(TestProgram().image.data(),
                                          TestProgram().image.size()));
  x86::ValidationInput input;
  input.text_start = text.vaddr;
  input.text_end = text.vaddr + text.bytes.size();
  input.roots.push_back(elf->header().entry);
  for (const elf::Sym& sym : elf->symbols()) {
    if (sym.IsFunction() && !sym.name.empty()) input.roots.push_back(sym.value);
  }

  for (auto _ : state) {
    benchmark::DoNotOptimize(x86::ValidateNaClConstraints(insns, input));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(insns.size()));
}
BENCHMARK(BM_NaClValidation);

// Ablation: trampoline exits as a function of allocation granularity. The
// paper allocates the instruction buffer a page at a time; allocating per
// instruction would trampoline on every Append.
void BM_InsnBufferFill(benchmark::State& state) {
  const bool per_insn_alloc = state.range(0) == 1;
  const TextRegion text = TestText();
  auto decoded = x86::DecodeAll(
      ByteView(text.bytes.data(), text.bytes.size()), text.vaddr);

  size_t trampolines = 0;
  for (auto _ : state) {
    trampolines = 0;
    if (per_insn_alloc) {
      // Model NaCl's original behaviour: one in-enclave malloc per insn.
      for (const auto& insn : *decoded) {
        benchmark::DoNotOptimize(insn);
        ++trampolines;
      }
    } else {
      x86::InsnBuffer buffer([&trampolines](size_t) { ++trampolines; });
      for (const auto& insn : *decoded) buffer.Append(insn);
      benchmark::DoNotOptimize(buffer.size());
    }
  }
  state.counters["trampolines"] =
      benchmark::Counter(static_cast<double>(trampolines));
  state.counters["sgx_cycles"] = benchmark::Counter(
      static_cast<double>(trampolines) * 2 * 10000);  // EEXIT+EENTER
}
BENCHMARK(BM_InsnBufferFill)
    ->Arg(0)  // page-at-a-time (the paper's optimisation)
    ->Arg(1)  // per-instruction allocation (what it replaced)
    ->ArgName("per_insn");

}  // namespace

BENCHMARK_MAIN();
