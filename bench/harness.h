// Shared harness for the figure-reproduction benches: runs the full EnGarde
// provisioning pipeline for one catalog benchmark under one policy
// configuration and reports the per-phase cycle costs under the paper's cost
// model (10K cycles per SGX instruction + native time at 3.5 GHz).
#ifndef ENGARDE_BENCH_HARNESS_H_
#define ENGARDE_BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/engarde.h"
#include "core/inspection.h"
#include "core/policy_ifcc.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "core/verdict_cache.h"
#include "workload/catalog.h"

namespace engarde::bench {

struct PhaseCycles {
  size_t instructions = 0;
  uint64_t disassembly = 0;
  uint64_t policy_check = 0;
  uint64_t loading = 0;
  uint64_t channel = 0;
  // Wall-clock nanoseconds for the whole RunProvisioning call (key
  // unwrapping through verdict). Unlike the cycle columns this is real
  // elapsed time, so it is what the inspection_threads knob improves.
  uint64_t wall_ns = 0;
  // Deterministic per-phase SGX-instruction counts (thread-count invariant).
  uint64_t disassembly_sgx = 0;
  uint64_t policy_check_sgx = 0;
  bool compliant = false;
  // Per-stage reports straight from the inspection pipeline (finer-grained
  // than the phase columns: container validation, page separation, symbol
  // table and NaCl validation each get their own row).
  std::vector<core::StageReport> stage_reports;
  // Streaming-inspection telemetry (zero in staged runs): how much of the
  // text was already decoded when the last block landed.
  uint64_t streaming_text_bytes = 0;
  uint64_t streaming_before_done = 0;
  uint64_t streaming_spliced = 0;
  uint64_t streaming_fallback = 0;
};

// Which policy module to install, matching the figure being reproduced.
inline core::PolicySet PolicyFor(workload::BuildFlavor flavor,
                                 const workload::SynthLibcOptions& libc) {
  core::PolicySet policies;
  switch (flavor) {
    case workload::BuildFlavor::kPlain: {
      auto db = workload::BuildLibcHashDb(libc);
      if (db.ok()) {
        policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
            "synth-musl v" + libc.version, std::move(db).value()));
      }
      break;
    }
    case workload::BuildFlavor::kStackProtector:
      policies.push_back(std::make_unique<core::StackProtectionPolicy>());
      break;
    case workload::BuildFlavor::kIfcc:
      policies.push_back(std::make_unique<core::IndirectCallPolicy>());
      break;
  }
  return policies;
}

// Provisions `program` through a fresh enclave and returns the phase costs.
// `inspection_threads` > 1 runs the parallel inspection engine; `streaming`
// overlaps the speculative per-block decode with the upload; a non-null
// `verdict_cache` lets the pipeline replay or partially reuse prior results.
// The verdict and the SGX-instruction columns are identical at any setting,
// only wall time (and hence the native-time component of the cycle model)
// changes.
inline Result<PhaseCycles> MeasureProvisioning(
    const workload::BuiltProgram& program, workload::BuildFlavor flavor,
    size_t inspection_threads = 1, bool streaming = false,
    std::shared_ptr<core::VerdictCache> verdict_cache = nullptr) {
  sgx::CycleAccountant accountant;
  sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
  sgx::HostOs host(&device);

  static const auto* quoting = [] {
    auto qe = sgx::QuotingEnclave::Provision(ToBytes("bench-device"), 1024);
    return qe.ok() ? new sgx::QuotingEnclave(std::move(qe).value()) : nullptr;
  }();
  if (quoting == nullptr) return InternalError("quoting enclave provisioning");

  core::EngardeOptions options;
  options.rsa_bits = 1024;  // key size does not affect the measured phases
  options.inspection_threads = inspection_threads;
  options.streaming_inspection = streaming;
  options.verdict_cache = std::move(verdict_cache);
  auto enclave = core::EngardeEnclave::Create(
      &host, *quoting, PolicyFor(flavor, program.libc_options), options);
  RETURN_IF_ERROR(enclave.status());

  crypto::DuplexPipe pipe;
  RETURN_IF_ERROR(enclave->SendHello(pipe.EndA()));

  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.skip_measurement_check = true;  // measured path only
  client::Client cl(client_options, program.image);
  RETURN_IF_ERROR(cl.SendProgram(pipe.EndB()));

  // Reset the accountant so enclave-build costs do not pollute the phases.
  accountant.Reset();
  const auto wall_start = std::chrono::steady_clock::now();
  ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                   enclave->RunProvisioning(pipe.EndA()));
  const auto wall_end = std::chrono::steady_clock::now();

  PhaseCycles out;
  out.instructions = outcome.stats.instruction_count;
  out.disassembly =
      accountant.phase_cost(sgx::Phase::kDisassembly).Cycles();
  out.policy_check =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).Cycles();
  out.loading = accountant.phase_cost(sgx::Phase::kLoading).Cycles();
  out.channel = accountant.phase_cost(sgx::Phase::kChannel).Cycles();
  out.wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                           wall_start)
          .count());
  out.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  out.policy_check_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  out.compliant = outcome.verdict.compliant;
  out.stage_reports = outcome.stage_reports;
  out.streaming_text_bytes = outcome.stats.streaming_text_bytes;
  out.streaming_before_done = outcome.stats.streaming_bytes_before_done;
  out.streaming_spliced = outcome.stats.streaming_spliced_sections;
  out.streaming_fallback = outcome.stats.streaming_fallback_sections;
  return out;
}

inline void PrintFigureHeader(const char* figure, const char* policy_name) {
  std::printf("%s — EnGarde checking the %s policy\n", figure, policy_name);
  std::printf(
      "Cost model: SGX instruction = 10,000 cycles; non-SGX work at native "
      "speed, converted at 3.5 GHz (paper Section 5).\n");
  std::printf(
      "Absolute cycles differ from the paper (their substrate is QEMU-based "
      "OpenSGX); the shape — per-phase ordering,\nscaling with #Inst, "
      "policy/disassembly ratios — is the reproduction target. "
      "See EXPERIMENTS.md.\n\n");
  std::printf(
      "%-11s %9s | %15s %15s %13s | %15s %15s %13s | %8s %8s\n",
      "Benchmark", "#Inst", "Disasm(meas)", "Policy(meas)", "Load(meas)",
      "Disasm(paper)", "Policy(paper)", "Load(paper)", "P/D meas", "P/D ppr");
  std::printf("%s\n", std::string(150, '-').c_str());
}

struct PaperRow {
  uint64_t disasm, policy, load;
};

inline void PrintFigureRow(const char* name, const PhaseCycles& measured,
                           const PaperRow& paper) {
  const double pd_meas =
      measured.disassembly > 0
          ? static_cast<double>(measured.policy_check) /
                static_cast<double>(measured.disassembly)
          : 0.0;
  const double pd_paper =
      static_cast<double>(paper.policy) / static_cast<double>(paper.disasm);
  std::printf(
      "%-11s %9zu | %15llu %15llu %13llu | %15llu %15llu %13llu | %8.3f %8.3f\n",
      name, measured.instructions,
      static_cast<unsigned long long>(measured.disassembly),
      static_cast<unsigned long long>(measured.policy_check),
      static_cast<unsigned long long>(measured.loading),
      static_cast<unsigned long long>(paper.disasm),
      static_cast<unsigned long long>(paper.policy),
      static_cast<unsigned long long>(paper.load), pd_meas, pd_paper);
}

}  // namespace engarde::bench

#endif  // ENGARDE_BENCH_HARNESS_H_
