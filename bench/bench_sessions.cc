// Concurrent provisioning benchmark: N clients provision through one
// ProvisioningServer (shared SGX device + host OS + inspection pool), driven
// once serially and once with a thread per session, and the bench verifies
// the verdicts and per-session SGX-instruction totals are identical before
// reporting the wall-time ratio. Writes BENCH_sessions.json.
//
// Usage: bench_sessions [--sessions N] [--threads T] [--scale S] [--out PATH]
//   --sessions N  concurrent client exchanges (default 8)
//   --threads T   shared inspection pool size (default 1: per-session
//                 concurrency only)
//   --scale S     benchmark size multiplier (default 0.2)
//   --out PATH    output file (default BENCH_sessions.json)
//
// Note: on a single-core host the concurrent drive still must produce
// identical verdicts/accounting; the wall-time ratio is only meaningful with
// real cores.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/server.h"

using namespace engarde;
using namespace engarde::bench;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

// A compact enclave layout so many enclaves fit the default 128 MB EPC
// without eviction churn (which would make serial-vs-concurrent accounting
// depend on interleaving).
sgx::EnclaveLayout CompactLayout() {
  sgx::EnclaveLayout layout;
  layout.heap_pages = 512;
  layout.load_pages = 256;
  return layout;
}

struct DriveStats {
  uint64_t wall_ns = 0;
  std::vector<bool> compliant;
  std::vector<uint64_t> total_sgx;
};

}  // namespace

int main(int argc, char** argv) {
  size_t sessions = 8;
  size_t threads = 1;
  double scale = 0.2;
  std::string out_path = "BENCH_sessions.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sessions [--sessions N] [--threads T] "
                   "[--scale S] [--out PATH]\n");
      return 2;
    }
  }

  const workload::CatalogEntry& entry = workload::PaperBenchmarks().front();
  auto program = workload::BuildBenchmarkScaled(
      entry, workload::BuildFlavor::kPlain, scale);
  if (!program.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  auto qe = sgx::QuotingEnclave::Provision(ToBytes("bench-sessions"), 1024);
  if (!qe.ok()) {
    std::fprintf(stderr, "quoting enclave: %s\n",
                 qe.status().ToString().c_str());
    return 1;
  }

  const sgx::EnclaveLayout layout = CompactLayout();

  // One full run: accept `sessions` clients against a fresh device, then
  // drive them serially or concurrently.
  const auto run = [&](bool concurrent) -> Result<DriveStats> {
    sgx::SgxDevice device(sgx::SgxDevice::Options{
        .epc_pages = sessions * layout.TotalPages() + 64});
    sgx::HostOs host(&device);

    core::ProvisioningServer::Options options;
    options.enclave_options.layout = layout;
    options.enclave_options.rsa_bits = 1024;
    options.inspection_threads = threads;
    core::ProvisioningServer server(
        &host, &*qe,
        [&] { return PolicyFor(workload::BuildFlavor::kPlain,
                               program->libc_options); },
        options);

    std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
    for (size_t i = 0; i < sessions; ++i) {
      pipes.push_back(std::make_unique<crypto::DuplexPipe>());
      ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
      (void)index;
      client::ClientOptions client_options;
      client_options.attestation_key = qe->attestation_public_key();
      client_options.skip_measurement_check = true;
      client::Client client(client_options, program->image);
      RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
    }

    DriveStats stats;
    const Clock::time_point start = Clock::now();
    if (concurrent) {
      auto outcomes = server.DriveAll();
      stats.wall_ns = ElapsedNs(start);
      for (auto& outcome : outcomes) {
        RETURN_IF_ERROR(outcome.status());
        stats.compliant.push_back(outcome->verdict.compliant);
      }
    } else {
      for (size_t i = 0; i < sessions; ++i) {
        ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                         server.Drive(i));
        stats.compliant.push_back(outcome.verdict.compliant);
      }
      stats.wall_ns = ElapsedNs(start);
    }
    for (size_t i = 0; i < sessions; ++i) {
      stats.total_sgx.push_back(
          server.session_accountant(i).total_sgx_instructions());
    }
    return stats;
  };

  auto serial = run(/*concurrent=*/false);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial drive: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }
  auto concurrent = run(/*concurrent=*/true);
  if (!concurrent.ok()) {
    std::fprintf(stderr, "concurrent drive: %s\n",
                 concurrent.status().ToString().c_str());
    return 1;
  }

  // Equivalence gate: a wall-time number for a concurrent drive that changed
  // the verdicts or the accounting would be meaningless.
  for (size_t i = 0; i < sessions; ++i) {
    if (serial->compliant[i] != concurrent->compliant[i] ||
        serial->total_sgx[i] != concurrent->total_sgx[i]) {
      std::fprintf(stderr,
                   "session %zu: serial/concurrent mismatch "
                   "(compliant %d/%d, sgx %llu/%llu)\n",
                   i, static_cast<int>(serial->compliant[i]),
                   static_cast<int>(concurrent->compliant[i]),
                   static_cast<unsigned long long>(serial->total_sgx[i]),
                   static_cast<unsigned long long>(concurrent->total_sgx[i]));
      return 1;
    }
  }

  const double ratio =
      concurrent->wall_ns > 0
          ? static_cast<double>(serial->wall_ns) /
                static_cast<double>(concurrent->wall_ns)
          : 0.0;
  std::printf("%zu sessions (%s @ scale %g, pool=%zu threads)\n", sessions,
              entry.name, scale, threads);
  std::printf("  serial drive:     %8.2f ms\n",
              static_cast<double>(serial->wall_ns) / 1e6);
  std::printf("  concurrent drive: %8.2f ms  (%.2fx)\n",
              static_cast<double>(concurrent->wall_ns) / 1e6, ratio);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"%s\",\n", entry.name);
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"sessions\": %zu,\n", sessions);
  std::fprintf(f, "  \"inspection_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"serial_wall_ns\": %llu,\n",
               static_cast<unsigned long long>(serial->wall_ns));
  std::fprintf(f, "  \"concurrent_wall_ns\": %llu,\n",
               static_cast<unsigned long long>(concurrent->wall_ns));
  std::fprintf(f, "  \"speedup\": %.3f,\n", ratio);
  std::fprintf(f, "  \"per_session_sgx_instructions\": [");
  for (size_t i = 0; i < sessions; ++i) {
    std::fprintf(f, "%s%llu", i > 0 ? ", " : "",
                 static_cast<unsigned long long>(serial->total_sgx[i]));
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
