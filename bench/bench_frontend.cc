// Front-end provisioning benchmark: N concurrent clients admitted through
// the readiness-driven ProvisioningFrontend (core/frontend.h) over in-memory
// transports, cold-built vs. warm-pool enclaves — and cold with streaming
// inspection (speculative decode overlapped with block upload) — at
// 1 / 8 / 64 / 256 concurrent clients. Reports sessions/sec, p50/p99
// time-to-verdict and the achieved decode-overlap ratio, and writes
// BENCH_frontend.json.
//
// Every throughput number is gated on bit-for-bit equality with a serial
// staged ProvisioningServer::Drive of the same client mix: identical
// verdicts and identical per-phase SGX-instruction attribution, or the
// bench fails.
//
// The re-upload sweep measures the verdict cache through the front end: the
// same client mix re-uploads with 0% / 10% / 100% of each program's
// application functions mutated, cold (no cache) vs warm (a cache seeded
// with the original mix, fresh per repetition). Warm rows are gated on the
// same serial fingerprints, and the 0%-changed warm row must beat cold on
// sessions/sec or the bench fails.
//
// The fleet sweep contrasts one co-admitted group connection against N
// independent sessions for every workload-catalog topology, verdict cache
// off and on (fresh sealed store per run). Replica-set group medians must
// beat N independent sessions in both cache modes or the bench fails (the
// verdict is deferred to exit, like the re-upload gate).
//
// Usage: bench_frontend [--rsa-bits N] [--insns N] [--out PATH]
//                       [--oversub-only] [--smoke]
// --smoke is the CI profile: levels 1/4, two fleet topologies at one rep,
// no re-upload / reactor-scaling / oversubscription sweeps.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <thread>
#include <tuple>

#include <filesystem>

#include "client/client.h"
#include "core/frontend.h"
#include "core/frontend_group.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "core/verdict_cache.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "workload/catalog.h"
#include "workload/mutate.h"
#include "workload/program_builder.h"

using namespace engarde;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

core::PolicySet MakePolicies() {
  core::PolicySet policies;
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  return policies;
}

core::EngardeOptions EnclaveOptions(size_t rsa_bits, bool streaming) {
  core::EngardeOptions options;
  options.rsa_bits = rsa_bits;
  options.layout.heap_pages = 128;
  options.layout.load_pages = 32;
  options.streaming_inspection = streaming;
  return options;
}

// Layout pages + SECS, the device-level footprint of one enclave.
size_t EpcPagesFor(size_t enclaves, const core::EngardeOptions& options) {
  return enclaves * (options.layout.TotalPages() + 1) + 64;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& qe) {
  client::ClientOptions options;
  options.attestation_key = qe.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

// Everything the equality gate compares per client.
struct Fingerprint {
  bool compliant = false;
  uint64_t idle_sgx = 0, channel_sgx = 0, disassembly_sgx = 0;
  uint64_t policy_sgx = 0, loading_sgx = 0, total_sgx = 0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint Fp(bool compliant, const sgx::CycleAccountant& accountant) {
  Fingerprint fp;
  fp.compliant = compliant;
  fp.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  fp.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  fp.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  fp.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  fp.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  fp.total_sgx = accountant.total_sgx_instructions();
  return fp;
}

struct RunStats {
  uint64_t wall_ns = 0;            // accept of first client -> last verdict
  uint64_t prefill_ns = 0;         // warm runs: pool build time (untimed path)
  std::vector<uint64_t> latency_ns;  // per client, accept -> verdict
  std::vector<Fingerprint> fingerprints;
  core::FrontendMetrics metrics;   // snapshot after the final reap sweep
};

// Serial reference: the same images driven one at a time through
// ProvisioningServer::Drive on a fresh device.
Result<std::vector<Fingerprint>> RunSerial(const sgx::QuotingEnclave& qe,
                                           const std::vector<Bytes>& images,
                                           const core::EngardeOptions& opts) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::ProvisioningServer::Options options;
  options.enclave_options = opts;
  core::ProvisioningServer server(&host, &qe, MakePolicies, options);
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    (void)index;
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Fingerprint> fps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome, server.Drive(i));
    fps.push_back(
        Fp(outcome.verdict.compliant, server.session_accountant(i)));
  }
  return fps;
}

// One frontend run over in-memory transports, cold or warm.
Result<RunStats> RunFrontend(const sgx::QuotingEnclave& qe,
                             const std::vector<Bytes>& images,
                             const core::EngardeOptions& opts, bool warm) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::FrontendOptions options;
  options.enclave_options = opts;
  core::ProvisioningFrontend frontend(&host, &qe, MakePolicies, options);

  RunStats stats;
  if (warm) {
    const Clock::time_point prefill_start = Clock::now();
    RETURN_IF_ERROR(frontend.PrefillPool(images.size()));
    stats.prefill_ns = ElapsedNs(prefill_start, Clock::now());
  }

  const size_t n = images.size();
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes(n);
  std::vector<std::unique_ptr<client::Client>> clients(n);
  std::vector<Clock::time_point> accepted(n);
  std::vector<Clock::time_point> verdicted(n);
  std::vector<bool> done(n, false);
  std::vector<bool> compliant(n, false);

  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    pipes[i] = std::make_unique<crypto::DuplexPipe>();
    clients[i] =
        std::make_unique<client::Client>(ClientOptionsFor(qe), images[i]);
    accepted[i] = Clock::now();
    ASSIGN_OR_RETURN(const uint64_t id,
                     frontend.Accept(std::make_unique<net::PipeTransport>(
                         pipes[i]->EndA())));
    if (id != i) return InternalError("unexpected connection id");
    ASSIGN_OR_RETURN(const auto retry,
                     clients[i]->AwaitAdmission(pipes[i]->EndB()));
    if (retry.has_value()) {
      return InternalError("unexpected RetryAfter with a full budget");
    }
    RETURN_IF_ERROR(clients[i]->SendProgram(pipes[i]->EndB()));
  }
  size_t remaining = n;
  while (remaining > 0) {
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    if (progress == 0) {
      return InternalError("reactor stalled before all verdicts");
    }
    for (size_t i = 0; i < n; ++i) {
      if (done[i] ||
          frontend.state(i) != core::ConnectionState::kDone) {
        continue;
      }
      verdicted[i] = Clock::now();
      done[i] = true;
      --remaining;
    }
  }
  stats.wall_ns = ElapsedNs(start, Clock::now());
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                     frontend.TakeOutcome(i));
    compliant[i] = outcome.verdict.compliant;
    stats.latency_ns.push_back(ElapsedNs(accepted[i], verdicted[i]));
    stats.fingerprints.push_back(Fp(compliant[i], frontend.accountant(i)));
    if (warm != frontend.served_from_pool(i)) {
      return InternalError("pool handout did not match the mode");
    }
  }
  // Every outcome is taken: one more drain lets the reaper retire all the
  // slots, proving the table really returns to O(active) = 0.
  RETURN_IF_ERROR(frontend.DrainAll());
  stats.metrics = frontend.metrics();
  if (stats.metrics.live_connections != 0 || frontend.connection_count() != 0) {
    return InternalError("reaper left retired connections in the table");
  }
  return stats;
}

uint64_t Percentile(std::vector<uint64_t> values, size_t percent) {
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) * percent / 100];
}

// ---- Reactor scaling over real TCP -----------------------------------------
// N FrontendGroup reactor threads race one loopback listener while real
// client threads provision concurrently. Which reactor (and connection slot)
// a client lands on is a kernel accept race, so the equality gate compares
// the SORTED multiset of fingerprints against the serial reference.

// Client-side bridge between the socket and the blocking client library
// (same shape as tools/engarde-serve --selftest).
Result<size_t> Shuttle(net::TcpTransport& socket, crypto::DuplexPipe& pipe) {
  size_t moved = 0;
  Bytes inbound;
  ASSIGN_OR_RETURN(const size_t drained, socket.Drain(inbound));
  crypto::DuplexPipe::Endpoint bridge = pipe.EndA();
  if (drained > 0) {
    bridge.Write(ByteView(inbound));
    moved += drained;
  }
  const size_t pending = bridge.Available();
  if (pending > 0) {
    ASSIGN_OR_RETURN(const Bytes outbound, bridge.Read(pending));
    RETURN_IF_ERROR(socket.Send(ByteView(outbound)));
    moved += pending;
  }
  RETURN_IF_ERROR(socket.Flush().status());
  return moved;
}

template <typename Ready>
Status PumpUntil(net::TcpTransport& socket, crypto::DuplexPipe& pipe,
                 Ready ready) {
  while (!ready()) {
    ASSIGN_OR_RETURN(const size_t moved, Shuttle(socket, pipe));
    if (moved == 0) {
      if (socket.AtEof() && pipe.EndB().Available() == 0) {
        return ProtocolError("server closed before the exchange completed");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return Status::Ok();
}

Status RunBenchClient(uint16_t port, const client::ClientOptions& options,
                      const Bytes& executable) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    ASSIGN_OR_RETURN(std::unique_ptr<net::TcpTransport> socket,
                     net::TcpTransport::Connect("127.0.0.1", port));
    crypto::DuplexPipe pipe;
    crypto::DuplexPipe::Endpoint client_end = pipe.EndB();
    client::Client client(options, executable);
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 1);
    }));
    ASSIGN_OR_RETURN(const std::optional<core::RetryAfter> retry,
                     client.AwaitAdmission(client_end));
    if (retry.has_value()) {
      socket->Close();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry->retry_after_ms));
      continue;
    }
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 2);
    }));
    RETURN_IF_ERROR(client.SendProgram(client_end));
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteSecureRecord(client_end);
    }));
    return client.AwaitVerdict().status();
  }
  return ResourceExhaustedError("still shed after 200 admission attempts");
}

struct GroupStats {
  uint64_t wall_ns = 0;
  std::vector<Fingerprint> fingerprints;  // unordered (accept race)
  core::FrontendMetrics metrics;
};

Result<GroupStats> RunGroupTcp(const sgx::QuotingEnclave& qe,
                               const std::vector<Bytes>& images,
                               const core::EngardeOptions& opts,
                               size_t reactors) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::FrontendGroupOptions options;
  options.frontend.enclave_options = opts;
  options.frontend.admission_queue_capacity = images.size();
  options.reactors = reactors;
  core::FrontendGroup group(&host, &qe, MakePolicies, options);

  auto listener = net::TcpListener::Bind(0);
  if (!listener.ok()) return listener.status();
  const uint16_t port = listener->port();
  group.AttachListener(&*listener);
  RETURN_IF_ERROR(group.Start());

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  std::vector<Status> failures(images.size());
  for (size_t i = 0; i < images.size(); ++i) {
    clients.emplace_back([port, &qe, &images, &failures, i] {
      failures[i] = RunBenchClient(port, ClientOptionsFor(qe), images[i]);
    });
  }
  for (std::thread& thread : clients) thread.join();
  GroupStats stats;
  stats.wall_ns = ElapsedNs(start, Clock::now());
  RETURN_IF_ERROR(group.Stop());
  for (const Status& failure : failures) RETURN_IF_ERROR(failure);

  // Quiescent now: harvest every live connection's fingerprint, whichever
  // reactor it raced onto. Ids come from the slot map (sparse after sheds
  // were reaped mid-run), so iterate the live set, not 0..count.
  for (size_t r = 0; r < group.reactor_count(); ++r) {
    core::ProvisioningFrontend& frontend = group.reactor(r);
    for (const uint64_t id : frontend.connection_ids()) {
      if (frontend.state(id) != core::ConnectionState::kDone) continue;
      ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                       frontend.TakeOutcome(id));
      stats.fingerprints.push_back(
          Fp(outcome.verdict.compliant, frontend.accountant(id)));
    }
  }
  if (stats.fingerprints.size() != images.size()) {
    return InternalError("verdict count mismatch across reactors");
  }
  stats.metrics = group.metrics();
  return stats;
}

// ---- EPC oversubscription sweep --------------------------------------------
// Fixed physical EPC sized for only a few resident enclaves while many
// clients provision concurrently. Ratio 1.0 is the shed-on-full baseline
// (RetryAfter + real client back-off); higher ratios admit against virtual
// capacity and lean on the host-OS reclaimer (EWB/ELDU) to multiplex the
// resident set. Gates: bit-identical fingerprints vs the serial reference
// at every ratio, zero retained EPC pages after teardown, and ratio >= 2.0
// must beat the baseline's throughput at the same physical EPC.

struct OversubStats {
  uint64_t wall_ns = 0;
  std::vector<uint64_t> latency_ns;       // first connect -> verdict
  std::vector<Fingerprint> fingerprints;  // ordered by client index
  core::FrontendMetrics metrics;
};

Result<OversubStats> RunOversub(const sgx::QuotingEnclave& qe,
                                const std::vector<Bytes>& images,
                                const core::EngardeOptions& opts,
                                size_t physical_pages, double ratio) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{.epc_pages = physical_pages});
  sgx::HostOs host(&device);
  // The daemon stands by for fault-path backpressure recovery, but the
  // admission kick stays off (reclaim_low_watermark = 0 below): this bench
  // runs reactors, clients and daemon on whatever cores the host grants, and
  // on a single core background reclaim cannot overlap with anything — every
  // page it writes back beyond what the next allocation needs is a page a
  // parked session refaults later. Demand reclaim inside the build and fault
  // paths already frees exactly what each allocation needs, synchronously;
  // the kick is a multi-core optimization (see EXPERIMENTS.md).
  // Batch stays at the SGX_NR_TO_SCAN-style default (16): the batch also
  // sizes demand reclaim in the fault path, and a fatter batch over-evicts —
  // each one-page fault writes back pages its neighbours refault right away.
  sgx::ReclaimerOptions reclaimer;
  reclaimer.low_watermark_pages = physical_pages / 32;
  reclaimer.batch_pages = 16;
  reclaimer.poll_interval_ms = 50;
  RETURN_IF_ERROR(host.StartReclaimer(reclaimer));

  // The tentpole contrast: the baseline (ratio 1.0) sheds on full and
  // clients eat the RetryAfter back-off; the oversubscribed path admits
  // against virtual capacity and parks the overflow in the admission FIFO,
  // so a freed page turns into an admission on the very next sweep.
  core::FrontendOptions options;
  options.enclave_options = opts;
  options.epc_oversub = ratio;
  options.reclaim_low_watermark = 0;  // no admission kicks; see comment above
  options.admission_queue_capacity = ratio > 1.0 ? images.size() : 0;
  core::ProvisioningFrontend frontend(&host, &qe, MakePolicies, options);

  const size_t n = images.size();
  struct Slot {
    std::unique_ptr<crypto::DuplexPipe> pipe;
    std::unique_ptr<client::Client> client;
    uint64_t conn_id = 0;
    bool accepted = false;   // Accept() done, admission decision pending
    bool connected = false;  // hello received, program sent
    bool done = false;
    Clock::time_point first_attempt;
    Clock::time_point retry_at;
    uint64_t backoff_ms = 0;  // exponential, seeded by the server's hint
  };
  std::vector<Slot> slots(n);
  OversubStats stats;
  stats.latency_ns.resize(n);
  stats.fingerprints.resize(n);

  const Clock::time_point start = Clock::now();
  for (Slot& slot : slots) {
    slot.first_attempt = start;
    slot.retry_at = start;
  }
  size_t remaining = n;
  while (remaining > 0) {
    const Clock::time_point now = Clock::now();
    bool waiting = false;
    for (size_t i = 0; i < n; ++i) {
      Slot& s = slots[i];
      if (s.done || s.connected) continue;
      if (!s.accepted) {
        if (now < s.retry_at) {  // shed earlier; still backing off
          waiting = true;
          continue;
        }
        // (Re)connect: a shed client starts a fresh exchange, like a real
        // reconnect after RetryAfter.
        s.pipe = std::make_unique<crypto::DuplexPipe>();
        s.client =
            std::make_unique<client::Client>(ClientOptionsFor(qe), images[i]);
        ASSIGN_OR_RETURN(s.conn_id,
                         frontend.Accept(std::make_unique<net::PipeTransport>(
                             s.pipe->EndA())));
        s.accepted = true;
      }
      // Queued connections have nothing on the wire until the reactor
      // admits them; only read the decision once a full frame landed.
      if (!net::HasCompleteFrames(s.pipe->EndB(), 1)) {
        waiting = true;
        continue;
      }
      ASSIGN_OR_RETURN(const auto retry,
                       s.client->AwaitAdmission(s.pipe->EndB()));
      if (retry.has_value()) {
        // Exponential back-off, like any production client facing repeated
        // 429s: the first rejection honors the server's hint, every further
        // consecutive rejection doubles the wait (capped at 16x the hint).
        // This is the true client-visible cost of a shed-on-full front end —
        // the oversubscribed rows never pay it because the admission queue
        // absorbs the overflow instead of rejecting it.
        s.backoff_ms = s.backoff_ms == 0
                           ? retry->retry_after_ms
                           : std::min<uint64_t>(s.backoff_ms * 2,
                                                16 * retry->retry_after_ms);
        s.retry_at = Clock::now() + std::chrono::milliseconds(s.backoff_ms);
        s.accepted = false;
        waiting = true;
        continue;
      }
      RETURN_IF_ERROR(s.client->SendProgram(s.pipe->EndB()));
      s.connected = true;
    }
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    for (size_t i = 0; i < n; ++i) {
      Slot& s = slots[i];
      if (s.done || !s.connected) continue;
      const core::ConnectionState state = frontend.state(s.conn_id);
      if (state == core::ConnectionState::kFailed ||
          state == core::ConnectionState::kTimedOut) {
        return frontend.connection_status(s.conn_id);
      }
      if (state == core::ConnectionState::kReaped) {
        return InternalError("oversub connection reaped before its verdict");
      }
      if (state != core::ConnectionState::kDone) continue;
      ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                       frontend.TakeOutcome(s.conn_id));
      stats.latency_ns[i] = ElapsedNs(s.first_attempt, Clock::now());
      stats.fingerprints[i] =
          Fp(outcome.verdict.compliant, frontend.accountant(s.conn_id));
      s.done = true;
      --remaining;
    }
    if (progress == 0 && remaining > 0) {
      if (!waiting) {
        return InternalError("oversub reactor stalled before all verdicts");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stats.wall_ns = ElapsedNs(start, Clock::now());
  RETURN_IF_ERROR(frontend.DrainAll());
  host.StopReclaimer();
  stats.metrics = frontend.metrics();
  // Leak gates: the table, the device and the budget must all drain to zero
  // — an oversubscribed run must not strand a single EPC page.
  if (frontend.connection_count() != 0 ||
      stats.metrics.live_connections != 0) {
    return InternalError("oversub run left live connections");
  }
  if (device.EnclaveCount() != 0 || device.epc().pages_in_use() != 0 ||
      device.ReclaimablePageCount() != 0) {
    return InternalError("oversub run retained EPC pages after teardown");
  }
  if (stats.metrics.committed_pages != 0 ||
      stats.metrics.budget_underflows != 0) {
    return InternalError("oversub run left the budget unbalanced");
  }
  return stats;
}

// ---- Fleet provisioning: one group connection vs N independent sessions ---
// A replica set (N copies of one binary) or a pipeline (N distinct stages)
// deploys as ONE co-admitted group: one GroupManifest, one group quote, one
// shared channel keyed to member 0, each distinct binary uploaded and
// decrypted once and fanned out per member. The contrast run provisions the
// same images as N independent front-end sessions. Both run against a warm
// pool built outside the timed window, so the timed contrast is the
// handshake + transfer + inspection work the group actually amortizes, not
// N RSA keygens both modes pay identically.

struct FleetStats {
  uint64_t wall_ns = 0;
  std::vector<Fingerprint> fingerprints;  // member declaration order
  core::FrontendMetrics metrics;
  bool rejected = false;  // mutual verification overrode the verdicts
};

Result<FleetStats> RunFleetGroup(const sgx::QuotingEnclave& qe,
                                 const std::vector<Bytes>& images,
                                 const core::EngardeOptions& opts) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::FrontendOptions options;
  options.enclave_options = opts;
  options.group_provisioning = true;
  core::ProvisioningFrontend frontend(&host, &qe, MakePolicies, options);
  RETURN_IF_ERROR(frontend.PrefillPool(images.size()));  // untimed, like warm

  crypto::DuplexPipe pipe;
  client::GroupClient client(ClientOptionsFor(qe), images,
                             core::PolicySetFingerprint(MakePolicies()));

  FleetStats stats;
  const Clock::time_point start = Clock::now();
  ASSIGN_OR_RETURN(const uint64_t id,
                   frontend.Accept(
                       std::make_unique<net::PipeTransport>(pipe.EndA())));
  RETURN_IF_ERROR(client.SendGroupManifest(pipe.EndB()));
  // One sweep parses the manifest, co-admits the group atomically and writes
  // the control frame + group hello (quote + one key per member).
  RETURN_IF_ERROR(frontend.PollOnce().status());
  ASSIGN_OR_RETURN(const auto retry, client.AwaitAdmission(pipe.EndB()));
  if (retry.has_value()) {
    return InternalError("unexpected RetryAfter with a full budget");
  }
  RETURN_IF_ERROR(client.SendPrograms(pipe.EndB()));
  for (;;) {
    const core::ConnectionState state = frontend.state(id);
    if (state == core::ConnectionState::kDone) break;
    if (state == core::ConnectionState::kFailed ||
        state == core::ConnectionState::kTimedOut) {
      return frontend.connection_status(id);
    }
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    if (progress == 0) {
      return InternalError("fleet reactor stalled before the group verdicts");
    }
  }
  stats.wall_ns = ElapsedNs(start, Clock::now());
  stats.rejected = frontend.group_rejected(id);
  ASSIGN_OR_RETURN(const std::vector<core::ProvisionOutcome> outcomes,
                   frontend.TakeGroupOutcomes(id));
  for (size_t i = 0; i < outcomes.size(); ++i) {
    stats.fingerprints.push_back(Fp(outcomes[i].verdict.compliant,
                                    frontend.group_member_accountant(id, i)));
  }
  ASSIGN_OR_RETURN(const std::vector<core::Verdict> verdicts,
                   client.AwaitVerdicts());
  if (verdicts.size() != images.size()) {
    return InternalError("fleet verdict count disagrees with the group size");
  }
  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (verdicts[i].compliant != outcomes[i].verdict.compliant) {
      return InternalError(
          "client-visible fleet verdict disagrees with the outcome");
    }
  }
  RETURN_IF_ERROR(frontend.DrainAll());
  stats.metrics = frontend.metrics();
  if (frontend.connection_count() != 0 ||
      stats.metrics.live_connections != 0) {
    return InternalError("fleet run left live connections");
  }
  if (device.EnclaveCount() != 0 || device.epc().pages_in_use() != 0) {
    return InternalError("fleet run retained EPC pages after teardown");
  }
  return stats;
}

// ---- Hostile-mix: adaptive overload control and multi-tenant fairness ------
// Three tenants share one single-threaded shard: a steady tenant
// provisioning sequentially (the goodput under test), a bursty tenant
// slamming the queue with 4-connection floods, and a slow-loris tenant whose
// connections trickle half a frame through a FaultInjectingTransport and
// then stall, pinning an enclave slot until the idle deadline reaps it.
// Adaptive deadlines, oldest-eviction, weighted-fair admission and the
// per-tenant token bucket are all ON. The baseline run is the same steady
// tenant alone under identical options, so the contrast isolates what the
// hostile load costs. Gates (CI, including --smoke): steady fingerprints
// bit-identical to the serial reference, steady goodput within
// kHostileGoodputFactor of the baseline, the overload machinery actually
// exercised (eviction, rate-limit deferral, timeout, 3 tenants seen), and
// zero retained connections, queue entries or EPC pages after teardown.

// Hostile steady goodput may trail the solo baseline by at most this factor.
// Generous on purpose: a single-core host serializes the loris idle windows
// with everything else (see EXPERIMENTS.md), and the gate is a starvation
// canary, not a latency SLO.
constexpr double kHostileGoodputFactor = 8.0;

struct HostileMixStats {
  uint64_t steady_wall_ns = 0;            // mix start -> last steady verdict
  std::vector<Fingerprint> steady_fps;    // steady client order
  size_t bursty_done = 0;
  size_t bursty_abandoned = 0;
  core::FrontendMetrics metrics;
};

Result<HostileMixStats> RunHostileMix(const sgx::QuotingEnclave& qe,
                                      const std::vector<Bytes>& steady_images,
                                      const Bytes& hostile_image,
                                      const core::EngardeOptions& opts,
                                      bool hostile) {
  constexpr size_t kBursts = 2;
  constexpr size_t kBurstSize = 4;
  constexpr size_t kLorisCount = 3;
  // Two resident enclaves: small enough that the loris connections can pin
  // the whole budget and the queue actually overflows under a burst.
  sgx::SgxDevice device(
      sgx::SgxDevice::Options{.epc_pages = EpcPagesFor(2, opts)});
  sgx::HostOs host(&device);
  core::FrontendOptions options;
  options.enclave_options = opts;
  options.admission_queue_capacity = 4;
  options.queue_deadline_ms = 2000;
  options.idle_deadline_ms = 100;  // a stalled loris pins a slot this long
  options.session_deadline_ms = 10000;
  options.retry_after_ms = 5;
  options.adaptive_deadlines = true;
  options.adaptive_min_samples = 8;
  options.adaptive_max_ms = 2000;
  options.evict_oldest = true;
  options.fair_admission = true;
  options.tenant_rate = 20.0;  // admissions/sec/tenant
  options.tenant_burst = 2.0;
  core::ProvisioningFrontend frontend(&host, &qe, MakePolicies, options);

  enum class Kind { kSteady, kBursty, kLoris };
  struct Slot {
    Kind kind = Kind::kSteady;
    const Bytes* image = nullptr;
    const char* tenant = "";
    int steady_rank = -1;
    std::unique_ptr<crypto::DuplexPipe> pipe;
    std::unique_ptr<client::Client> client;
    uint64_t conn_id = 0;
    bool accepted = false, connected = false, done = false;
    size_t sheds = 0;
    Clock::time_point start_at, retry_at, verdict_at;
    Fingerprint fp;
    bool got_verdict = false;
  };
  std::vector<Slot> slots;
  const Clock::time_point start = Clock::now();
  // Vector order is service order within one sweep: loris first so they
  // grab the budget at t=0, the way a real attack lands ahead of the
  // legitimate load.
  if (hostile) {
    for (size_t i = 0; i < kLorisCount; ++i) {
      Slot s;
      s.kind = Kind::kLoris;
      s.image = &hostile_image;
      s.tenant = "loris.example";
      s.start_at = start + std::chrono::milliseconds(20 * i);
      slots.push_back(std::move(s));
    }
    for (size_t b = 0; b < kBursts; ++b) {
      for (size_t i = 0; i < kBurstSize; ++i) {
        Slot s;
        s.kind = Kind::kBursty;
        s.image = &hostile_image;
        s.tenant = "bursty.example";
        s.start_at = start + std::chrono::milliseconds(150 * b);
        slots.push_back(std::move(s));
      }
    }
  }
  for (size_t i = 0; i < steady_images.size(); ++i) {
    Slot s;
    s.kind = Kind::kSteady;
    s.image = &steady_images[i];
    s.tenant = "steady.example";
    s.steady_rank = static_cast<int>(i);
    s.start_at = start;
    slots.push_back(std::move(s));
  }

  HostileMixStats stats;
  int done_steady = 0;
  const auto all_done = [&slots] {
    for (const Slot& s : slots) {
      if (!s.done) return false;
    }
    return true;
  };
  const auto give_up_or_back_off = [&stats](Slot& s, uint64_t backoff_ms,
                                            Clock::time_point now) {
    ++s.sheds;
    if (s.kind == Kind::kBursty && s.sheds >= 3) {
      s.done = true;
      ++stats.bursty_abandoned;
      return;
    }
    s.accepted = false;
    s.connected = false;
    s.retry_at = now + std::chrono::milliseconds(backoff_ms);
  };
  while (!all_done()) {
    if (Clock::now() - start > std::chrono::seconds(60)) {
      return InternalError("hostile mix did not converge within 60s");
    }
    const Clock::time_point now = Clock::now();
    for (Slot& s : slots) {
      if (s.done) continue;
      if (!s.accepted) {
        if (now < s.start_at || now < s.retry_at) continue;
        if (s.steady_rank > done_steady) continue;  // steady is sequential
        s.pipe = std::make_unique<crypto::DuplexPipe>();
        auto inner = std::make_unique<net::PipeTransport>(s.pipe->EndA());
        inner->set_peer(s.tenant);
        std::unique_ptr<net::Transport> wire = std::move(inner);
        if (s.kind == Kind::kLoris) {
          net::FaultPlan plan;
          plan.stall_inbound_after = 8;  // half the trickle, then silence
          wire = std::make_unique<net::FaultInjectingTransport>(
              std::move(wire), plan);
        }
        ASSIGN_OR_RETURN(s.conn_id, frontend.Accept(std::move(wire)));
        s.accepted = true;
        if (s.kind == Kind::kLoris) {
          // A plausible header promising a 1 KiB frame that never arrives:
          // the session waits on the remainder until a deadline fires.
          const Bytes trickle = {0x00, 0x04, 0x00, 0x00, 'l', 'o', 'r', 'i',
                                 's',  'l',  'o',  'r',  'i', 's', '!', '!'};
          s.pipe->EndB().Write(ByteView(trickle));
        } else {
          s.client = std::make_unique<client::Client>(ClientOptionsFor(qe),
                                                      *s.image);
        }
        continue;  // give the reactor a sweep before reading the decision
      }
      const core::ConnectionState state = frontend.state(s.conn_id);
      if (s.kind == Kind::kLoris) {
        if (state == core::ConnectionState::kTimedOut ||
            state == core::ConnectionState::kShed ||
            state == core::ConnectionState::kFailed ||
            state == core::ConnectionState::kReaped) {
          s.done = true;
        }
        continue;
      }
      if (!s.connected) {
        if (net::HasCompleteFrames(s.pipe->EndB(), 1)) {
          ASSIGN_OR_RETURN(const auto retry,
                           s.client->AwaitAdmission(s.pipe->EndB()));
          if (retry.has_value()) {
            give_up_or_back_off(s, client::RetryBackoffMs(*retry, s.sheds + 1),
                                now);
            continue;
          }
          RETURN_IF_ERROR(s.client->SendProgram(s.pipe->EndB()));
          s.connected = true;
          continue;
        }
        if (state == core::ConnectionState::kTimedOut ||
            state == core::ConnectionState::kFailed ||
            state == core::ConnectionState::kReaped) {
          // Expired in the queue without a readable decision frame: back off
          // blind and reconnect.
          give_up_or_back_off(
              s, uint64_t{5} << std::min<size_t>(s.sheds + 1, 6), now);
        }
        continue;
      }
      if (state == core::ConnectionState::kDone) {
        ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                         frontend.TakeOutcome(s.conn_id));
        s.fp = Fp(outcome.verdict.compliant, frontend.accountant(s.conn_id));
        s.got_verdict = true;
        s.verdict_at = Clock::now();
        s.done = true;
        if (s.kind == Kind::kSteady) {
          ++done_steady;
        } else {
          ++stats.bursty_done;
        }
        continue;
      }
      if (state == core::ConnectionState::kTimedOut ||
          state == core::ConnectionState::kFailed) {
        // Killed mid-session (a deadline the adaptive controller tightened,
        // or overload): reconnect from scratch like a production client.
        give_up_or_back_off(s, 20, now);
      }
    }
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    if (progress == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Quiesce: every client pipe is still alive in `slots`, so the reaper can
  // flush shed tails and retire every slot before the pipes go away.
  for (int i = 0; i < 2000 && frontend.connection_count() != 0; ++i) {
    RETURN_IF_ERROR(frontend.DrainAll());
    if (frontend.connection_count() != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stats.metrics = frontend.metrics();
  // The retention gates: every slot, queue entry and EPC page must be gone.
  if (frontend.connection_count() != 0 ||
      stats.metrics.live_connections != 0) {
    return InternalError("hostile mix left live connections");
  }
  if (frontend.queued_count() != 0 || stats.metrics.queue_depth != 0) {
    return InternalError("hostile mix left queue entries");
  }
  if (device.EnclaveCount() != 0 || device.epc().pages_in_use() != 0) {
    return InternalError(
        "hostile mix retained EPC pages after teardown: enclaves=" +
        std::to_string(device.EnclaveCount()) +
        " pages=" + std::to_string(device.epc().pages_in_use()) +
        " done=" + std::to_string(stats.metrics.done) +
        " timed_out=" + std::to_string(stats.metrics.timed_out) +
        " failed=" + std::to_string(stats.metrics.failed) +
        " shed=" + std::to_string(stats.metrics.shed) +
        " reaped=" + std::to_string(stats.metrics.reaped));
  }
  if (stats.metrics.committed_pages != 0 ||
      stats.metrics.budget_underflows != 0) {
    return InternalError("hostile mix left the budget unbalanced");
  }
  uint64_t last_verdict_ns = 0;
  for (const Slot& s : slots) {
    if (s.kind != Kind::kSteady) continue;
    if (!s.got_verdict) {
      return InternalError("steady session ended without a verdict");
    }
    stats.steady_fps.push_back(s.fp);
    last_verdict_ns = std::max(last_verdict_ns, ElapsedNs(start, s.verdict_at));
  }
  stats.steady_wall_ns = last_verdict_ns;
  return stats;
}

bool FingerprintLess(const Fingerprint& a, const Fingerprint& b) {
  return std::tie(a.compliant, a.idle_sgx, a.channel_sgx, a.disassembly_sgx,
                  a.policy_sgx, a.loading_sgx, a.total_sgx) <
         std::tie(b.compliant, b.idle_sgx, b.channel_sgx, b.disassembly_sgx,
                  b.policy_sgx, b.loading_sgx, b.total_sgx);
}

}  // namespace

int main(int argc, char** argv) {
  size_t rsa_bits = 512;
  size_t target_instructions = 2500;
  std::string out_path = "BENCH_frontend.json";
  bool oversub_only = false;  // skip to the oversubscription sweep (iteration)
  bool smoke = false;  // CI: reduced levels, no reupload/scaling/oversub
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rsa-bits") == 0 && i + 1 < argc) {
      rsa_bits = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--insns") == 0 && i + 1 < argc) {
      target_instructions = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--oversub-only") == 0) {
      oversub_only = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_frontend [--rsa-bits N] [--insns N] "
                   "[--out PATH] [--oversub-only] [--smoke]\n");
      return 2;
    }
  }

  auto qe = sgx::QuotingEnclave::Provision(ToBytes("bench-frontend"),
                                           rsa_bits);
  if (!qe.ok()) {
    std::fprintf(stderr, "quoting enclave: %s\n",
                 qe.status().ToString().c_str());
    return 1;
  }
  // The serial reference and the cold/warm baselines run the staged
  // pipeline; the streaming rows are gated against that same reference.
  const core::EngardeOptions opts = EnclaveOptions(rsa_bits, false);
  const core::EngardeOptions streaming_opts = EnclaveOptions(rsa_bits, true);

  // A small mixed population: even programs carry stack protectors
  // (compliant), odd ones violate. Client i uses program i % kPrograms.
  constexpr size_t kPrograms = 8;
  std::vector<Bytes> library;
  for (size_t i = 0; i < kPrograms; ++i) {
    workload::ProgramSpec spec;
    spec.name = "bench-frontend-" + std::to_string(i);
    spec.seed = 5200 + i;
    spec.target_instructions = target_instructions;
    spec.stack_protection = (i % 2 == 0);
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) {
      std::fprintf(stderr, "program %zu: %s\n", i,
                   program.status().ToString().c_str());
      return 1;
    }
    library.push_back(program->image);
  }

  const std::vector<size_t> levels =
      oversub_only ? std::vector<size_t>{}
      : smoke      ? std::vector<size_t>{1, 4}
                   : std::vector<size_t>{1, 8, 64, 256};

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"rsa_bits\": %zu,\n", rsa_bits);
  std::fprintf(f, "  \"target_instructions\": %zu,\n", target_instructions);
  std::fprintf(f, "  \"equality_gate\": \"per-client verdict and per-phase "
                  "SGX instructions vs serial ProvisioningServer::Drive\",\n");
  std::fprintf(f, "  \"levels\": [");

  bool first_level = true;
  for (const size_t n : levels) {
    std::vector<Bytes> images;
    for (size_t i = 0; i < n; ++i) images.push_back(library[i % kPrograms]);

    auto serial = RunSerial(*qe, images, opts);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial %zu: %s\n", n,
                   serial.status().ToString().c_str());
      return 1;
    }
    auto cold = RunFrontend(*qe, images, opts, /*warm=*/false);
    if (!cold.ok()) {
      std::fprintf(stderr, "cold %zu: %s\n", n,
                   cold.status().ToString().c_str());
      return 1;
    }
    auto streaming = RunFrontend(*qe, images, streaming_opts, /*warm=*/false);
    if (!streaming.ok()) {
      std::fprintf(stderr, "streaming %zu: %s\n", n,
                   streaming.status().ToString().c_str());
      return 1;
    }
    auto warm = RunFrontend(*qe, images, opts, /*warm=*/true);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm %zu: %s\n", n,
                   warm.status().ToString().c_str());
      return 1;
    }

    // The gate: throughput numbers from a reactor that changed any verdict
    // or any per-phase SGX count would be meaningless. Streaming rows gate
    // against the same staged serial reference.
    for (size_t i = 0; i < n; ++i) {
      if (!(cold->fingerprints[i] == (*serial)[i]) ||
          !(streaming->fingerprints[i] == (*serial)[i]) ||
          !(warm->fingerprints[i] == (*serial)[i])) {
        std::fprintf(stderr,
                     "equality gate failed at %zu clients, client %zu\n", n,
                     i);
        return 1;
      }
    }

    struct ModeRow {
      const char* mode;
      const RunStats* stats;
    };
    for (const ModeRow row : {ModeRow{"cold", &*cold},
                              ModeRow{"cold-streaming", &*streaming},
                              ModeRow{"warm", &*warm}}) {
      const double sec = static_cast<double>(row.stats->wall_ns) / 1e9;
      const double rate = sec > 0 ? static_cast<double>(n) / sec : 0.0;
      const uint64_t p50 = Percentile(row.stats->latency_ns, 50);
      const uint64_t p99 = Percentile(row.stats->latency_ns, 99);
      const core::FrontendMetrics& metrics = row.stats->metrics;
      const uint64_t overlap_mean =
          metrics.decode_overlap_count > 0
              ? metrics.decode_overlap_sum_permille /
                    metrics.decode_overlap_count
              : 0;
      std::printf(
          "%3zu clients %-14s  %8.2f sess/s  p50 %8.2f ms  p99 %8.2f ms"
          "%s%s\n",
          n, row.mode, rate, static_cast<double>(p50) / 1e6,
          static_cast<double>(p99) / 1e6,
          row.stats->prefill_ns > 0 ? "  (pool prebuilt)" : "",
          metrics.decode_overlap_count > 0
              ? ("  overlap " + std::to_string(overlap_mean) + "\xE2\x80\xB0")
                    .c_str()
              : "");
      std::fprintf(f, "%s\n    {\"clients\": %zu, \"mode\": \"%s\", ",
                   first_level ? "" : ",", n, row.mode);
      first_level = false;
      std::fprintf(f, "\"wall_ns\": %llu, \"sessions_per_sec\": %.3f, ",
                   static_cast<unsigned long long>(row.stats->wall_ns), rate);
      std::fprintf(f, "\"p50_verdict_ns\": %llu, \"p99_verdict_ns\": %llu, ",
                   static_cast<unsigned long long>(p50),
                   static_cast<unsigned long long>(p99));
      std::fprintf(f, "\"prefill_ns\": %llu, ",
                   static_cast<unsigned long long>(row.stats->prefill_ns));
      std::fprintf(
          f,
          "\"decode_overlap_count\": %llu, "
          "\"decode_overlap_mean_permille\": %llu, "
          "\"decode_overlap_max_permille\": %llu, ",
          static_cast<unsigned long long>(metrics.decode_overlap_count),
          static_cast<unsigned long long>(overlap_mean),
          static_cast<unsigned long long>(
              metrics.decode_overlap_max_permille));
      std::fprintf(
          f,
          "\"reaped\": %llu, \"timed_out\": %llu, \"peak_live\": %llu, "
          "\"live_after_reap\": %llu, \"max_committed_pages\": %llu, "
          "\"equality\": \"ok\"}",
          static_cast<unsigned long long>(metrics.reaped),
          static_cast<unsigned long long>(metrics.timed_out),
          static_cast<unsigned long long>(metrics.peak_live_connections),
          static_cast<unsigned long long>(metrics.live_connections),
          static_cast<unsigned long long>(metrics.max_committed_pages));
    }
  }
  std::fprintf(f, "\n  ],\n");

  // ---- Hostile-mix sweep (runs in --smoke: this is the CI overload gate) ---
  std::fprintf(f, "  \"hostile_mix\": {\n");
  std::fprintf(f,
               "    \"mix\": \"steady tenant (8 sequential sessions) vs 2x4 "
               "bursty floods vs 3 slow-loris stalls, adaptive deadlines + "
               "oldest-eviction + fair admission + 20/s token bucket\",\n");
  std::fprintf(f,
               "    \"gate\": \"steady fingerprints vs serial; steady goodput "
               "within %.0fx of the solo baseline; eviction, deferral and "
               "timeout all exercised; zero retained connections, queue "
               "entries and EPC pages\",\n",
               kHostileGoodputFactor);
  std::fprintf(f, "    \"rows\": [");
  bool hostile_gate_failed = false;
  if (!oversub_only) {
    constexpr size_t kSteadySessions = 8;
    std::vector<Bytes> steady_images;
    for (size_t i = 0; i < kSteadySessions; ++i) {
      steady_images.push_back(library[i % kPrograms]);
    }
    auto serial = RunSerial(*qe, steady_images, opts);
    if (!serial.ok()) {
      std::fprintf(stderr, "hostile serial: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    auto baseline =
        RunHostileMix(*qe, steady_images, library[0], opts, /*hostile=*/false);
    if (!baseline.ok()) {
      std::fprintf(stderr, "hostile baseline: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    auto mix =
        RunHostileMix(*qe, steady_images, library[0], opts, /*hostile=*/true);
    if (!mix.ok()) {
      std::fprintf(stderr, "hostile mix: %s\n",
                   mix.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < kSteadySessions; ++i) {
      if (!(baseline->steady_fps[i] == (*serial)[i]) ||
          !(mix->steady_fps[i] == (*serial)[i])) {
        std::fprintf(stderr,
                     "hostile equality gate failed at steady client %zu\n", i);
        return 1;
      }
    }
    const auto steady_rate = [kSteadySessions](const HostileMixStats& s) {
      const double sec = static_cast<double>(s.steady_wall_ns) / 1e9;
      return sec > 0 ? static_cast<double>(kSteadySessions) / sec : 0.0;
    };
    const double baseline_rate = steady_rate(*baseline);
    const double mix_rate = steady_rate(*mix);
    const core::FrontendMetrics& hm = mix->metrics;
    std::printf(
        "hostile mix  steady %8.2f sess/s (solo %8.2f)  evicted %llu  "
        "deferred %llu  timed_out %llu  tenants %llu\n",
        mix_rate, baseline_rate,
        static_cast<unsigned long long>(hm.evicted_oldest),
        static_cast<unsigned long long>(hm.rate_limit_deferrals),
        static_cast<unsigned long long>(hm.timed_out),
        static_cast<unsigned long long>(hm.tenants_seen));
    // The goodput gate (deferred to exit so the JSON stays complete): the
    // steady tenant must not starve behind the flood and the stalls.
    if (mix_rate * kHostileGoodputFactor < baseline_rate) {
      std::fprintf(stderr,
                   "hostile gate: steady %.2f sess/s under attack is worse "
                   "than 1/%.0f of the solo %.2f sess/s\n",
                   mix_rate, kHostileGoodputFactor, baseline_rate);
      hostile_gate_failed = true;
    }
    // The machinery gates: a mix that never evicted, never deferred and never
    // timed anything out did not actually exercise the overload paths.
    if (hm.evicted_oldest < 1 || hm.rate_limit_deferrals < 1 ||
        hm.timed_out < 1 || hm.tenants_seen != 3 ||
        hm.deadline_recomputes < 1) {
      std::fprintf(stderr,
                   "hostile gate: overload machinery idle (evicted %llu, "
                   "deferred %llu, timed_out %llu, tenants %llu, recomputes "
                   "%llu)\n",
                   static_cast<unsigned long long>(hm.evicted_oldest),
                   static_cast<unsigned long long>(hm.rate_limit_deferrals),
                   static_cast<unsigned long long>(hm.timed_out),
                   static_cast<unsigned long long>(hm.tenants_seen),
                   static_cast<unsigned long long>(hm.deadline_recomputes));
      hostile_gate_failed = true;
    }
    struct HostileRow {
      const char* mode;
      const HostileMixStats* stats;
      double rate;
    };
    bool first_hostile = true;
    for (const HostileRow row :
         {HostileRow{"steady-solo", &*baseline, baseline_rate},
          HostileRow{"hostile-mix", &*mix, mix_rate}}) {
      const core::FrontendMetrics& m = row.stats->metrics;
      std::fprintf(
          f,
          "%s\n      {\"mode\": \"%s\", \"steady_wall_ns\": %llu, "
          "\"steady_sessions_per_sec\": %.3f, \"bursty_done\": %zu, "
          "\"bursty_abandoned\": %zu, \"evicted_oldest\": %llu, "
          "\"rate_limit_deferrals\": %llu, \"timed_out\": %llu, "
          "\"shed\": %llu, \"tenants_seen\": %llu, "
          "\"deadline_recomputes\": %llu, "
          "\"effective_session_deadline_ms\": %llu, "
          "\"effective_idle_deadline_ms\": %llu, "
          "\"effective_queue_deadline_ms\": %llu, "
          "\"effective_retry_after_ms\": %llu, "
          "\"leak_gate\": \"ok\", \"equality\": \"ok\"}",
          first_hostile ? "" : ",", row.mode,
          static_cast<unsigned long long>(row.stats->steady_wall_ns),
          row.rate, row.stats->bursty_done, row.stats->bursty_abandoned,
          static_cast<unsigned long long>(m.evicted_oldest),
          static_cast<unsigned long long>(m.rate_limit_deferrals),
          static_cast<unsigned long long>(m.timed_out),
          static_cast<unsigned long long>(m.shed),
          static_cast<unsigned long long>(m.tenants_seen),
          static_cast<unsigned long long>(m.deadline_recomputes),
          static_cast<unsigned long long>(m.effective_session_deadline_ms),
          static_cast<unsigned long long>(m.effective_idle_deadline_ms),
          static_cast<unsigned long long>(m.effective_queue_deadline_ms),
          static_cast<unsigned long long>(m.effective_retry_after_ms));
      first_hostile = false;
    }
  }
  std::fprintf(f, "\n    ]\n  },\n");

  // ---- Verdict-cache re-upload sweep ---------------------------------------
  // Cold vs warm-cache at a fixed client count: warm runs provision through
  // cold-built enclaves (no warm pool — the two caches compose but would
  // blur attribution) sharing one sealed verdict cache seeded with the
  // original client mix. Median-of-reps throughput, interleaved so both
  // modes see the same noise windows; fingerprints gate every repetition.
  constexpr size_t kReuploadClients = 16;
  constexpr size_t kReuploadReps = 3;
  // The re-upload clients carry 10x-larger programs than the base mix: at
  // 2.5k instructions inspection is a sliver of the session (enclave build
  // and RSA keygen dominate), so the work a cache hit skips sits inside
  // scheduler noise. Re-uploaded production binaries are exactly the large
  // ones, so the sweep sizes its programs to make inspection the majority
  // of the session it is in practice.
  const size_t reupload_insns = target_instructions * 10;
  std::fprintf(f, "  \"reupload\": {\n");
  std::fprintf(f, "    \"clients\": %zu,\n", kReuploadClients);
  std::fprintf(f, "    \"reps\": %zu,\n", kReuploadReps);
  std::fprintf(f, "    \"target_instructions\": %zu,\n", reupload_insns);
  std::fprintf(f,
               "    \"warm\": \"verdict cache seeded with the original mix, "
               "fresh per repetition; no warm enclave pool\",\n");
  std::fprintf(f,
               "    \"gate\": \"serial fingerprints on every repetition; "
               "0%%-changed warm beats cold sessions/sec\",\n");
  std::fprintf(f, "    \"rows\": [");
  bool reupload_gate_failed = false;
  if (!oversub_only && !smoke) {
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() / "engarde-evc-bench-frontend")
            .string();
    std::vector<Bytes> reupload_library;
    for (size_t i = 0; i < kPrograms; ++i) {
      workload::ProgramSpec spec;
      spec.name = "bench-reupload-" + std::to_string(i);
      spec.seed = 5300 + i;
      spec.target_instructions = reupload_insns;
      spec.stack_protection = (i % 2 == 0);
      auto program = workload::BuildProgram(spec);
      if (!program.ok()) {
        std::fprintf(stderr, "reupload program %zu: %s\n", i,
                     program.status().ToString().c_str());
        return 1;
      }
      reupload_library.push_back(program->image);
    }
    std::vector<Bytes> original_images;
    for (size_t i = 0; i < kReuploadClients; ++i) {
      original_images.push_back(reupload_library[i % kPrograms]);
    }
    bool first_reupload = true;
    double reupload_cold0_rate = 0.0;
    for (const size_t pct : {size_t{0}, size_t{10}, size_t{100}}) {
      std::vector<Bytes> mutated_library = reupload_library;
      size_t changed_per_program = 0;
      if (pct > 0) {
        for (size_t j = 0; j < kPrograms; ++j) {
          auto total = workload::CountMutableFunctions(
              mutated_library[j], /*library_functions=*/false);
          if (!total.ok() || *total == 0) {
            std::fprintf(stderr, "reupload: no mutable functions in %zu\n", j);
            return 1;
          }
          workload::MutationOptions mutation;
          mutation.count = std::max<size_t>(1, *total * pct / 100);
          changed_per_program = mutation.count;
          auto names = workload::MutateFunctions(mutated_library[j], mutation);
          if (!names.ok()) {
            std::fprintf(stderr, "reupload %zu%%: %s\n", pct,
                         names.status().ToString().c_str());
            return 1;
          }
        }
      }
      std::vector<Bytes> reupload_images;
      for (size_t i = 0; i < kReuploadClients; ++i) {
        reupload_images.push_back(mutated_library[i % kPrograms]);
      }
      auto serial = RunSerial(*qe, reupload_images, opts);
      if (!serial.ok()) {
        std::fprintf(stderr, "reupload serial %zu%%: %s\n", pct,
                     serial.status().ToString().c_str());
        return 1;
      }

      std::vector<RunStats> cold_samples, warm_samples;
      uint64_t warm_hits = 0, warm_partial = 0, warm_misses = 0;
      for (size_t rep = 0; rep < kReuploadReps; ++rep) {
        auto cold = RunFrontend(*qe, reupload_images, opts, /*warm=*/false);
        if (!cold.ok()) {
          std::fprintf(stderr, "reupload cold %zu%%: %s\n", pct,
                       cold.status().ToString().c_str());
          return 1;
        }
        std::error_code ec;
        std::filesystem::remove_all(cache_dir, ec);
        core::VerdictCacheOptions cache_options;
        cache_options.directory = cache_dir;
        auto cache = core::VerdictCache::Create(std::move(cache_options),
                                                MakePolicies(), opts.layout);
        if (!cache.ok()) {
          std::fprintf(stderr, "reupload cache: %s\n",
                       cache.status().ToString().c_str());
          return 1;
        }
        core::EngardeOptions cache_opts = opts;
        cache_opts.verdict_cache = *cache;
        auto seeding =
            RunFrontend(*qe, original_images, cache_opts, /*warm=*/false);
        if (!seeding.ok()) {
          std::fprintf(stderr, "reupload seed %zu%%: %s\n", pct,
                       seeding.status().ToString().c_str());
          return 1;
        }
        const core::VerdictCacheStats seeded = (*cache)->stats();
        auto warm =
            RunFrontend(*qe, reupload_images, cache_opts, /*warm=*/false);
        if (!warm.ok()) {
          std::fprintf(stderr, "reupload warm %zu%%: %s\n", pct,
                       warm.status().ToString().c_str());
          return 1;
        }
        const core::VerdictCacheStats after = (*cache)->stats();
        warm_hits = after.hits - seeded.hits;
        warm_partial = after.partial_hits - seeded.partial_hits;
        warm_misses = after.misses - seeded.misses;
        if (pct == 0 && warm_hits != kReuploadClients) {
          std::fprintf(stderr,
                       "reupload 0%%: expected %zu full hits, got %llu\n",
                       kReuploadClients,
                       static_cast<unsigned long long>(warm_hits));
          return 1;
        }
        for (size_t i = 0; i < kReuploadClients; ++i) {
          if (!(cold->fingerprints[i] == (*serial)[i]) ||
              !(warm->fingerprints[i] == (*serial)[i])) {
            std::fprintf(stderr,
                         "reupload equality gate failed at %zu%%, client "
                         "%zu\n",
                         pct, i);
            return 1;
          }
        }
        cold_samples.push_back(std::move(*cold));
        warm_samples.push_back(std::move(*warm));
      }

      const auto median_by_wall = [](std::vector<RunStats>& samples) {
        std::sort(samples.begin(), samples.end(),
                  [](const RunStats& a, const RunStats& b) {
                    return a.wall_ns < b.wall_ns;
                  });
        return &samples[samples.size() / 2];
      };
      struct ReuploadMode {
        const char* mode;
        const RunStats* stats;
      };
      const RunStats* cold_median = median_by_wall(cold_samples);
      const RunStats* warm_median = median_by_wall(warm_samples);
      double cold_rate = 0.0;
      for (const ReuploadMode row : {ReuploadMode{"cold", cold_median},
                                     ReuploadMode{"warm-cache", warm_median}}) {
        const double sec = static_cast<double>(row.stats->wall_ns) / 1e9;
        const double rate =
            sec > 0 ? static_cast<double>(kReuploadClients) / sec : 0.0;
        if (row.stats == cold_median) cold_rate = rate;
        if (pct == 0 && row.stats == cold_median) reupload_cold0_rate = rate;
        const uint64_t p50 = Percentile(row.stats->latency_ns, 50);
        const uint64_t p99 = Percentile(row.stats->latency_ns, 99);
        std::printf(
            "%3zu clients reupload %3zu%% %-10s  %8.2f sess/s  p50 %8.2f ms"
            "  p99 %8.2f ms\n",
            kReuploadClients, pct, row.mode, rate,
            static_cast<double>(p50) / 1e6, static_cast<double>(p99) / 1e6);
        std::fprintf(f,
                     "%s\n      {\"changed_pct\": %zu, \"mode\": \"%s\", "
                     "\"changed_functions_per_program\": %zu, "
                     "\"wall_ns\": %llu, \"sessions_per_sec\": %.3f, "
                     "\"p50_verdict_ns\": %llu, \"p99_verdict_ns\": %llu, ",
                     first_reupload ? "" : ",", pct, row.mode,
                     changed_per_program,
                     static_cast<unsigned long long>(row.stats->wall_ns),
                     rate, static_cast<unsigned long long>(p50),
                     static_cast<unsigned long long>(p99));
        first_reupload = false;
        if (row.stats == warm_median) {
          std::fprintf(
              f,
              "\"cache_hits\": %llu, \"cache_partial_hits\": %llu, "
              "\"cache_misses\": %llu, \"speedup_vs_cold\": %.3f, ",
              static_cast<unsigned long long>(warm_hits),
              static_cast<unsigned long long>(warm_partial),
              static_cast<unsigned long long>(warm_misses),
              cold_rate > 0 ? rate / cold_rate : 0.0);
        }
        std::fprintf(f, "\"equality\": \"ok\"}");
      }
      // The CI gate: byte-identical re-uploads through a warm cache must
      // out-provision cold inspection. The verdict is deferred to process
      // exit so a gate miss still leaves a complete, parseable JSON.
      if (pct == 0) {
        const double warm_sec =
            static_cast<double>(warm_median->wall_ns) / 1e9;
        const double warm_rate =
            warm_sec > 0 ? static_cast<double>(kReuploadClients) / warm_sec
                         : 0.0;
        if (warm_rate <= reupload_cold0_rate) {
          std::fprintf(stderr,
                       "reupload gate: 0%%-changed warm-cache %.2f sess/s "
                       "does not beat cold %.2f sess/s\n",
                       warm_rate, reupload_cold0_rate);
          reupload_gate_failed = true;
        }
      }
    }
  }
  std::fprintf(f, "\n    ]\n  },\n");

  // ---- Fleet sweep: one group connection vs N independent sessions --------
  // Every catalog topology deploys twice per repetition — as one co-admitted
  // group and as N independent warm-pool sessions — with the verdict cache
  // off and on (fresh sealed store per run, never shared between the two
  // modes). Per-member fingerprints gate against a no-cache serial reference
  // on every repetition; the cache-on rows gate against the SAME reference
  // because cache replay reproduces per-phase SGX accounting bit-for-bit
  // (core/inspection.cc, ReplayCachedVerdict). The amortization gate —
  // replica-set group medians must beat N independent sessions, cache off
  // and on — is deferred to process exit so a miss still leaves complete
  // JSON.
  const double fleet_scale = 0.05;
  const size_t fleet_reps = smoke ? 1 : 3;
  std::fprintf(f, "  \"fleet\": {\n");
  std::fprintf(f, "    \"scale\": %.2f,\n", fleet_scale);
  std::fprintf(f, "    \"reps\": %zu,\n", fleet_reps);
  std::fprintf(f,
               "    \"contrast\": \"one group connection vs N independent "
               "sessions, both against a pool prebuilt outside the timed "
               "window\",\n");
  std::fprintf(f,
               "    \"gate\": \"per-member fingerprints vs a no-cache serial "
               "reference on every repetition; replica-set group medians "
               "beat independent, cache off and on\",\n");
  std::fprintf(f, "    \"rows\": [");
  bool fleet_gate_failed = false;
  bool first_fleet = true;
  if (!oversub_only) {
    const std::string fleet_cache_dir =
        (std::filesystem::temp_directory_path() / "engarde-evc-bench-fleet")
            .string();
    // Fresh sealed store per run: remove the directory, then hand the run
    // its own cache so group and independent modes never warm each other.
    const auto fresh_cache =
        [&](core::EngardeOptions& run_opts) -> Status {
      std::error_code ec;
      std::filesystem::remove_all(fleet_cache_dir, ec);
      core::VerdictCacheOptions cache_options;
      cache_options.directory = fleet_cache_dir;
      ASSIGN_OR_RETURN(run_opts.verdict_cache,
                       core::VerdictCache::Create(std::move(cache_options),
                                                  MakePolicies(),
                                                  opts.layout));
      return Status::Ok();
    };
    for (const workload::GroupTopology& topology :
         workload::GroupTopologies()) {
      if (smoke && std::strcmp(topology.name, "replica-set-memcached-2") != 0 &&
          std::strcmp(topology.name, "pipeline-web") != 0) {
        continue;
      }
      auto members = workload::BuildGroup(topology, fleet_scale);
      if (!members.ok()) {
        std::fprintf(stderr, "fleet %s: %s\n", topology.name,
                     members.status().ToString().c_str());
        return 1;
      }
      std::vector<Bytes> images;
      for (const workload::BuiltProgram& built : *members) {
        images.push_back(built.image);
      }
      auto serial = RunSerial(*qe, images, opts);
      if (!serial.ok()) {
        std::fprintf(stderr, "fleet serial %s: %s\n", topology.name,
                     serial.status().ToString().c_str());
        return 1;
      }
      const bool replica_set =
          topology.slots.size() == 1 && topology.slots.front().replicas > 1;
      for (const bool cache_on : {false, true}) {
        std::vector<FleetStats> group_samples;
        std::vector<RunStats> solo_samples;
        for (size_t rep = 0; rep < fleet_reps; ++rep) {
          core::EngardeOptions group_opts = opts;
          if (cache_on) {
            const Status cached = fresh_cache(group_opts);
            if (!cached.ok()) {
              std::fprintf(stderr, "fleet cache: %s\n",
                           cached.ToString().c_str());
              return 1;
            }
          }
          auto group = RunFleetGroup(*qe, images, group_opts);
          if (!group.ok()) {
            std::fprintf(stderr, "fleet group %s rep %zu: %s\n",
                         topology.name, rep,
                         group.status().ToString().c_str());
            return 1;
          }
          if (group->rejected) {
            std::fprintf(stderr, "fleet %s: group rejected by mutual verify\n",
                         topology.name);
            return 1;
          }
          core::EngardeOptions solo_opts = opts;
          if (cache_on) {
            const Status cached = fresh_cache(solo_opts);
            if (!cached.ok()) {
              std::fprintf(stderr, "fleet cache: %s\n",
                           cached.ToString().c_str());
              return 1;
            }
          }
          auto solo = RunFrontend(*qe, images, solo_opts, /*warm=*/true);
          if (!solo.ok()) {
            std::fprintf(stderr, "fleet independent %s rep %zu: %s\n",
                         topology.name, rep,
                         solo.status().ToString().c_str());
            return 1;
          }
          for (size_t i = 0; i < images.size(); ++i) {
            if (!(group->fingerprints[i] == (*serial)[i]) ||
                !(solo->fingerprints[i] == (*serial)[i])) {
              std::fprintf(stderr,
                           "fleet equality gate failed: %s cache=%d rep %zu "
                           "member %zu\n",
                           topology.name, cache_on ? 1 : 0, rep, i);
              return 1;
            }
          }
          group_samples.push_back(std::move(*group));
          solo_samples.push_back(std::move(*solo));
        }
        std::sort(group_samples.begin(), group_samples.end(),
                  [](const FleetStats& a, const FleetStats& b) {
                    return a.wall_ns < b.wall_ns;
                  });
        std::sort(solo_samples.begin(), solo_samples.end(),
                  [](const RunStats& a, const RunStats& b) {
                    return a.wall_ns < b.wall_ns;
                  });
        const FleetStats& group_median =
            group_samples[group_samples.size() / 2];
        const RunStats& solo_median = solo_samples[solo_samples.size() / 2];
        const double speedup =
            group_median.wall_ns > 0
                ? static_cast<double>(solo_median.wall_ns) /
                      static_cast<double>(group_median.wall_ns)
                : 0.0;
        std::printf(
            "fleet %-26s n=%zu cache=%-3s  group %8.2f ms  independent "
            "%8.2f ms  speedup %.2fx\n",
            topology.name, images.size(), cache_on ? "on" : "off",
            static_cast<double>(group_median.wall_ns) / 1e6,
            static_cast<double>(solo_median.wall_ns) / 1e6, speedup);
        if (replica_set && group_median.wall_ns >= solo_median.wall_ns) {
          std::fprintf(stderr,
                       "fleet gate: %s cache=%s group %.2f ms does not beat "
                       "%zu independent sessions' %.2f ms\n",
                       topology.name, cache_on ? "on" : "off",
                       static_cast<double>(group_median.wall_ns) / 1e6,
                       images.size(),
                       static_cast<double>(solo_median.wall_ns) / 1e6);
          fleet_gate_failed = true;
        }
        const core::FrontendMetrics& gm = group_median.metrics;
        std::fprintf(
            f,
            "%s\n      {\"topology\": \"%s\", \"members\": %zu, "
            "\"replica_set\": %s, \"cache\": \"%s\", "
            "\"group_wall_ns\": %llu, \"independent_wall_ns\": %llu, "
            "\"speedup\": %.3f, \"groups_admitted\": %llu, "
            "\"group_members_admitted\": %llu, \"admitted_warm\": %llu, "
            "\"equality\": \"ok\"}",
            first_fleet ? "" : ",", topology.name, images.size(),
            replica_set ? "true" : "false", cache_on ? "on" : "off",
            static_cast<unsigned long long>(group_median.wall_ns),
            static_cast<unsigned long long>(solo_median.wall_ns), speedup,
            static_cast<unsigned long long>(gm.groups_admitted),
            static_cast<unsigned long long>(gm.group_members_admitted),
            static_cast<unsigned long long>(gm.admitted_warm));
        first_fleet = false;
      }
    }
  }
  std::fprintf(f, "\n    ]\n  },\n");

  // ---- Reactor scaling: one shared listener, N reactor threads, real TCP —
  // same client mix at every width, equality-gated as a sorted multiset
  // because the client->reactor assignment is a kernel accept race.
  constexpr size_t kScalingClients = 32;
  std::vector<Bytes> scaling_images;
  std::vector<Fingerprint> scaling_serial;
  if (!oversub_only && !smoke) {
    for (size_t i = 0; i < kScalingClients; ++i) {
      scaling_images.push_back(library[i % kPrograms]);
    }
    auto serial = RunSerial(*qe, scaling_images, opts);
    if (!serial.ok()) {
      std::fprintf(stderr, "scaling serial: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    scaling_serial = std::move(*serial);
    std::sort(scaling_serial.begin(), scaling_serial.end(), FingerprintLess);
  }

  std::fprintf(f, "  \"reactor_scaling\": {\n");
  std::fprintf(f, "    \"clients\": %zu,\n", kScalingClients);
  std::fprintf(f, "    \"transport\": \"loopback tcp, one shared listener\",\n");
  std::fprintf(f,
               "    \"note\": \"wall-clock scaling requires multiple cores; "
               "see EXPERIMENTS.md for the single-core caveat\",\n");
  std::fprintf(f, "    \"rows\": [");
  bool first_row = true;
  const std::vector<size_t> reactor_widths =
      (oversub_only || smoke) ? std::vector<size_t>{}
                              : std::vector<size_t>{1, 2, 4};
  for (const size_t reactors : reactor_widths) {
    // The group rows run streaming inspection — gated against the staged
    // serial reference, so the TCP + multi-reactor path re-proves the
    // staged/streaming equivalence on every bench run.
    auto run = RunGroupTcp(*qe, scaling_images, streaming_opts, reactors);
    if (!run.ok()) {
      std::fprintf(stderr, "reactors=%zu: %s\n", reactors,
                   run.status().ToString().c_str());
      return 1;
    }
    std::sort(run->fingerprints.begin(), run->fingerprints.end(),
              FingerprintLess);
    if (run->fingerprints != scaling_serial) {
      std::fprintf(stderr, "equality gate failed at reactors=%zu\n", reactors);
      return 1;
    }
    const double sec = static_cast<double>(run->wall_ns) / 1e9;
    const double rate =
        sec > 0 ? static_cast<double>(kScalingClients) / sec : 0.0;
    std::printf("%3zu clients tcp   %8.2f sess/s  reactors=%zu\n",
                kScalingClients, rate, reactors);
    std::fprintf(f,
                 "%s\n      {\"reactors\": %zu, \"wall_ns\": %llu, "
                 "\"sessions_per_sec\": %.3f, \"accepted\": %llu, "
                 "\"shed\": %llu, \"reaped\": %llu, \"peak_live\": %llu, "
                 "\"equality\": \"ok\"}",
                 first_row ? "" : ",", reactors,
                 static_cast<unsigned long long>(run->wall_ns), rate,
                 static_cast<unsigned long long>(run->metrics.accepted),
                 static_cast<unsigned long long>(run->metrics.shed),
                 static_cast<unsigned long long>(run->metrics.reaped),
                 static_cast<unsigned long long>(
                     run->metrics.peak_live_connections));
    first_row = false;
  }
  std::fprintf(f, "\n    ]\n  },\n");

  // ---- EPC oversubscription: fixed physical EPC, rising virtual capacity —
  // the shed-on-full baseline is the ratio-1.0 row; every higher ratio must
  // stay bit-identical and ratio >= 2.0 must beat the baseline's throughput.
  constexpr size_t kOversubClients = 16;
  constexpr size_t kOversubResident = 4;
  const size_t oversub_epc = EpcPagesFor(kOversubResident, opts);
  std::vector<Bytes> oversub_images;
  for (size_t i = 0; i < kOversubClients; ++i) {
    oversub_images.push_back(library[i % kPrograms]);
  }
  std::vector<Fingerprint> oversub_serial;
  if (!smoke) {
    auto serial = RunSerial(*qe, oversub_images, opts);
    if (!serial.ok()) {
      std::fprintf(stderr, "oversub serial: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    oversub_serial = std::move(*serial);
  }

  std::fprintf(f, "  \"oversub\": {\n");
  std::fprintf(f, "    \"clients\": %zu,\n", kOversubClients);
  std::fprintf(f, "    \"physical_epc_pages\": %zu,\n", oversub_epc);
  std::fprintf(f,
               "    \"baseline\": \"shed-on-full at ratio 1.0, same physical "
               "EPC, clients honor RetryAfter with exponential back-off\",\n");
  std::fprintf(f, "    \"rows\": [");
  double oversub_baseline_rate = 0.0;
  bool first_oversub = true;
  // Median-of-N throughput per ratio, sampled round-robin: single-run wall
  // clock on a busy host swings +-30% in multi-second windows, which would
  // make a beats-baseline comparison of two single samples flaky in either
  // direction (a slow window tanks the oversubscribed row, a fast one
  // inflates the baseline). Interleaving the repetitions (round 0 of every
  // ratio, then round 1, ...) exposes every ratio to the same noise windows,
  // and the median damps outliers on both sides. Correctness gates
  // (fingerprint equality against the serial reference, zero-leak teardown)
  // run on EVERY repetition; only the throughput number is summarized.
  constexpr size_t kOversubReps = 5;
  const std::vector<double> oversub_ratios =
      smoke ? std::vector<double>{} : std::vector<double>{1.0, 1.5, 2.0, 4.0};
  std::vector<std::vector<OversubStats>> oversub_samples(
      oversub_ratios.size());
  for (size_t rep = 0; rep < kOversubReps; ++rep) {
    for (size_t ri = 0; ri < oversub_ratios.size(); ++ri) {
      const double ratio = oversub_ratios[ri];
      auto sample = RunOversub(*qe, oversub_images, opts, oversub_epc, ratio);
      if (!sample.ok()) {
        std::fprintf(stderr, "oversub x%.1f rep %zu: %s\n", ratio, rep,
                     sample.status().ToString().c_str());
        return 1;
      }
      for (size_t i = 0; i < kOversubClients; ++i) {
        if (!(sample->fingerprints[i] == oversub_serial[i])) {
          std::fprintf(stderr,
                       "oversub equality gate failed at ratio %.1f rep %zu, "
                       "client %zu\n",
                       ratio, rep, i);
          return 1;
        }
      }
      oversub_samples[ri].push_back(std::move(*sample));
    }
  }
  for (size_t ri = 0; ri < oversub_ratios.size(); ++ri) {
    const double ratio = oversub_ratios[ri];
    std::vector<OversubStats>& samples = oversub_samples[ri];
    std::sort(samples.begin(), samples.end(),
              [](const OversubStats& a, const OversubStats& b) {
                return a.wall_ns < b.wall_ns;
              });
    const OversubStats* run = &samples[samples.size() / 2];
    const double sec = static_cast<double>(run->wall_ns) / 1e9;
    const double rate =
        sec > 0 ? static_cast<double>(kOversubClients) / sec : 0.0;
    if (ratio == 1.0) oversub_baseline_rate = rate;
    const bool beats_baseline = rate > oversub_baseline_rate;
    const uint64_t p50 = Percentile(run->latency_ns, 50);
    const uint64_t p99 = Percentile(run->latency_ns, 99);
    const core::FrontendMetrics& m = run->metrics;
    std::printf(
        "%3zu clients oversub_x%.1f  %8.2f sess/s  p50 %8.2f ms  "
        "p99 %8.2f ms  shed %llu  queued %llu  faults %llu  reclaimed "
        "%llu  inline %llu\n",
        kOversubClients, ratio, rate, static_cast<double>(p50) / 1e6,
        static_cast<double>(p99) / 1e6,
        static_cast<unsigned long long>(m.shed),
        static_cast<unsigned long long>(m.queued),
        static_cast<unsigned long long>(m.epc_faults),
        static_cast<unsigned long long>(m.pages_reclaimed),
        static_cast<unsigned long long>(m.pages_evicted_inline));
    if (ratio >= 2.0 && !beats_baseline) {
      std::fprintf(stderr,
                   "oversub x%.1f: %.2f sess/s does not beat the shed-on-"
                   "full baseline's %.2f sess/s\n",
                   ratio, rate, oversub_baseline_rate);
      return 1;
    }
    std::fprintf(f,
                 "%s\n      {\"mode\": \"oversub_x%.1f\", \"ratio\": %.1f, ",
                 first_oversub ? "" : ",", ratio, ratio);
    first_oversub = false;
    std::fprintf(f, "\"wall_ns\": %llu, \"sessions_per_sec\": %.3f, ",
                 static_cast<unsigned long long>(run->wall_ns), rate);
    std::fprintf(f, "\"p50_verdict_ns\": %llu, \"p99_verdict_ns\": %llu, ",
                 static_cast<unsigned long long>(p50),
                 static_cast<unsigned long long>(p99));
    std::fprintf(
        f,
        "\"shed\": %llu, \"epc_faults\": %llu, \"eldu_loads\": %llu, "
        "\"pages_reclaimed\": %llu, \"pages_evicted_inline\": %llu, "
        "\"reclaim_wakeups\": %llu, ",
        static_cast<unsigned long long>(m.shed),
        static_cast<unsigned long long>(m.epc_faults),
        static_cast<unsigned long long>(m.eldu_loads),
        static_cast<unsigned long long>(m.pages_reclaimed),
        static_cast<unsigned long long>(m.pages_evicted_inline),
        static_cast<unsigned long long>(m.reclaim_wakeups));
    std::fprintf(
        f,
        "\"max_committed_pages\": %llu, \"epc_resident_peak\": %llu, "
        "\"budget_underflows\": %llu, \"beats_baseline\": %s, "
        "\"leak_gate\": \"ok\", \"equality\": \"ok\"}",
        static_cast<unsigned long long>(m.max_committed_pages),
        static_cast<unsigned long long>(m.epc_resident_peak),
        static_cast<unsigned long long>(m.budget_underflows),
        beats_baseline ? "true" : "false");
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return (reupload_gate_failed || fleet_gate_failed || hostile_gate_failed)
             ? 1
             : 0;
}
