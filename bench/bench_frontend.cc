// Front-end provisioning benchmark: N concurrent clients admitted through
// the readiness-driven ProvisioningFrontend (core/frontend.h) over in-memory
// transports, cold-built vs. warm-pool enclaves — and cold with streaming
// inspection (speculative decode overlapped with block upload) — at
// 1 / 8 / 64 / 256 concurrent clients. Reports sessions/sec, p50/p99
// time-to-verdict and the achieved decode-overlap ratio, and writes
// BENCH_frontend.json.
//
// Every throughput number is gated on bit-for-bit equality with a serial
// staged ProvisioningServer::Drive of the same client mix: identical
// verdicts and identical per-phase SGX-instruction attribution, or the
// bench fails.
//
// Usage: bench_frontend [--rsa-bits N] [--insns N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <thread>
#include <tuple>

#include "client/client.h"
#include "core/frontend.h"
#include "core/frontend_group.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "workload/program_builder.h"

using namespace engarde;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

core::PolicySet MakePolicies() {
  core::PolicySet policies;
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  return policies;
}

core::EngardeOptions EnclaveOptions(size_t rsa_bits, bool streaming) {
  core::EngardeOptions options;
  options.rsa_bits = rsa_bits;
  options.layout.heap_pages = 128;
  options.layout.load_pages = 32;
  options.streaming_inspection = streaming;
  return options;
}

// Layout pages + SECS, the device-level footprint of one enclave.
size_t EpcPagesFor(size_t enclaves, const core::EngardeOptions& options) {
  return enclaves * (options.layout.TotalPages() + 1) + 64;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& qe) {
  client::ClientOptions options;
  options.attestation_key = qe.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

// Everything the equality gate compares per client.
struct Fingerprint {
  bool compliant = false;
  uint64_t idle_sgx = 0, channel_sgx = 0, disassembly_sgx = 0;
  uint64_t policy_sgx = 0, loading_sgx = 0, total_sgx = 0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint Fp(bool compliant, const sgx::CycleAccountant& accountant) {
  Fingerprint fp;
  fp.compliant = compliant;
  fp.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  fp.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  fp.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  fp.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  fp.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  fp.total_sgx = accountant.total_sgx_instructions();
  return fp;
}

struct RunStats {
  uint64_t wall_ns = 0;            // accept of first client -> last verdict
  uint64_t prefill_ns = 0;         // warm runs: pool build time (untimed path)
  std::vector<uint64_t> latency_ns;  // per client, accept -> verdict
  std::vector<Fingerprint> fingerprints;
  core::FrontendMetrics metrics;   // snapshot after the final reap sweep
};

// Serial reference: the same images driven one at a time through
// ProvisioningServer::Drive on a fresh device.
Result<std::vector<Fingerprint>> RunSerial(const sgx::QuotingEnclave& qe,
                                           const std::vector<Bytes>& images,
                                           const core::EngardeOptions& opts) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::ProvisioningServer::Options options;
  options.enclave_options = opts;
  core::ProvisioningServer server(&host, &qe, MakePolicies, options);
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    (void)index;
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Fingerprint> fps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome, server.Drive(i));
    fps.push_back(
        Fp(outcome.verdict.compliant, server.session_accountant(i)));
  }
  return fps;
}

// One frontend run over in-memory transports, cold or warm.
Result<RunStats> RunFrontend(const sgx::QuotingEnclave& qe,
                             const std::vector<Bytes>& images,
                             const core::EngardeOptions& opts, bool warm) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::FrontendOptions options;
  options.enclave_options = opts;
  core::ProvisioningFrontend frontend(&host, &qe, MakePolicies, options);

  RunStats stats;
  if (warm) {
    const Clock::time_point prefill_start = Clock::now();
    RETURN_IF_ERROR(frontend.PrefillPool(images.size()));
    stats.prefill_ns = ElapsedNs(prefill_start, Clock::now());
  }

  const size_t n = images.size();
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes(n);
  std::vector<std::unique_ptr<client::Client>> clients(n);
  std::vector<Clock::time_point> accepted(n);
  std::vector<Clock::time_point> verdicted(n);
  std::vector<bool> done(n, false);
  std::vector<bool> compliant(n, false);

  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    pipes[i] = std::make_unique<crypto::DuplexPipe>();
    clients[i] =
        std::make_unique<client::Client>(ClientOptionsFor(qe), images[i]);
    accepted[i] = Clock::now();
    ASSIGN_OR_RETURN(const uint64_t id,
                     frontend.Accept(std::make_unique<net::PipeTransport>(
                         pipes[i]->EndA())));
    if (id != i) return InternalError("unexpected connection id");
    ASSIGN_OR_RETURN(const auto retry,
                     clients[i]->AwaitAdmission(pipes[i]->EndB()));
    if (retry.has_value()) {
      return InternalError("unexpected RetryAfter with a full budget");
    }
    RETURN_IF_ERROR(clients[i]->SendProgram(pipes[i]->EndB()));
  }
  size_t remaining = n;
  while (remaining > 0) {
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    if (progress == 0) {
      return InternalError("reactor stalled before all verdicts");
    }
    for (size_t i = 0; i < n; ++i) {
      if (done[i] ||
          frontend.state(i) != core::ConnectionState::kDone) {
        continue;
      }
      verdicted[i] = Clock::now();
      done[i] = true;
      --remaining;
    }
  }
  stats.wall_ns = ElapsedNs(start, Clock::now());
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                     frontend.TakeOutcome(i));
    compliant[i] = outcome.verdict.compliant;
    stats.latency_ns.push_back(ElapsedNs(accepted[i], verdicted[i]));
    stats.fingerprints.push_back(Fp(compliant[i], frontend.accountant(i)));
    if (warm != frontend.served_from_pool(i)) {
      return InternalError("pool handout did not match the mode");
    }
  }
  // Every outcome is taken: one more drain lets the reaper retire all the
  // slots, proving the table really returns to O(active) = 0.
  RETURN_IF_ERROR(frontend.DrainAll());
  stats.metrics = frontend.metrics();
  if (stats.metrics.live_connections != 0 || frontend.connection_count() != 0) {
    return InternalError("reaper left retired connections in the table");
  }
  return stats;
}

uint64_t Percentile(std::vector<uint64_t> values, size_t percent) {
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) * percent / 100];
}

// ---- Reactor scaling over real TCP -----------------------------------------
// N FrontendGroup reactor threads race one loopback listener while real
// client threads provision concurrently. Which reactor (and connection slot)
// a client lands on is a kernel accept race, so the equality gate compares
// the SORTED multiset of fingerprints against the serial reference.

// Client-side bridge between the socket and the blocking client library
// (same shape as tools/engarde-serve --selftest).
Result<size_t> Shuttle(net::TcpTransport& socket, crypto::DuplexPipe& pipe) {
  size_t moved = 0;
  Bytes inbound;
  ASSIGN_OR_RETURN(const size_t drained, socket.Drain(inbound));
  crypto::DuplexPipe::Endpoint bridge = pipe.EndA();
  if (drained > 0) {
    bridge.Write(ByteView(inbound));
    moved += drained;
  }
  const size_t pending = bridge.Available();
  if (pending > 0) {
    ASSIGN_OR_RETURN(const Bytes outbound, bridge.Read(pending));
    RETURN_IF_ERROR(socket.Send(ByteView(outbound)));
    moved += pending;
  }
  RETURN_IF_ERROR(socket.Flush().status());
  return moved;
}

template <typename Ready>
Status PumpUntil(net::TcpTransport& socket, crypto::DuplexPipe& pipe,
                 Ready ready) {
  while (!ready()) {
    ASSIGN_OR_RETURN(const size_t moved, Shuttle(socket, pipe));
    if (moved == 0) {
      if (socket.AtEof() && pipe.EndB().Available() == 0) {
        return ProtocolError("server closed before the exchange completed");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return Status::Ok();
}

Status RunBenchClient(uint16_t port, const client::ClientOptions& options,
                      const Bytes& executable) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    ASSIGN_OR_RETURN(std::unique_ptr<net::TcpTransport> socket,
                     net::TcpTransport::Connect("127.0.0.1", port));
    crypto::DuplexPipe pipe;
    crypto::DuplexPipe::Endpoint client_end = pipe.EndB();
    client::Client client(options, executable);
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 1);
    }));
    ASSIGN_OR_RETURN(const std::optional<core::RetryAfter> retry,
                     client.AwaitAdmission(client_end));
    if (retry.has_value()) {
      socket->Close();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry->retry_after_ms));
      continue;
    }
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteFrames(client_end, 2);
    }));
    RETURN_IF_ERROR(client.SendProgram(client_end));
    RETURN_IF_ERROR(PumpUntil(*socket, pipe, [&client_end] {
      return net::HasCompleteSecureRecord(client_end);
    }));
    return client.AwaitVerdict().status();
  }
  return ResourceExhaustedError("still shed after 200 admission attempts");
}

struct GroupStats {
  uint64_t wall_ns = 0;
  std::vector<Fingerprint> fingerprints;  // unordered (accept race)
  core::FrontendMetrics metrics;
};

Result<GroupStats> RunGroupTcp(const sgx::QuotingEnclave& qe,
                               const std::vector<Bytes>& images,
                               const core::EngardeOptions& opts,
                               size_t reactors) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::FrontendGroupOptions options;
  options.frontend.enclave_options = opts;
  options.frontend.admission_queue_capacity = images.size();
  options.reactors = reactors;
  core::FrontendGroup group(&host, &qe, MakePolicies, options);

  auto listener = net::TcpListener::Bind(0);
  if (!listener.ok()) return listener.status();
  const uint16_t port = listener->port();
  group.AttachListener(&*listener);
  RETURN_IF_ERROR(group.Start());

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  std::vector<Status> failures(images.size());
  for (size_t i = 0; i < images.size(); ++i) {
    clients.emplace_back([port, &qe, &images, &failures, i] {
      failures[i] = RunBenchClient(port, ClientOptionsFor(qe), images[i]);
    });
  }
  for (std::thread& thread : clients) thread.join();
  GroupStats stats;
  stats.wall_ns = ElapsedNs(start, Clock::now());
  RETURN_IF_ERROR(group.Stop());
  for (const Status& failure : failures) RETURN_IF_ERROR(failure);

  // Quiescent now: harvest every live connection's fingerprint, whichever
  // reactor it raced onto. Ids come from the slot map (sparse after sheds
  // were reaped mid-run), so iterate the live set, not 0..count.
  for (size_t r = 0; r < group.reactor_count(); ++r) {
    core::ProvisioningFrontend& frontend = group.reactor(r);
    for (const uint64_t id : frontend.connection_ids()) {
      if (frontend.state(id) != core::ConnectionState::kDone) continue;
      ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                       frontend.TakeOutcome(id));
      stats.fingerprints.push_back(
          Fp(outcome.verdict.compliant, frontend.accountant(id)));
    }
  }
  if (stats.fingerprints.size() != images.size()) {
    return InternalError("verdict count mismatch across reactors");
  }
  stats.metrics = group.metrics();
  return stats;
}

bool FingerprintLess(const Fingerprint& a, const Fingerprint& b) {
  return std::tie(a.compliant, a.idle_sgx, a.channel_sgx, a.disassembly_sgx,
                  a.policy_sgx, a.loading_sgx, a.total_sgx) <
         std::tie(b.compliant, b.idle_sgx, b.channel_sgx, b.disassembly_sgx,
                  b.policy_sgx, b.loading_sgx, b.total_sgx);
}

}  // namespace

int main(int argc, char** argv) {
  size_t rsa_bits = 512;
  size_t target_instructions = 2500;
  std::string out_path = "BENCH_frontend.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rsa-bits") == 0 && i + 1 < argc) {
      rsa_bits = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--insns") == 0 && i + 1 < argc) {
      target_instructions = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_frontend [--rsa-bits N] [--insns N] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  auto qe = sgx::QuotingEnclave::Provision(ToBytes("bench-frontend"),
                                           rsa_bits);
  if (!qe.ok()) {
    std::fprintf(stderr, "quoting enclave: %s\n",
                 qe.status().ToString().c_str());
    return 1;
  }
  // The serial reference and the cold/warm baselines run the staged
  // pipeline; the streaming rows are gated against that same reference.
  const core::EngardeOptions opts = EnclaveOptions(rsa_bits, false);
  const core::EngardeOptions streaming_opts = EnclaveOptions(rsa_bits, true);

  // A small mixed population: even programs carry stack protectors
  // (compliant), odd ones violate. Client i uses program i % kPrograms.
  constexpr size_t kPrograms = 8;
  std::vector<Bytes> library;
  for (size_t i = 0; i < kPrograms; ++i) {
    workload::ProgramSpec spec;
    spec.name = "bench-frontend-" + std::to_string(i);
    spec.seed = 5200 + i;
    spec.target_instructions = target_instructions;
    spec.stack_protection = (i % 2 == 0);
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) {
      std::fprintf(stderr, "program %zu: %s\n", i,
                   program.status().ToString().c_str());
      return 1;
    }
    library.push_back(program->image);
  }

  const std::vector<size_t> levels = {1, 8, 64, 256};

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"rsa_bits\": %zu,\n", rsa_bits);
  std::fprintf(f, "  \"target_instructions\": %zu,\n", target_instructions);
  std::fprintf(f, "  \"equality_gate\": \"per-client verdict and per-phase "
                  "SGX instructions vs serial ProvisioningServer::Drive\",\n");
  std::fprintf(f, "  \"levels\": [");

  bool first_level = true;
  for (const size_t n : levels) {
    std::vector<Bytes> images;
    for (size_t i = 0; i < n; ++i) images.push_back(library[i % kPrograms]);

    auto serial = RunSerial(*qe, images, opts);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial %zu: %s\n", n,
                   serial.status().ToString().c_str());
      return 1;
    }
    auto cold = RunFrontend(*qe, images, opts, /*warm=*/false);
    if (!cold.ok()) {
      std::fprintf(stderr, "cold %zu: %s\n", n,
                   cold.status().ToString().c_str());
      return 1;
    }
    auto streaming = RunFrontend(*qe, images, streaming_opts, /*warm=*/false);
    if (!streaming.ok()) {
      std::fprintf(stderr, "streaming %zu: %s\n", n,
                   streaming.status().ToString().c_str());
      return 1;
    }
    auto warm = RunFrontend(*qe, images, opts, /*warm=*/true);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm %zu: %s\n", n,
                   warm.status().ToString().c_str());
      return 1;
    }

    // The gate: throughput numbers from a reactor that changed any verdict
    // or any per-phase SGX count would be meaningless. Streaming rows gate
    // against the same staged serial reference.
    for (size_t i = 0; i < n; ++i) {
      if (!(cold->fingerprints[i] == (*serial)[i]) ||
          !(streaming->fingerprints[i] == (*serial)[i]) ||
          !(warm->fingerprints[i] == (*serial)[i])) {
        std::fprintf(stderr,
                     "equality gate failed at %zu clients, client %zu\n", n,
                     i);
        return 1;
      }
    }

    struct ModeRow {
      const char* mode;
      const RunStats* stats;
    };
    for (const ModeRow row : {ModeRow{"cold", &*cold},
                              ModeRow{"cold-streaming", &*streaming},
                              ModeRow{"warm", &*warm}}) {
      const double sec = static_cast<double>(row.stats->wall_ns) / 1e9;
      const double rate = sec > 0 ? static_cast<double>(n) / sec : 0.0;
      const uint64_t p50 = Percentile(row.stats->latency_ns, 50);
      const uint64_t p99 = Percentile(row.stats->latency_ns, 99);
      const core::FrontendMetrics& metrics = row.stats->metrics;
      const uint64_t overlap_mean =
          metrics.decode_overlap_count > 0
              ? metrics.decode_overlap_sum_permille /
                    metrics.decode_overlap_count
              : 0;
      std::printf(
          "%3zu clients %-14s  %8.2f sess/s  p50 %8.2f ms  p99 %8.2f ms"
          "%s%s\n",
          n, row.mode, rate, static_cast<double>(p50) / 1e6,
          static_cast<double>(p99) / 1e6,
          row.stats->prefill_ns > 0 ? "  (pool prebuilt)" : "",
          metrics.decode_overlap_count > 0
              ? ("  overlap " + std::to_string(overlap_mean) + "\xE2\x80\xB0")
                    .c_str()
              : "");
      std::fprintf(f, "%s\n    {\"clients\": %zu, \"mode\": \"%s\", ",
                   first_level ? "" : ",", n, row.mode);
      first_level = false;
      std::fprintf(f, "\"wall_ns\": %llu, \"sessions_per_sec\": %.3f, ",
                   static_cast<unsigned long long>(row.stats->wall_ns), rate);
      std::fprintf(f, "\"p50_verdict_ns\": %llu, \"p99_verdict_ns\": %llu, ",
                   static_cast<unsigned long long>(p50),
                   static_cast<unsigned long long>(p99));
      std::fprintf(f, "\"prefill_ns\": %llu, ",
                   static_cast<unsigned long long>(row.stats->prefill_ns));
      std::fprintf(
          f,
          "\"decode_overlap_count\": %llu, "
          "\"decode_overlap_mean_permille\": %llu, "
          "\"decode_overlap_max_permille\": %llu, ",
          static_cast<unsigned long long>(metrics.decode_overlap_count),
          static_cast<unsigned long long>(overlap_mean),
          static_cast<unsigned long long>(
              metrics.decode_overlap_max_permille));
      std::fprintf(
          f,
          "\"reaped\": %llu, \"timed_out\": %llu, \"peak_live\": %llu, "
          "\"live_after_reap\": %llu, \"max_committed_pages\": %llu, "
          "\"equality\": \"ok\"}",
          static_cast<unsigned long long>(metrics.reaped),
          static_cast<unsigned long long>(metrics.timed_out),
          static_cast<unsigned long long>(metrics.peak_live_connections),
          static_cast<unsigned long long>(metrics.live_connections),
          static_cast<unsigned long long>(metrics.max_committed_pages));
    }
  }
  std::fprintf(f, "\n  ],\n");

  // ---- Reactor scaling: one shared listener, N reactor threads, real TCP —
  // same client mix at every width, equality-gated as a sorted multiset
  // because the client->reactor assignment is a kernel accept race.
  constexpr size_t kScalingClients = 32;
  std::vector<Bytes> scaling_images;
  for (size_t i = 0; i < kScalingClients; ++i) {
    scaling_images.push_back(library[i % kPrograms]);
  }
  auto scaling_serial = RunSerial(*qe, scaling_images, opts);
  if (!scaling_serial.ok()) {
    std::fprintf(stderr, "scaling serial: %s\n",
                 scaling_serial.status().ToString().c_str());
    return 1;
  }
  std::sort(scaling_serial->begin(), scaling_serial->end(), FingerprintLess);

  std::fprintf(f, "  \"reactor_scaling\": {\n");
  std::fprintf(f, "    \"clients\": %zu,\n", kScalingClients);
  std::fprintf(f, "    \"transport\": \"loopback tcp, one shared listener\",\n");
  std::fprintf(f,
               "    \"note\": \"wall-clock scaling requires multiple cores; "
               "see EXPERIMENTS.md for the single-core caveat\",\n");
  std::fprintf(f, "    \"rows\": [");
  bool first_row = true;
  for (const size_t reactors : {size_t{1}, size_t{2}, size_t{4}}) {
    // The group rows run streaming inspection — gated against the staged
    // serial reference, so the TCP + multi-reactor path re-proves the
    // staged/streaming equivalence on every bench run.
    auto run = RunGroupTcp(*qe, scaling_images, streaming_opts, reactors);
    if (!run.ok()) {
      std::fprintf(stderr, "reactors=%zu: %s\n", reactors,
                   run.status().ToString().c_str());
      return 1;
    }
    std::sort(run->fingerprints.begin(), run->fingerprints.end(),
              FingerprintLess);
    if (run->fingerprints != *scaling_serial) {
      std::fprintf(stderr, "equality gate failed at reactors=%zu\n", reactors);
      return 1;
    }
    const double sec = static_cast<double>(run->wall_ns) / 1e9;
    const double rate =
        sec > 0 ? static_cast<double>(kScalingClients) / sec : 0.0;
    std::printf("%3zu clients tcp   %8.2f sess/s  reactors=%zu\n",
                kScalingClients, rate, reactors);
    std::fprintf(f,
                 "%s\n      {\"reactors\": %zu, \"wall_ns\": %llu, "
                 "\"sessions_per_sec\": %.3f, \"accepted\": %llu, "
                 "\"shed\": %llu, \"reaped\": %llu, \"peak_live\": %llu, "
                 "\"equality\": \"ok\"}",
                 first_row ? "" : ",", reactors,
                 static_cast<unsigned long long>(run->wall_ns), rate,
                 static_cast<unsigned long long>(run->metrics.accepted),
                 static_cast<unsigned long long>(run->metrics.shed),
                 static_cast<unsigned long long>(run->metrics.reaped),
                 static_cast<unsigned long long>(
                     run->metrics.peak_live_connections));
    first_row = false;
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
