// Front-end provisioning benchmark: N concurrent clients admitted through
// the readiness-driven ProvisioningFrontend (core/frontend.h) over in-memory
// transports, cold-built vs. warm-pool enclaves, at 1 / 8 / 64 / 256
// concurrent clients. Reports sessions/sec and p50/p99 time-to-verdict and
// writes BENCH_frontend.json.
//
// Every throughput number is gated on bit-for-bit equality with a serial
// ProvisioningServer::Drive of the same client mix: identical verdicts and
// identical per-phase SGX-instruction attribution, or the bench fails.
//
// Usage: bench_frontend [--rsa-bits N] [--insns N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/frontend.h"
#include "core/policy_stackprot.h"
#include "core/server.h"
#include "net/transport.h"
#include "workload/program_builder.h"

using namespace engarde;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start, Clock::time_point end) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

core::PolicySet MakePolicies() {
  core::PolicySet policies;
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  return policies;
}

core::EngardeOptions EnclaveOptions(size_t rsa_bits) {
  core::EngardeOptions options;
  options.rsa_bits = rsa_bits;
  options.layout.heap_pages = 128;
  options.layout.load_pages = 32;
  return options;
}

// Layout pages + SECS, the device-level footprint of one enclave.
size_t EpcPagesFor(size_t enclaves, const core::EngardeOptions& options) {
  return enclaves * (options.layout.TotalPages() + 1) + 64;
}

client::ClientOptions ClientOptionsFor(const sgx::QuotingEnclave& qe) {
  client::ClientOptions options;
  options.attestation_key = qe.attestation_public_key();
  options.skip_measurement_check = true;
  return options;
}

// Everything the equality gate compares per client.
struct Fingerprint {
  bool compliant = false;
  uint64_t idle_sgx = 0, channel_sgx = 0, disassembly_sgx = 0;
  uint64_t policy_sgx = 0, loading_sgx = 0, total_sgx = 0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint Fp(bool compliant, const sgx::CycleAccountant& accountant) {
  Fingerprint fp;
  fp.compliant = compliant;
  fp.idle_sgx = accountant.phase_cost(sgx::Phase::kIdle).sgx_instructions;
  fp.channel_sgx =
      accountant.phase_cost(sgx::Phase::kChannel).sgx_instructions;
  fp.disassembly_sgx =
      accountant.phase_cost(sgx::Phase::kDisassembly).sgx_instructions;
  fp.policy_sgx =
      accountant.phase_cost(sgx::Phase::kPolicyCheck).sgx_instructions;
  fp.loading_sgx =
      accountant.phase_cost(sgx::Phase::kLoading).sgx_instructions;
  fp.total_sgx = accountant.total_sgx_instructions();
  return fp;
}

struct RunStats {
  uint64_t wall_ns = 0;            // accept of first client -> last verdict
  uint64_t prefill_ns = 0;         // warm runs: pool build time (untimed path)
  std::vector<uint64_t> latency_ns;  // per client, accept -> verdict
  std::vector<Fingerprint> fingerprints;
};

// Serial reference: the same images driven one at a time through
// ProvisioningServer::Drive on a fresh device.
Result<std::vector<Fingerprint>> RunSerial(const sgx::QuotingEnclave& qe,
                                           const std::vector<Bytes>& images,
                                           const core::EngardeOptions& opts) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::ProvisioningServer::Options options;
  options.enclave_options = opts;
  core::ProvisioningServer server(&host, &qe, MakePolicies, options);
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes;
  for (size_t i = 0; i < images.size(); ++i) {
    pipes.push_back(std::make_unique<crypto::DuplexPipe>());
    ASSIGN_OR_RETURN(const size_t index, server.Accept(pipes[i]->EndA()));
    (void)index;
    client::Client client(ClientOptionsFor(qe), images[i]);
    RETURN_IF_ERROR(client.SendProgram(pipes[i]->EndB()));
  }
  std::vector<Fingerprint> fps;
  for (size_t i = 0; i < images.size(); ++i) {
    ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome, server.Drive(i));
    fps.push_back(
        Fp(outcome.verdict.compliant, server.session_accountant(i)));
  }
  return fps;
}

// One frontend run over in-memory transports, cold or warm.
Result<RunStats> RunFrontend(const sgx::QuotingEnclave& qe,
                             const std::vector<Bytes>& images,
                             const core::EngardeOptions& opts, bool warm) {
  sgx::SgxDevice device(sgx::SgxDevice::Options{
      .epc_pages = EpcPagesFor(images.size(), opts)});
  sgx::HostOs host(&device);
  core::FrontendOptions options;
  options.enclave_options = opts;
  core::ProvisioningFrontend frontend(&host, &qe, MakePolicies, options);

  RunStats stats;
  if (warm) {
    const Clock::time_point prefill_start = Clock::now();
    RETURN_IF_ERROR(frontend.PrefillPool(images.size()));
    stats.prefill_ns = ElapsedNs(prefill_start, Clock::now());
  }

  const size_t n = images.size();
  std::vector<std::unique_ptr<crypto::DuplexPipe>> pipes(n);
  std::vector<std::unique_ptr<client::Client>> clients(n);
  std::vector<Clock::time_point> accepted(n);
  std::vector<Clock::time_point> verdicted(n);
  std::vector<bool> done(n, false);
  std::vector<bool> compliant(n, false);

  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    pipes[i] = std::make_unique<crypto::DuplexPipe>();
    clients[i] =
        std::make_unique<client::Client>(ClientOptionsFor(qe), images[i]);
    accepted[i] = Clock::now();
    ASSIGN_OR_RETURN(const uint64_t id,
                     frontend.Accept(std::make_unique<net::PipeTransport>(
                         pipes[i]->EndA())));
    if (id != i) return InternalError("unexpected connection id");
    ASSIGN_OR_RETURN(const auto retry,
                     clients[i]->AwaitAdmission(pipes[i]->EndB()));
    if (retry.has_value()) {
      return InternalError("unexpected RetryAfter with a full budget");
    }
    RETURN_IF_ERROR(clients[i]->SendProgram(pipes[i]->EndB()));
  }
  size_t remaining = n;
  while (remaining > 0) {
    ASSIGN_OR_RETURN(const size_t progress, frontend.PollOnce());
    if (progress == 0) {
      return InternalError("reactor stalled before all verdicts");
    }
    for (size_t i = 0; i < n; ++i) {
      if (done[i] ||
          frontend.state(i) != core::ConnectionState::kDone) {
        continue;
      }
      verdicted[i] = Clock::now();
      done[i] = true;
      --remaining;
    }
  }
  stats.wall_ns = ElapsedNs(start, Clock::now());
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(const core::ProvisionOutcome outcome,
                     frontend.TakeOutcome(i));
    compliant[i] = outcome.verdict.compliant;
    stats.latency_ns.push_back(ElapsedNs(accepted[i], verdicted[i]));
    stats.fingerprints.push_back(Fp(compliant[i], frontend.accountant(i)));
    if (warm != frontend.served_from_pool(i)) {
      return InternalError("pool handout did not match the mode");
    }
  }
  return stats;
}

uint64_t Percentile(std::vector<uint64_t> values, size_t percent) {
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) * percent / 100];
}

}  // namespace

int main(int argc, char** argv) {
  size_t rsa_bits = 512;
  size_t target_instructions = 2500;
  std::string out_path = "BENCH_frontend.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rsa-bits") == 0 && i + 1 < argc) {
      rsa_bits = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--insns") == 0 && i + 1 < argc) {
      target_instructions = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_frontend [--rsa-bits N] [--insns N] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  auto qe = sgx::QuotingEnclave::Provision(ToBytes("bench-frontend"),
                                           rsa_bits);
  if (!qe.ok()) {
    std::fprintf(stderr, "quoting enclave: %s\n",
                 qe.status().ToString().c_str());
    return 1;
  }
  const core::EngardeOptions opts = EnclaveOptions(rsa_bits);

  // A small mixed population: even programs carry stack protectors
  // (compliant), odd ones violate. Client i uses program i % kPrograms.
  constexpr size_t kPrograms = 8;
  std::vector<Bytes> library;
  for (size_t i = 0; i < kPrograms; ++i) {
    workload::ProgramSpec spec;
    spec.name = "bench-frontend-" + std::to_string(i);
    spec.seed = 5200 + i;
    spec.target_instructions = target_instructions;
    spec.stack_protection = (i % 2 == 0);
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) {
      std::fprintf(stderr, "program %zu: %s\n", i,
                   program.status().ToString().c_str());
      return 1;
    }
    library.push_back(program->image);
  }

  const std::vector<size_t> levels = {1, 8, 64, 256};

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"rsa_bits\": %zu,\n", rsa_bits);
  std::fprintf(f, "  \"target_instructions\": %zu,\n", target_instructions);
  std::fprintf(f, "  \"equality_gate\": \"per-client verdict and per-phase "
                  "SGX instructions vs serial ProvisioningServer::Drive\",\n");
  std::fprintf(f, "  \"levels\": [");

  bool first_level = true;
  for (const size_t n : levels) {
    std::vector<Bytes> images;
    for (size_t i = 0; i < n; ++i) images.push_back(library[i % kPrograms]);

    auto serial = RunSerial(*qe, images, opts);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial %zu: %s\n", n,
                   serial.status().ToString().c_str());
      return 1;
    }
    auto cold = RunFrontend(*qe, images, opts, /*warm=*/false);
    if (!cold.ok()) {
      std::fprintf(stderr, "cold %zu: %s\n", n,
                   cold.status().ToString().c_str());
      return 1;
    }
    auto warm = RunFrontend(*qe, images, opts, /*warm=*/true);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm %zu: %s\n", n,
                   warm.status().ToString().c_str());
      return 1;
    }

    // The gate: throughput numbers from a reactor that changed any verdict
    // or any per-phase SGX count would be meaningless.
    for (size_t i = 0; i < n; ++i) {
      if (!(cold->fingerprints[i] == (*serial)[i]) ||
          !(warm->fingerprints[i] == (*serial)[i])) {
        std::fprintf(stderr,
                     "equality gate failed at %zu clients, client %zu\n", n,
                     i);
        return 1;
      }
    }

    struct ModeRow {
      const char* mode;
      const RunStats* stats;
    };
    for (const ModeRow row : {ModeRow{"cold", &*cold}, ModeRow{"warm", &*warm}}) {
      const double sec = static_cast<double>(row.stats->wall_ns) / 1e9;
      const double rate = sec > 0 ? static_cast<double>(n) / sec : 0.0;
      const uint64_t p50 = Percentile(row.stats->latency_ns, 50);
      const uint64_t p99 = Percentile(row.stats->latency_ns, 99);
      std::printf(
          "%3zu clients %-4s  %8.2f sess/s  p50 %8.2f ms  p99 %8.2f ms%s\n",
          n, row.mode, rate, static_cast<double>(p50) / 1e6,
          static_cast<double>(p99) / 1e6,
          row.stats->prefill_ns > 0 ? "  (pool prebuilt)" : "");
      std::fprintf(f, "%s\n    {\"clients\": %zu, \"mode\": \"%s\", ",
                   first_level ? "" : ",", n, row.mode);
      first_level = false;
      std::fprintf(f, "\"wall_ns\": %llu, \"sessions_per_sec\": %.3f, ",
                   static_cast<unsigned long long>(row.stats->wall_ns), rate);
      std::fprintf(f, "\"p50_verdict_ns\": %llu, \"p99_verdict_ns\": %llu, ",
                   static_cast<unsigned long long>(p50),
                   static_cast<unsigned long long>(p99));
      std::fprintf(f, "\"prefill_ns\": %llu, \"equality\": \"ok\"}",
                   static_cast<unsigned long long>(row.stats->prefill_ns));
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
