// Reproduces Figure 3: "Performance of EnGarde to check the Library-linking
// policy. Here EnGarde checks whether each benchmark has been linked against
// musl-libc." One row per benchmark: #Inst, disassembly cycles, policy-check
// cycles, loading-and-relocation cycles — measured side by side with the
// paper's published numbers.
#include "bench/harness.h"

int main() {
  using namespace engarde;
  using namespace engarde::bench;

  PrintFigureHeader("Figure 3", "library-linking (synth-musl v1.0.5)");

  double pd_ratio_sum = 0;
  int rows = 0;
  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program =
        workload::BuildBenchmark(entry, workload::BuildFlavor::kPlain);
    if (!program.ok()) {
      std::printf("%-11s BUILD FAILED: %s\n", entry.name,
                  program.status().ToString().c_str());
      return 1;
    }
    auto measured =
        MeasureProvisioning(*program, workload::BuildFlavor::kPlain);
    if (!measured.ok()) {
      std::printf("%-11s RUN FAILED: %s\n", entry.name,
                  measured.status().ToString().c_str());
      return 1;
    }
    if (!measured->compliant) {
      std::printf("%-11s UNEXPECTED REJECTION\n", entry.name);
      return 1;
    }
    PrintFigureRow(entry.name, *measured,
                   {entry.fig3_disasm_cycles, entry.fig3_policy_cycles,
                    entry.fig3_load_cycles});
    pd_ratio_sum += static_cast<double>(measured->policy_check) /
                    static_cast<double>(measured->disassembly);
    ++rows;
  }

  std::printf(
      "\nShape check: the paper's library-linking policy costs MORE than "
      "disassembly on every benchmark\n(P/D paper ranges 1.76-9.6); ours "
      "averages P/D = %.2f — hashing every directly-called function "
      "dominates,\nreproducing who-wins. Loading+relocation stays 3-5 orders "
      "of magnitude below both, as in the paper.\n",
      pd_ratio_sum / rows);
  return 0;
}
