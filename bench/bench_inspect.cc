// Machine-readable inspection benchmark: provisions every catalog benchmark
// (library-linking flavor, the paper's Figure 3 configuration) at a sweep of
// inspection_threads values — staged and streaming — and writes
// BENCH_inspect.json: per-benchmark per-phase cycles, deterministic
// SGX-instruction counts, wall time, and for streaming runs the achieved
// decode overlap, so the perf trajectory of the hot path is tracked across
// PRs instead of eyeballed from table output.
//
// Usage: bench_inspect [--scale S] [--threads N] [--out PATH]
//   --scale S    build benchmarks at S x the paper's instruction count
//                (default 1.0; CI smoke runs use e.g. 0.1)
//   --threads N  the parallel data point to compare against serial
//                (default 8)
//   --out PATH   output file (default BENCH_inspect.json)
//
// The headline metric is speedup = wall(1 thread) / wall(N threads) on the
// largest benchmark (Nginx). Every streaming row is equality-gated against
// its staged twin: identical verdict and per-phase SGX-instruction counts,
// or the bench fails. Note: on a single-core host the engine still produces
// identical verdicts but cannot show wall speedup — the overlap_permille
// column is the scheduling-independent evidence the speculation engaged.
//
// The re-upload sweep measures the verdict cache: the largest benchmark is
// re-uploaded with 0% / 10% / 100% of its application functions mutated,
// cold (no cache) vs warm (cache seeded with the original binary). Warm runs
// are equality-gated against cold on verdict and per-phase SGX counts, and
// the 0%-changed warm row must beat cold on wall time or the bench fails.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "workload/mutate.h"

using namespace engarde;
using namespace engarde::bench;

namespace {

struct Run {
  size_t threads = 0;
  bool streaming = false;
  PhaseCycles cycles;
};

void PrintPhaseJson(std::FILE* f, const char* name, uint64_t cycles,
                    uint64_t sgx, const char* trailing_comma) {
  std::fprintf(f,
               "        \"%s\": {\"cycles\": %llu, \"sgx_instructions\": "
               "%llu}%s\n",
               name, static_cast<unsigned long long>(cycles),
               static_cast<unsigned long long>(sgx), trailing_comma);
}

// One row per pipeline stage — finer grain than the phase columns (container
// validation, page separation, symbol table and NaCl validation separate).
void PrintStageJson(std::FILE* f,
                    const std::vector<core::StageReport>& reports) {
  std::fprintf(f, "       \"stages\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const core::StageReport& report = reports[i];
    std::fprintf(
        f,
        "        {\"stage\": \"%.*s\", \"outcome\": \"%.*s\", "
        "\"wall_ns\": %llu, \"sgx_instructions\": %llu, "
        "\"modeled_cycles\": %llu}%s\n",
        static_cast<int>(core::StageName(report.stage).size()),
        core::StageName(report.stage).data(),
        static_cast<int>(core::StageOutcomeName(report.outcome).size()),
        core::StageOutcomeName(report.outcome).data(),
        static_cast<unsigned long long>(report.wall_ns),
        static_cast<unsigned long long>(report.sgx_instructions),
        static_cast<unsigned long long>(report.ModeledCycles()),
        i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "       ],\n");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t parallel_threads = 8;
  std::string out_path = "BENCH_inspect.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      parallel_threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_inspect [--scale S] [--threads N] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  const std::vector<size_t> thread_sweep = {1, parallel_threads};
  struct BenchResult {
    std::string name;
    std::vector<Run> runs;
  };
  std::vector<BenchResult> results;

  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program = workload::BuildBenchmarkScaled(
        entry, workload::BuildFlavor::kPlain, scale);
    if (!program.ok()) {
      std::fprintf(stderr, "%s: build failed: %s\n", entry.name,
                   program.status().ToString().c_str());
      return 1;
    }
    BenchResult result;
    result.name = entry.name;
    for (const size_t threads : thread_sweep) {
      for (const bool streaming : {false, true}) {
        auto measured = MeasureProvisioning(*program,
                                            workload::BuildFlavor::kPlain,
                                            threads, streaming);
        if (!measured.ok() || !measured->compliant) {
          std::fprintf(stderr, "%s @ %zu threads (%s): provisioning failed\n",
                       entry.name, threads,
                       streaming ? "streaming" : "staged");
          return 1;
        }
        if (streaming) {
          // The gate: the streaming run must be bit-identical to the staged
          // run it is measured against on every deterministic column.
          const PhaseCycles& staged = result.runs.back().cycles;
          if (measured->instructions != staged.instructions ||
              measured->disassembly_sgx != staged.disassembly_sgx ||
              measured->policy_check_sgx != staged.policy_check_sgx) {
            std::fprintf(stderr,
                         "%s @ %zu threads: streaming/staged equality gate "
                         "failed\n",
                         entry.name, threads);
            return 1;
          }
        }
        result.runs.push_back(Run{threads, streaming, *measured});
        const uint64_t overlap =
            measured->streaming_text_bytes > 0
                ? measured->streaming_before_done * 1000 /
                      measured->streaming_text_bytes
                : 0;
        std::printf("%-11s threads=%zu %-9s  #Inst=%zu  wall=%8.2f ms  "
                    "disasm=%llu policy=%llu cycles  overlap=%llu‰\n",
                    entry.name, threads,
                    streaming ? "streaming" : "staged",
                    measured->instructions,
                    static_cast<double>(measured->wall_ns) / 1e6,
                    static_cast<unsigned long long>(measured->disassembly),
                    static_cast<unsigned long long>(measured->policy_check),
                    static_cast<unsigned long long>(overlap));
      }
    }
    results.push_back(std::move(result));
  }

  // ---- Re-upload sweep: the verdict cache, cold vs warm ---------------------
  // Each row re-uploads the largest benchmark with k of N application
  // functions mutated. Cold = no cache. Warm = a cache freshly seeded (per
  // repetition) with the ORIGINAL binary, so 0% changed replays the full
  // sealed verdict and >0% takes the per-function partial-hit path. Wall
  // time is best-of-reps; cycle columns are equality-gated, never compared —
  // the cache's whole contract is that they do not move.
  struct ReuploadRow {
    size_t changed_pct = 0;
    size_t changed_functions = 0;
    uint64_t cold_best_ns = 0, cold_p50_ns = 0;
    uint64_t warm_best_ns = 0, warm_p50_ns = 0;
    const char* warm_outcome = "";
  };
  std::vector<ReuploadRow> reupload_rows;
  size_t reupload_total_functions = 0;
  std::string reupload_benchmark;
  {
    constexpr size_t kReps = 5;
    const workload::CatalogEntry& entry = workload::PaperBenchmarks().front();
    reupload_benchmark = entry.name;
    auto original = workload::BuildBenchmarkScaled(
        entry, workload::BuildFlavor::kPlain, scale);
    if (!original.ok()) {
      std::fprintf(stderr, "reupload: build failed: %s\n",
                   original.status().ToString().c_str());
      return 1;
    }
    auto total = workload::CountMutableFunctions(original->image,
                                                 /*library_functions=*/false);
    if (!total.ok()) {
      std::fprintf(stderr, "reupload: %s\n", total.status().ToString().c_str());
      return 1;
    }
    reupload_total_functions = *total;
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() / "engarde-evc-bench-inspect")
            .string();

    std::printf("\n");
    for (const size_t pct : {size_t{0}, size_t{10}, size_t{100}}) {
      size_t changed = *total * pct / 100;
      if (pct > 0 && changed == 0) changed = 1;
      workload::BuiltProgram reupload = *original;
      if (changed > 0) {
        workload::MutationOptions mutation;
        mutation.count = changed;
        auto mutated = workload::MutateFunctions(reupload.image, mutation);
        if (!mutated.ok()) {
          std::fprintf(stderr, "reupload %zu%%: %s\n", pct,
                       mutated.status().ToString().c_str());
          return 1;
        }
      }

      std::vector<uint64_t> cold_ns, warm_ns;
      PhaseCycles cold_reference;
      for (size_t rep = 0; rep < kReps; ++rep) {
        auto cold = MeasureProvisioning(reupload, workload::BuildFlavor::kPlain);
        if (!cold.ok() || !cold->compliant) {
          std::fprintf(stderr, "reupload %zu%%: cold run failed\n", pct);
          return 1;
        }
        if (rep == 0) cold_reference = *cold;
        cold_ns.push_back(cold->wall_ns);
      }
      const char* warm_outcome = nullptr;
      for (size_t rep = 0; rep < kReps; ++rep) {
        // A fresh cache per repetition, seeded with the original upload, so
        // every measured warm run exercises the same first-contact path (a
        // reused cache would turn every >0% rep after the first into a full
        // hit of the mutated bytes).
        std::error_code ec;
        std::filesystem::remove_all(cache_dir, ec);
        core::VerdictCacheOptions cache_options;
        cache_options.directory = cache_dir;
        auto cache = core::VerdictCache::Create(
            std::move(cache_options),
            bench::PolicyFor(workload::BuildFlavor::kPlain,
                             original->libc_options),
            sgx::EnclaveLayout{});
        if (!cache.ok()) {
          std::fprintf(stderr, "reupload cache: %s\n",
                       cache.status().ToString().c_str());
          return 1;
        }
        auto seed = MeasureProvisioning(*original,
                                        workload::BuildFlavor::kPlain, 1,
                                        false, *cache);
        if (!seed.ok() || !seed->compliant) {
          std::fprintf(stderr, "reupload %zu%%: cache seeding failed\n", pct);
          return 1;
        }
        auto warm = MeasureProvisioning(reupload,
                                        workload::BuildFlavor::kPlain, 1,
                                        false, *cache);
        if (!warm.ok() || !warm->compliant) {
          std::fprintf(stderr, "reupload %zu%%: warm run failed\n", pct);
          return 1;
        }
        // The gate: a cached verdict that moved any deterministic column is
        // a correctness bug, not a perf result.
        if (warm->instructions != cold_reference.instructions ||
            warm->disassembly_sgx != cold_reference.disassembly_sgx ||
            warm->policy_check_sgx != cold_reference.policy_check_sgx) {
          std::fprintf(stderr,
                       "reupload %zu%%: warm/cold equality gate failed\n",
                       pct);
          return 1;
        }
        const core::VerdictCacheStats stats = (*cache)->stats();
        const char* outcome = stats.hits == 1        ? "hit"
                              : stats.partial_hits == 1 ? "partial-hit"
                                                        : "miss";
        if (pct == 0 && stats.hits != 1) {
          std::fprintf(stderr,
                       "reupload 0%%: expected a full hit, classified %s\n",
                       outcome);
          return 1;
        }
        if (pct > 0 && stats.partial_hits != 1) {
          std::fprintf(stderr,
                       "reupload %zu%%: expected a partial hit (library "
                       "functions unchanged), classified %s\n",
                       pct, outcome);
          return 1;
        }
        warm_outcome = outcome;
        warm_ns.push_back(warm->wall_ns);
      }
      std::sort(cold_ns.begin(), cold_ns.end());
      std::sort(warm_ns.begin(), warm_ns.end());
      ReuploadRow row;
      row.changed_pct = pct;
      row.changed_functions = changed;
      row.cold_best_ns = cold_ns.front();
      row.cold_p50_ns = cold_ns[cold_ns.size() / 2];
      row.warm_best_ns = warm_ns.front();
      row.warm_p50_ns = warm_ns[warm_ns.size() / 2];
      row.warm_outcome = warm_outcome;
      std::printf(
          "%-11s reupload %3zu%% changed (%zu/%zu fns)  cold %8.2f ms  "
          "warm %8.2f ms (%s)  speedup %.2fx\n",
          entry.name, pct, changed, *total,
          static_cast<double>(row.cold_best_ns) / 1e6,
          static_cast<double>(row.warm_best_ns) / 1e6, row.warm_outcome,
          row.warm_best_ns > 0 ? static_cast<double>(row.cold_best_ns) /
                                     static_cast<double>(row.warm_best_ns)
                               : 0.0);
      reupload_rows.push_back(row);
    }
    // The CI gate: a byte-identical re-upload through a warm cache must be
    // faster than cold inspection, best-of-reps against best-of-reps.
    if (reupload_rows.front().warm_best_ns >=
        reupload_rows.front().cold_best_ns) {
      std::fprintf(stderr,
                   "reupload gate: 0%%-changed warm (%llu ns) does not beat "
                   "cold (%llu ns)\n",
                   static_cast<unsigned long long>(
                       reupload_rows.front().warm_best_ns),
                   static_cast<unsigned long long>(
                       reupload_rows.front().cold_best_ns));
      return 1;
    }
  }

  const auto find_run = [](const BenchResult& result, size_t threads,
                           bool streaming) -> const Run* {
    for (const Run& run : result.runs) {
      if (run.threads == threads && run.streaming == streaming) return &run;
    }
    return nullptr;
  };

  // The largest benchmark is the catalog's first entry (Nginx); staged
  // serial vs staged parallel, as before the streaming rows were added.
  double largest_speedup = 0.0;
  if (!results.empty()) {
    const Run* serial = find_run(results.front(), 1, false);
    const Run* parallel = find_run(results.front(), parallel_threads, false);
    if (serial != nullptr && parallel != nullptr &&
        parallel->cycles.wall_ns > 0) {
      largest_speedup = static_cast<double>(serial->cycles.wall_ns) /
                        static_cast<double>(parallel->cycles.wall_ns);
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"cost_model\": {\"sgx_instruction_cycles\": %llu, "
               "\"clock_ghz\": %.1f},\n",
               static_cast<unsigned long long>(
                   sgx::CycleAccountant::kSgxInstructionCycles),
               sgx::CycleAccountant::kClockGhz);
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t b = 0; b < results.size(); ++b) {
    const BenchResult& result = results[b];
    std::fprintf(f, "    {\"name\": \"%s\", \"instructions\": %zu, ",
                 result.name.c_str(),
                 result.runs.front().cycles.instructions);
    double speedup = 0.0;
    {
      const Run* serial = find_run(result, 1, false);
      const Run* parallel = find_run(result, parallel_threads, false);
      if (serial != nullptr && parallel != nullptr &&
          parallel->cycles.wall_ns > 0) {
        speedup = static_cast<double>(serial->cycles.wall_ns) /
                  static_cast<double>(parallel->cycles.wall_ns);
      }
    }
    std::fprintf(f, "\"speedup\": %.3f, \"runs\": [\n", speedup);
    for (size_t r = 0; r < result.runs.size(); ++r) {
      const Run& run = result.runs[r];
      std::fprintf(f,
                   "      {\"threads\": %zu, \"mode\": \"%s\", "
                   "\"wall_ns\": %llu,\n",
                   run.threads, run.streaming ? "streaming" : "staged",
                   static_cast<unsigned long long>(run.cycles.wall_ns));
      if (run.streaming) {
        const uint64_t overlap =
            run.cycles.streaming_text_bytes > 0
                ? run.cycles.streaming_before_done * 1000 /
                      run.cycles.streaming_text_bytes
                : 0;
        std::fprintf(
            f,
            "       \"streaming\": {\"text_bytes_planned\": %llu, "
            "\"bytes_decoded_before_done\": %llu, \"overlap_permille\": "
            "%llu, \"spliced_sections\": %llu, \"fallback_sections\": "
            "%llu, \"equality\": \"ok\"},\n",
            static_cast<unsigned long long>(run.cycles.streaming_text_bytes),
            static_cast<unsigned long long>(run.cycles.streaming_before_done),
            static_cast<unsigned long long>(overlap),
            static_cast<unsigned long long>(run.cycles.streaming_spliced),
            static_cast<unsigned long long>(run.cycles.streaming_fallback));
      }
      PrintStageJson(f, run.cycles.stage_reports);
      std::fprintf(f, "       \"phases\": {\n");
      PrintPhaseJson(f, "disassembly", run.cycles.disassembly,
                     run.cycles.disassembly_sgx, ",");
      PrintPhaseJson(f, "policy_check", run.cycles.policy_check,
                     run.cycles.policy_check_sgx, ",");
      PrintPhaseJson(f, "loading", run.cycles.loading, 0, ",");
      PrintPhaseJson(f, "channel", run.cycles.channel, 0, "");
      std::fprintf(f, "      }}%s\n",
                   r + 1 < result.runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", b + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"reupload\": {\n");
  std::fprintf(f, "    \"benchmark\": \"%s\",\n", reupload_benchmark.c_str());
  std::fprintf(f, "    \"mutable_app_functions\": %zu,\n",
               reupload_total_functions);
  std::fprintf(f,
               "    \"warm\": \"verdict cache seeded with the original "
               "binary, fresh per repetition\",\n");
  std::fprintf(f,
               "    \"gate\": \"warm equals cold on verdict and per-phase "
               "SGX counts; 0%%-changed warm beats cold on wall time\",\n");
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t r = 0; r < reupload_rows.size(); ++r) {
    const ReuploadRow& row = reupload_rows[r];
    std::fprintf(
        f,
        "      {\"changed_pct\": %zu, \"changed_functions\": %zu, "
        "\"cold_wall_ns_best\": %llu, \"cold_wall_ns_p50\": %llu, "
        "\"warm_wall_ns_best\": %llu, \"warm_wall_ns_p50\": %llu, "
        "\"warm_outcome\": \"%s\", \"speedup_best\": %.3f, "
        "\"equality\": \"ok\"}%s\n",
        row.changed_pct, row.changed_functions,
        static_cast<unsigned long long>(row.cold_best_ns),
        static_cast<unsigned long long>(row.cold_p50_ns),
        static_cast<unsigned long long>(row.warm_best_ns),
        static_cast<unsigned long long>(row.warm_p50_ns), row.warm_outcome,
        row.warm_best_ns > 0 ? static_cast<double>(row.cold_best_ns) /
                                   static_cast<double>(row.warm_best_ns)
                             : 0.0,
        r + 1 < reupload_rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"largest_benchmark\": \"%s\",\n",
               results.empty() ? "" : results.front().name.c_str());
  std::fprintf(f, "  \"largest_speedup_%zuv1\": %.3f\n", parallel_threads,
               largest_speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nwrote %s (largest benchmark %s: %.2fx at %zu threads)\n",
              out_path.c_str(),
              results.empty() ? "?" : results.front().name.c_str(),
              largest_speedup, parallel_threads);
  return 0;
}
