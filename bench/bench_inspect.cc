// Machine-readable inspection benchmark: provisions every catalog benchmark
// (library-linking flavor, the paper's Figure 3 configuration) at a sweep of
// inspection_threads values — staged and streaming — and writes
// BENCH_inspect.json: per-benchmark per-phase cycles, deterministic
// SGX-instruction counts, wall time, and for streaming runs the achieved
// decode overlap, so the perf trajectory of the hot path is tracked across
// PRs instead of eyeballed from table output.
//
// Usage: bench_inspect [--scale S] [--threads N] [--out PATH]
//   --scale S    build benchmarks at S x the paper's instruction count
//                (default 1.0; CI smoke runs use e.g. 0.1)
//   --threads N  the parallel data point to compare against serial
//                (default 8)
//   --out PATH   output file (default BENCH_inspect.json)
//
// The headline metric is speedup = wall(1 thread) / wall(N threads) on the
// largest benchmark (Nginx). Every streaming row is equality-gated against
// its staged twin: identical verdict and per-phase SGX-instruction counts,
// or the bench fails. Note: on a single-core host the engine still produces
// identical verdicts but cannot show wall speedup — the overlap_permille
// column is the scheduling-independent evidence the speculation engaged.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"

using namespace engarde;
using namespace engarde::bench;

namespace {

struct Run {
  size_t threads = 0;
  bool streaming = false;
  PhaseCycles cycles;
};

void PrintPhaseJson(std::FILE* f, const char* name, uint64_t cycles,
                    uint64_t sgx, const char* trailing_comma) {
  std::fprintf(f,
               "        \"%s\": {\"cycles\": %llu, \"sgx_instructions\": "
               "%llu}%s\n",
               name, static_cast<unsigned long long>(cycles),
               static_cast<unsigned long long>(sgx), trailing_comma);
}

// One row per pipeline stage — finer grain than the phase columns (container
// validation, page separation, symbol table and NaCl validation separate).
void PrintStageJson(std::FILE* f,
                    const std::vector<core::StageReport>& reports) {
  std::fprintf(f, "       \"stages\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const core::StageReport& report = reports[i];
    std::fprintf(
        f,
        "        {\"stage\": \"%.*s\", \"outcome\": \"%.*s\", "
        "\"wall_ns\": %llu, \"sgx_instructions\": %llu, "
        "\"modeled_cycles\": %llu}%s\n",
        static_cast<int>(core::StageName(report.stage).size()),
        core::StageName(report.stage).data(),
        static_cast<int>(core::StageOutcomeName(report.outcome).size()),
        core::StageOutcomeName(report.outcome).data(),
        static_cast<unsigned long long>(report.wall_ns),
        static_cast<unsigned long long>(report.sgx_instructions),
        static_cast<unsigned long long>(report.ModeledCycles()),
        i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "       ],\n");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 1.0;
  size_t parallel_threads = 8;
  std::string out_path = "BENCH_inspect.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      parallel_threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_inspect [--scale S] [--threads N] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  const std::vector<size_t> thread_sweep = {1, parallel_threads};
  struct BenchResult {
    std::string name;
    std::vector<Run> runs;
  };
  std::vector<BenchResult> results;

  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program = workload::BuildBenchmarkScaled(
        entry, workload::BuildFlavor::kPlain, scale);
    if (!program.ok()) {
      std::fprintf(stderr, "%s: build failed: %s\n", entry.name,
                   program.status().ToString().c_str());
      return 1;
    }
    BenchResult result;
    result.name = entry.name;
    for (const size_t threads : thread_sweep) {
      for (const bool streaming : {false, true}) {
        auto measured = MeasureProvisioning(*program,
                                            workload::BuildFlavor::kPlain,
                                            threads, streaming);
        if (!measured.ok() || !measured->compliant) {
          std::fprintf(stderr, "%s @ %zu threads (%s): provisioning failed\n",
                       entry.name, threads,
                       streaming ? "streaming" : "staged");
          return 1;
        }
        if (streaming) {
          // The gate: the streaming run must be bit-identical to the staged
          // run it is measured against on every deterministic column.
          const PhaseCycles& staged = result.runs.back().cycles;
          if (measured->instructions != staged.instructions ||
              measured->disassembly_sgx != staged.disassembly_sgx ||
              measured->policy_check_sgx != staged.policy_check_sgx) {
            std::fprintf(stderr,
                         "%s @ %zu threads: streaming/staged equality gate "
                         "failed\n",
                         entry.name, threads);
            return 1;
          }
        }
        result.runs.push_back(Run{threads, streaming, *measured});
        const uint64_t overlap =
            measured->streaming_text_bytes > 0
                ? measured->streaming_before_done * 1000 /
                      measured->streaming_text_bytes
                : 0;
        std::printf("%-11s threads=%zu %-9s  #Inst=%zu  wall=%8.2f ms  "
                    "disasm=%llu policy=%llu cycles  overlap=%llu‰\n",
                    entry.name, threads,
                    streaming ? "streaming" : "staged",
                    measured->instructions,
                    static_cast<double>(measured->wall_ns) / 1e6,
                    static_cast<unsigned long long>(measured->disassembly),
                    static_cast<unsigned long long>(measured->policy_check),
                    static_cast<unsigned long long>(overlap));
      }
    }
    results.push_back(std::move(result));
  }

  const auto find_run = [](const BenchResult& result, size_t threads,
                           bool streaming) -> const Run* {
    for (const Run& run : result.runs) {
      if (run.threads == threads && run.streaming == streaming) return &run;
    }
    return nullptr;
  };

  // The largest benchmark is the catalog's first entry (Nginx); staged
  // serial vs staged parallel, as before the streaming rows were added.
  double largest_speedup = 0.0;
  if (!results.empty()) {
    const Run* serial = find_run(results.front(), 1, false);
    const Run* parallel = find_run(results.front(), parallel_threads, false);
    if (serial != nullptr && parallel != nullptr &&
        parallel->cycles.wall_ns > 0) {
      largest_speedup = static_cast<double>(serial->cycles.wall_ns) /
                        static_cast<double>(parallel->cycles.wall_ns);
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"cost_model\": {\"sgx_instruction_cycles\": %llu, "
               "\"clock_ghz\": %.1f},\n",
               static_cast<unsigned long long>(
                   sgx::CycleAccountant::kSgxInstructionCycles),
               sgx::CycleAccountant::kClockGhz);
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t b = 0; b < results.size(); ++b) {
    const BenchResult& result = results[b];
    std::fprintf(f, "    {\"name\": \"%s\", \"instructions\": %zu, ",
                 result.name.c_str(),
                 result.runs.front().cycles.instructions);
    double speedup = 0.0;
    {
      const Run* serial = find_run(result, 1, false);
      const Run* parallel = find_run(result, parallel_threads, false);
      if (serial != nullptr && parallel != nullptr &&
          parallel->cycles.wall_ns > 0) {
        speedup = static_cast<double>(serial->cycles.wall_ns) /
                  static_cast<double>(parallel->cycles.wall_ns);
      }
    }
    std::fprintf(f, "\"speedup\": %.3f, \"runs\": [\n", speedup);
    for (size_t r = 0; r < result.runs.size(); ++r) {
      const Run& run = result.runs[r];
      std::fprintf(f,
                   "      {\"threads\": %zu, \"mode\": \"%s\", "
                   "\"wall_ns\": %llu,\n",
                   run.threads, run.streaming ? "streaming" : "staged",
                   static_cast<unsigned long long>(run.cycles.wall_ns));
      if (run.streaming) {
        const uint64_t overlap =
            run.cycles.streaming_text_bytes > 0
                ? run.cycles.streaming_before_done * 1000 /
                      run.cycles.streaming_text_bytes
                : 0;
        std::fprintf(
            f,
            "       \"streaming\": {\"text_bytes_planned\": %llu, "
            "\"bytes_decoded_before_done\": %llu, \"overlap_permille\": "
            "%llu, \"spliced_sections\": %llu, \"fallback_sections\": "
            "%llu, \"equality\": \"ok\"},\n",
            static_cast<unsigned long long>(run.cycles.streaming_text_bytes),
            static_cast<unsigned long long>(run.cycles.streaming_before_done),
            static_cast<unsigned long long>(overlap),
            static_cast<unsigned long long>(run.cycles.streaming_spliced),
            static_cast<unsigned long long>(run.cycles.streaming_fallback));
      }
      PrintStageJson(f, run.cycles.stage_reports);
      std::fprintf(f, "       \"phases\": {\n");
      PrintPhaseJson(f, "disassembly", run.cycles.disassembly,
                     run.cycles.disassembly_sgx, ",");
      PrintPhaseJson(f, "policy_check", run.cycles.policy_check,
                     run.cycles.policy_check_sgx, ",");
      PrintPhaseJson(f, "loading", run.cycles.loading, 0, ",");
      PrintPhaseJson(f, "channel", run.cycles.channel, 0, "");
      std::fprintf(f, "      }}%s\n",
                   r + 1 < result.runs.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", b + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"largest_benchmark\": \"%s\",\n",
               results.empty() ? "" : results.front().name.c_str());
  std::fprintf(f, "  \"largest_speedup_%zuv1\": %.3f\n", parallel_threads,
               largest_speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nwrote %s (largest benchmark %s: %.2fx at %zu threads)\n",
              out_path.c_str(),
              results.empty() ? "?" : results.front().name.c_str(),
              largest_speedup, parallel_threads);
  return 0;
}
