// Reproduces Figure 2: "Sizes of various components of EnGarde" — the lines
// of code of each component of the implementation. The paper's table mixes
// EnGarde's own components (code provisioning, loading/relocating, the three
// policy checkers, the client program) with the third-party libraries inside
// the enclave (musl-libc, OpenSSL's libcrypto/libssl).
//
// This bench counts the equivalent components of this reproduction and prints
// them next to the paper's numbers. Third-party crypto is replaced by our
// from-scratch src/crypto, which is why that row shrinks by ~350 KLoC: the
// paper links all of OpenSSL, we implement exactly the needed primitives.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef ENGARDE_SOURCE_DIR
#define ENGARDE_SOURCE_DIR "."
#endif

namespace {

size_t CountLines(const std::filesystem::path& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

size_t CountComponent(const std::vector<std::string>& files) {
  const std::filesystem::path root(ENGARDE_SOURCE_DIR);
  size_t total = 0;
  for (const std::string& file : files) {
    const auto path = root / file;
    if (std::filesystem::exists(path)) total += CountLines(path);
  }
  return total;
}

struct Row {
  const char* component;
  long paper_loc;  // -1 = not reported in the paper
  std::vector<std::string> files;
};

}  // namespace

int main() {
  std::printf(
      "Figure 2 — Sizes of various components of EnGarde (lines of code)\n");
  std::printf(
      "Paper column: Nguyen & Ganapathy's prototype. Ours column: this "
      "reproduction.\n\n");

  const std::vector<Row> rows = {
      {"Code Provisioning (protocol + orchestrator)", 270,
       {"src/core/engarde.h", "src/core/engarde.cc", "src/core/protocol.h",
        "src/core/protocol.cc"}},
      {"Loading and Relocating", 188,
       {"src/core/loader.h", "src/core/loader.cc"}},
      {"Checking executables linked against musl-libc", 1949,
       {"src/core/policy_liblink.h", "src/core/policy_liblink.cc",
        "src/core/library_db.h", "src/core/library_db.cc",
        "src/core/symbol_table.h", "src/core/symbol_table.cc"}},
      {"Checking executables compiled with stack protection", 109,
       {"src/core/policy_stackprot.h", "src/core/policy_stackprot.cc"}},
      {"Checking executables containing indirect function-call checks", 129,
       {"src/core/policy_ifcc.h", "src/core/policy_ifcc.cc"}},
      {"Client's side program", 349,
       {"src/client/client.h", "src/client/client.cc"}},
      {"musl-libc (paper) / synthetic musl generator (ours)", 90728,
       {"src/workload/synth_libc.h", "src/workload/synth_libc.cc",
        "src/workload/funcgen.h", "src/workload/funcgen.cc"}},
      {"libcrypto+libssl (paper) / from-scratch crypto (ours)",
       287985 + 63566,
       {"src/crypto/sha256.h", "src/crypto/sha256.cc", "src/crypto/hmac.h",
        "src/crypto/hmac.cc", "src/crypto/aes.h", "src/crypto/aes.cc",
        "src/crypto/bigint.h", "src/crypto/bigint.cc", "src/crypto/rsa.h",
        "src/crypto/rsa.cc", "src/crypto/drbg.h", "src/crypto/drbg.cc",
        "src/crypto/channel.h", "src/crypto/channel.cc"}},
      {"NaCl disassembler (paper uses NaCl) / src/x86 (ours)", -1,
       {"src/x86/insn.h", "src/x86/insn.cc", "src/x86/decoder.h",
        "src/x86/decoder.cc", "src/x86/validator.h", "src/x86/validator.cc",
        "src/x86/insn_buffer.h", "src/x86/insn_buffer.cc"}},
      {"OpenSGX substrate (paper) / src/sgx emulator (ours)", -1,
       {"src/sgx/device.h", "src/sgx/device.cc", "src/sgx/epc.h",
        "src/sgx/epc.cc", "src/sgx/hostos.h", "src/sgx/hostos.cc",
        "src/sgx/attestation.h", "src/sgx/attestation.cc",
        "src/sgx/cost_model.h", "src/sgx/cost_model.cc"}},
  };

  std::printf("%-62s %10s %10s\n", "Component", "Paper LoC", "Ours LoC");
  std::printf("%s\n", std::string(86, '-').c_str());
  long paper_total = 0;
  size_t our_total = 0;
  for (const Row& row : rows) {
    const size_t ours = CountComponent(row.files);
    our_total += ours;
    if (row.paper_loc >= 0) {
      paper_total += row.paper_loc;
      std::printf("%-62s %10ld %10zu\n", row.component, row.paper_loc, ours);
    } else {
      std::printf("%-62s %10s %10zu\n", row.component, "(external)", ours);
    }
  }
  std::printf("%s\n", std::string(86, '-').c_str());
  std::printf("%-62s %10ld %10zu\n", "Total", paper_total, our_total);
  std::printf(
      "\nNote: the paper's total (453,349) is dominated by vendored musl + "
      "OpenSSL sources; this reproduction\nimplements the required subset "
      "from scratch, so the same functionality costs ~100x fewer lines.\n");
  return 0;
}
