// Microbenchmarks for the SGX device model: enclave build scaling (EADD +
// 16x EEXTEND per measured page is the dominant cost, 10K cycles each under
// the paper's model), page eviction round trips, and attestation.
#include <benchmark/benchmark.h>

#include "sgx/attestation.h"
#include "sgx/hostos.h"

namespace {

using namespace engarde;
using namespace engarde::sgx;

void BM_EnclaveBuild(benchmark::State& state) {
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const Bytes bootstrap(kPageSize, 0x90);
  for (auto _ : state) {
    CycleAccountant accountant;
    SgxDevice device(SgxDevice::Options{.epc_pages = pages + 64}, &accountant);
    HostOs host(&device);
    EnclaveLayout layout;
    layout.bootstrap_pages = 1;
    layout.heap_pages = pages;
    layout.load_pages = 1;
    layout.stack_pages = 1;
    auto eid = host.BuildEnclave(layout, bootstrap);
    benchmark::DoNotOptimize(eid);
    state.counters["sgx_insns"] =
        benchmark::Counter(static_cast<double>(accountant.total_sgx_instructions()));
    state.counters["modeled_cycles"] = benchmark::Counter(
        static_cast<double>(accountant.total_sgx_instructions()) * 10000);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pages));
}
BENCHMARK(BM_EnclaveBuild)->Arg(16)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_MeasuredPageAdd(benchmark::State& state) {
  // EADD + full-page EEXTEND: the per-page cost of measured enclave content.
  SgxDevice device(SgxDevice::Options{.epc_pages = 8192});
  auto eid = device.ECreate(0x10000000, 8000 * kPageSize);
  const Bytes content(kPageSize, 0xab);
  uint64_t linear = 0x10000000;
  for (auto _ : state) {
    if (!device.EAdd(*eid, linear, content, PagePerms::RX()).ok()) {
      state.SkipWithError("EPC exhausted");
      break;
    }
    benchmark::DoNotOptimize(device.ExtendPage(*eid, linear));
    linear += kPageSize;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_MeasuredPageAdd)->Iterations(4000);

void BM_EwbElduRoundTrip(benchmark::State& state) {
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  auto eid = device.ECreate(0x10000000, 16 * kPageSize);
  (void)device.EAdd(*eid, 0x10000000, Bytes(kPageSize, 0x5a), PagePerms::RW());
  (void)device.EInit(*eid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.Ewb(*eid, 0x10000000));
    benchmark::DoNotOptimize(device.Eldu(*eid, 0x10000000));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPageSize) * 2);
}
BENCHMARK(BM_EwbElduRoundTrip);

void BM_EnclaveMemoryWrite(benchmark::State& state) {
  // Permission-checked enclave writes at page granularity (loader hot path).
  SgxDevice device(SgxDevice::Options{.epc_pages = 128});
  auto eid = device.ECreate(0x10000000, 64 * kPageSize);
  for (int i = 0; i < 32; ++i) {
    (void)device.EAdd(*eid, 0x10000000 + i * kPageSize, {}, PagePerms::RW());
  }
  (void)device.EInit(*eid);
  const Bytes block(static_cast<size_t>(state.range(0)), 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.EnclaveWrite(*eid, 0x10000000, block));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EnclaveMemoryWrite)->Arg(4096)->Arg(65536);

void BM_QuoteCreateVerify(benchmark::State& state) {
  auto quoting = QuotingEnclave::Provision(ToBytes("bench"), 1024);
  SgxDevice device(SgxDevice::Options{.epc_pages = 64});
  auto eid = device.ECreate(0x10000000, 4 * kPageSize);
  (void)device.EAdd(*eid, 0x10000000, Bytes(kPageSize, 1), PagePerms::RX());
  (void)device.ExtendPage(*eid, 0x10000000);
  (void)device.EInit(*eid);
  auto report = device.EReport(*eid, {});
  for (auto _ : state) {
    auto quote = quoting->CreateQuote(*report);
    benchmark::DoNotOptimize(
        VerifyQuote(*quote, quoting->attestation_public_key()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QuoteCreateVerify)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
