// Reproduces Figure 4: "Performance of EnGarde to check the Stack protection
// policy" — every benchmark rebuilt with -fstack-protector-all-style
// instrumentation, EnGarde verifying the prologue/epilogue pattern in every
// function.
#include "bench/harness.h"

int main() {
  using namespace engarde;
  using namespace engarde::bench;

  PrintFigureHeader("Figure 4", "stack protection (-fstack-protector-all)");

  for (const workload::CatalogEntry& entry : workload::PaperBenchmarks()) {
    auto program = workload::BuildBenchmark(
        entry, workload::BuildFlavor::kStackProtector);
    if (!program.ok()) {
      std::printf("%-11s BUILD FAILED: %s\n", entry.name,
                  program.status().ToString().c_str());
      return 1;
    }
    auto measured = MeasureProvisioning(
        *program, workload::BuildFlavor::kStackProtector);
    if (!measured.ok() || !measured->compliant) {
      std::printf("%-11s FAILED: %s\n", entry.name,
                  measured.ok() ? "unexpected rejection"
                                : measured.status().ToString().c_str());
      return 1;
    }
    PrintFigureRow(entry.name, *measured,
                   {entry.fig4_disasm_cycles, entry.fig4_policy_cycles,
                    entry.fig4_load_cycles});
  }

  std::printf(
      "\nShape check: stack-protection checking is the same order of "
      "magnitude as disassembly (paper P/D 0.99-25;\nper-function pattern "
      "scans instead of per-byte hashing), i.e. systematically CHEAPER than "
      "the library-linking\npolicy of Figure 3 and far costlier than the IFCC "
      "scan of Figure 5. #Inst grows vs Figure 3 because the\ninstrumentation "
      "adds prologue/epilogue code, as in the paper (e.g. Nginx 262,228 -> "
      "271,106 there).\n");
  return 0;
}
