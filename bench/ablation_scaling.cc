// Ablation: how provisioning cost scales with program size, and what the
// sealed-program cache (EGETKEY sealing) buys on reload.
//
// Sweep 1 prints per-phase cycles for programs from 5K to 250K instructions
// (all three policies enabled): every phase should scale ~linearly in
// #Inst, with the paper's phase ordering intact at every size.
//
// Sweep 2 compares first-boot provisioning (attest + transfer + inspect +
// load) against RestoreFromSealed (unseal + container check + load) at
// Nginx scale: the cache removes the client round-trip and the two
// dominant phases entirely.
#include <chrono>

#include "bench/harness.h"
#include "core/policy_liblink.h"
#include "core/policy_stackprot.h"
#include "core/policy_ifcc.h"

using namespace engarde;
using namespace engarde::bench;

namespace {

core::PolicySet AllPolicies(const workload::SynthLibcOptions& libc) {
  core::PolicySet policies;
  auto db = workload::BuildLibcHashDb(libc);
  if (db.ok()) {
    policies.push_back(std::make_unique<core::LibraryLinkingPolicy>(
        "synth-musl v" + libc.version, std::move(db).value()));
  }
  policies.push_back(std::make_unique<core::StackProtectionPolicy>());
  policies.push_back(std::make_unique<core::IndirectCallPolicy>());
  return policies;
}

int SizeSweep() {
  std::printf(
      "Sweep 1 — per-phase cycles vs program size (all three policies)\n");
  std::printf("%9s | %13s %13s %13s %13s | %11s\n", "#Inst", "channel",
              "disassembly", "policy", "loading", "cyc/insn");
  std::printf("%s\n", std::string(95, '-').c_str());

  for (const size_t target : {5000ul, 20000ul, 60000ul, 120000ul, 250000ul}) {
    workload::ProgramSpec spec;
    spec.name = "sweep";
    spec.seed = target;
    spec.target_instructions = target;
    spec.stack_protection = true;
    spec.ifcc = true;
    auto program = workload::BuildProgram(spec);
    if (!program.ok()) return 1;

    sgx::CycleAccountant accountant;
    sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
    sgx::HostOs host(&device);
    auto quoting = sgx::QuotingEnclave::Provision(ToBytes("sweep"), 1024);
    if (!quoting.ok()) return 1;
    core::EngardeOptions options;
    options.rsa_bits = 1024;
    auto enclave = core::EngardeEnclave::Create(
        &host, *quoting, AllPolicies(program->libc_options), options);
    if (!enclave.ok()) return 1;

    crypto::DuplexPipe pipe;
    if (!enclave->SendHello(pipe.EndA()).ok()) return 1;
    client::ClientOptions client_options;
    client_options.attestation_key = quoting->attestation_public_key();
    client_options.skip_measurement_check = true;
    client::Client client(client_options, program->image);
    if (!client.SendProgram(pipe.EndB()).ok()) return 1;

    accountant.Reset();
    auto outcome = enclave->RunProvisioning(pipe.EndA());
    if (!outcome.ok() || !outcome->verdict.compliant) return 1;

    const uint64_t channel = accountant.phase_cost(sgx::Phase::kChannel).Cycles();
    const uint64_t disasm =
        accountant.phase_cost(sgx::Phase::kDisassembly).Cycles();
    const uint64_t policy =
        accountant.phase_cost(sgx::Phase::kPolicyCheck).Cycles();
    const uint64_t loading =
        accountant.phase_cost(sgx::Phase::kLoading).Cycles();
    std::printf("%9zu | %13llu %13llu %13llu %13llu | %11.1f\n",
                outcome->stats.instruction_count,
                static_cast<unsigned long long>(channel),
                static_cast<unsigned long long>(disasm),
                static_cast<unsigned long long>(policy),
                static_cast<unsigned long long>(loading),
                static_cast<double>(channel + disasm + policy + loading) /
                    static_cast<double>(outcome->stats.instruction_count));
  }
  return 0;
}

int SealReloadComparison() {
  std::printf(
      "\nSweep 2 — first boot vs sealed reload (Nginx-scale, all policies)\n");
  const auto& nginx = workload::PaperBenchmarks()[0];
  auto program = workload::BuildBenchmark(
      nginx, workload::BuildFlavor::kStackProtector);
  if (!program.ok()) return 1;

  sgx::CycleAccountant accountant;
  sgx::SgxDevice device(sgx::SgxDevice::Options{}, &accountant);
  sgx::HostOs host(&device);
  auto quoting = sgx::QuotingEnclave::Provision(ToBytes("seal"), 1024);
  if (!quoting.ok()) return 1;
  core::EngardeOptions options;
  options.rsa_bits = 1024;

  // ---- First boot --------------------------------------------------------
  auto enclave = core::EngardeEnclave::Create(
      &host, *quoting, AllPolicies(program->libc_options), options);
  if (!enclave.ok()) return 1;
  crypto::DuplexPipe pipe;
  if (!enclave->SendHello(pipe.EndA()).ok()) return 1;
  client::ClientOptions client_options;
  client_options.attestation_key = quoting->attestation_public_key();
  client_options.skip_measurement_check = true;
  client::Client client(client_options, program->image);
  if (!client.SendProgram(pipe.EndB()).ok()) return 1;

  accountant.Reset();
  const auto t0 = std::chrono::steady_clock::now();
  auto outcome = enclave->RunProvisioning(pipe.EndA());
  const auto t1 = std::chrono::steady_clock::now();
  if (!outcome.ok() || !outcome->verdict.compliant) return 1;
  const uint64_t boot_sgx = accountant.total_sgx_instructions();
  auto sealed = enclave->SealApprovedProgram();
  if (!sealed.ok()) return 1;

  // ---- Sealed reload into a fresh enclave -------------------------------------
  auto enclave2 = core::EngardeEnclave::Create(
      &host, *quoting, AllPolicies(program->libc_options), options);
  if (!enclave2.ok()) return 1;
  accountant.Reset();
  const auto t2 = std::chrono::steady_clock::now();
  if (const Status s = enclave2->RestoreFromSealed(*sealed); !s.ok()) {
    std::printf("restore failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto t3 = std::chrono::steady_clock::now();
  const uint64_t reload_sgx = accountant.total_sgx_instructions();

  const double boot_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double reload_ms =
      std::chrono::duration<double, std::milli>(t3 - t2).count();
  std::printf("  first boot (inspect everything): %8.2f ms native, %8llu SGX insns\n",
              boot_ms, static_cast<unsigned long long>(boot_sgx));
  std::printf("  sealed reload (unseal + load):   %8.2f ms native, %8llu SGX insns\n",
              reload_ms, static_cast<unsigned long long>(reload_sgx));
  std::printf("  speedup: %.1fx native — disassembly and policy checking are\n"
              "  amortized across restarts, while the seal binds the cached\n"
              "  program to the exact EnGarde+policy measurement.\n",
              boot_ms / reload_ms);
  return 0;
}

}  // namespace

int main() {
  if (SizeSweep()) return 1;
  if (SealReloadComparison()) return 1;
  return 0;
}
