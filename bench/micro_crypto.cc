// Microbenchmarks for the from-scratch crypto substrate: these set the
// constants behind the provisioning phases (SHA-256 drives both the
// library-linking policy and enclave measurement; AES-CTR + HMAC drive the
// encrypted channel; RSA drives the one-time key exchange).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/bigint.h"
#include "crypto/channel.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace {

using namespace engarde;
using namespace engarde::crypto;

Bytes MakeInput(size_t size) {
  Rng rng(size * 31 + 7);
  return rng.NextBytes(size);
}

void BM_Sha256(benchmark::State& state) {
  const Bytes input = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = MakeInput(32);
  const Bytes input = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256::Mac(key, input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(4096);

void BM_AesCtr(benchmark::State& state) {
  Aes256Key key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i);
  AesCtr ctr(key, {});
  Bytes buffer = MakeInput(static_cast<size_t>(state.range(0)));
  uint64_t offset = 0;
  for (auto _ : state) {
    ctr.Crypt(offset, MutableByteView(buffer.data(), buffer.size()));
    offset += buffer.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(65536);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  const Bytes master = MakeInput(32);
  const SessionKeys keys =
      SessionKeys::Derive(ByteView(master.data(), master.size()));
  const Bytes block = MakeInput(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::DuplexPipe pipe;
    SecureChannel sender(pipe.EndA(), keys, false);
    SecureChannel receiver(pipe.EndB(), keys, true);
    benchmark::DoNotOptimize(sender.Send(block));
    benchmark::DoNotOptimize(receiver.Receive());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SecureChannelRoundTrip)->Arg(4096);

void BM_BigIntModExp(benchmark::State& state) {
  // Fixed-width modular exponentiation at the given bit size.
  const size_t bits = static_cast<size_t>(state.range(0));
  HmacDrbg drbg(ToBytes("modexp"));
  const Bytes m_raw = drbg.Generate(bits / 8);
  BigInt modulus = BigInt::FromBytes(ByteView(m_raw.data(), m_raw.size()));
  if (!modulus.IsOdd()) modulus = BigInt::Add(modulus, BigInt::FromU64(1));
  const Bytes b_raw = drbg.Generate(bits / 8);
  const BigInt base = BigInt::FromBytes(ByteView(b_raw.data(), b_raw.size()));
  const BigInt exp = BigInt::FromU64(65537);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModExp(base, exp, modulus));
  }
}
BENCHMARK(BM_BigIntModExp)->Arg(1024)->Arg(2048);

void BM_RsaKeyGen(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  uint64_t salt = 0;
  for (auto _ : state) {
    HmacDrbg drbg(ToBytes("keygen" + std::to_string(salt++)));
    benchmark::DoNotOptimize(RsaGenerateKey(bits, drbg));
  }
}
BENCHMARK(BM_RsaKeyGen)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaWrapUnwrapKey(benchmark::State& state) {
  // The per-provisioning key exchange: RSA-encrypt + decrypt a 32-byte key.
  HmacDrbg drbg(ToBytes("wrap"));
  auto pair = RsaGenerateKey(1024, drbg);
  if (!pair.ok()) {
    state.SkipWithError("keygen failed");
    return;
  }
  const Bytes aes_key = MakeInput(32);
  for (auto _ : state) {
    auto wrapped = RsaEncrypt(pair->public_key, aes_key, drbg);
    benchmark::DoNotOptimize(RsaDecrypt(pair->private_key, *wrapped));
  }
}
BENCHMARK(BM_RsaWrapUnwrapKey)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
